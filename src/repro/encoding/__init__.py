"""SAT encoding of concurrent executions (the back-end of Section 3.2)."""

from repro.encoding.testprogram import (
    INIT_THREAD,
    CompiledInvocation,
    CompiledTest,
    compile_test,
)
from repro.encoding.symbolic import (
    EncodingError,
    FenceEvent,
    MemoryAccess,
    ThreadEncoding,
    ThreadSymbolicExecutor,
)
from repro.encoding.memory import MemoryModelEncoder, MemoryOrderEncoding
from repro.encoding.formula import (
    EncodedTest,
    EncodingContext,
    EncodingSkeleton,
    EncodingStatistics,
    ObservationSlot,
    build_skeleton,
    encode_test,
    share_encode_enabled,
    skeleton_for,
)

__all__ = [
    "INIT_THREAD",
    "CompiledInvocation",
    "CompiledTest",
    "compile_test",
    "EncodingError",
    "FenceEvent",
    "MemoryAccess",
    "ThreadEncoding",
    "ThreadSymbolicExecutor",
    "MemoryModelEncoder",
    "MemoryOrderEncoding",
    "EncodedTest",
    "EncodingContext",
    "EncodingSkeleton",
    "EncodingStatistics",
    "ObservationSlot",
    "build_skeleton",
    "encode_test",
    "share_encode_enabled",
    "skeleton_for",
]
