"""Thread-local symbolic execution (the ``Delta_k`` formulas of Section 3.2.1).

Each thread's unrolled, inlined code is executed symbolically: registers map
to bit-vector terms, control flow becomes guard expressions (every statement
carries the condition under which it executes), and every load/store becomes
a :class:`MemoryAccess` record whose value constraints are supplied later by
the memory-model encoding (``Theta``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    FenceKind,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
)
from repro.lsl.values import is_undef
from repro.sat.bitvec import BitVec


class EncodingError(RuntimeError):
    """The program cannot be encoded (unsupported construct or value)."""


@dataclass
class MemoryAccess:
    """One dynamic load or store instance."""

    index: int                  # global index across the whole test
    kind: str                   # "load" or "store"
    thread: int
    invocation: int             # global invocation index (seriality groups)
    seq: int                    # program-order position within the thread
    guard: int                  # circuit handle: does this access execute?
    addr: BitVec
    value: BitVec
    addr_candidates: list[int] | None
    atomic_group: int | None
    label: str

    @property
    def is_load(self) -> bool:
        return self.kind == "load"

    @property
    def is_store(self) -> bool:
        return self.kind == "store"


@dataclass
class FenceEvent:
    """A fence instance, positioned between accesses of its thread."""

    thread: int
    seq: int
    kind: FenceKind
    guard: int


@dataclass
class ThreadEncoding:
    """Everything the memory-model encoder needs to know about one thread."""

    thread: int
    accesses: list[MemoryAccess] = field(default_factory=list)
    fences: list[FenceEvent] = field(default_factory=list)
    assertions: list[tuple[int, str]] = field(default_factory=list)


class ThreadSymbolicExecutor:
    """Symbolically executes the invocations of a single thread."""

    def __init__(self, context, thread: int) -> None:
        self.ctx = context
        self.thread = thread
        self.encoding = ThreadEncoding(thread=thread)
        self.registers: dict[str, BitVec] = {}
        self.seq = 0
        self._current_invocation = -1
        # Stack of open blocks: (tag, exited-expression handle).
        self._blocks: list[list] = []
        self._atomic_stack: list[int] = []

    # --------------------------------------------------------------- public

    def run_invocation(self, invocation_index: int, statements: list[Statement]) -> None:
        self._current_invocation = invocation_index
        self._exec_body(statements)

    def register_value(self, reg: str) -> BitVec:
        """Final value of a register (fresh/unconstrained if never assigned)."""
        return self._read(reg)

    # ------------------------------------------------------------ execution

    def _guard(self) -> int:
        circuit = self.ctx.circuit
        if not self._blocks:
            return circuit.TRUE
        return circuit.and_many(-frame[1] for frame in self._blocks)

    def _exec_body(self, statements: list[Statement]) -> None:
        for stmt in statements:
            self._exec(stmt)

    def _exec(self, stmt: Statement) -> None:
        circuit = self.ctx.circuit
        bvb = self.ctx.bvb
        if isinstance(stmt, Block):
            self._blocks.append([stmt.tag, circuit.FALSE])
            self._exec_body(stmt.body)
            self._blocks.pop()
        elif isinstance(stmt, Atomic):
            group = self.ctx.new_atomic_group()
            self._atomic_stack.append(group)
            self._exec_body(stmt.body)
            self._atomic_stack.pop()
        elif isinstance(stmt, BreakIf):
            condition = self._truth(stmt.cond)
            taken = circuit.and_(self._guard(), condition)
            frame = self._find_block(stmt.tag)
            frame[1] = circuit.or_(frame[1], taken)
        elif isinstance(stmt, ContinueIf):
            raise EncodingError(
                f"continue to {stmt.tag!r} survived unrolling; "
                "increase the loop bound"
            )
        elif isinstance(stmt, ConstAssign):
            if is_undef(stmt.value):
                self._assign(stmt.dst, self.ctx.fresh_value(f"undef_{stmt.dst}"))
            else:
                self._assign(stmt.dst, self.ctx.const_value(int(stmt.value)))
        elif isinstance(stmt, PrimOp):
            self._assign(stmt.dst, self._prim(stmt))
        elif isinstance(stmt, Choose):
            value = self.ctx.fresh_value(f"choose_{stmt.dst}")
            domain = circuit.or_many(
                bvb.eq_const(value, choice) for choice in stmt.choices
            )
            self.ctx.assert_true(domain)
            self._assign(stmt.dst, value)
        elif isinstance(stmt, Alloc):
            base = self.ctx.allocation.base_for(stmt)
            self.ctx.register_allocation(stmt, base)
            self._assign(stmt.dst, self.ctx.const_value(base))
        elif isinstance(stmt, Load):
            self._load(stmt)
        elif isinstance(stmt, Store):
            self._store(stmt)
        elif isinstance(stmt, Fence):
            guard = self._guard()
            if stmt.candidate is not None:
                # A candidate fence orders accesses only when its selector
                # is assumed; with the selector free the solver can switch
                # the fence off, so an unassumed candidate never constrains.
                guard = circuit.and_(
                    guard, self.ctx.fence_selector(stmt.candidate)
                )
            self.encoding.fences.append(
                FenceEvent(self.thread, self._next_seq(), stmt.kind, guard)
            )
        elif isinstance(stmt, Assume):
            condition = self._truth(stmt.cond)
            self.ctx.assert_true(circuit.implies(self._guard(), condition))
        elif isinstance(stmt, Assert):
            condition = self._truth(stmt.cond)
            holds = circuit.implies(self._guard(), condition)
            self.encoding.assertions.append((holds, f"assert({stmt.cond})"))
        elif isinstance(stmt, (Free, Observe)):
            pass
        elif isinstance(stmt, Call):
            raise EncodingError("calls must be inlined before encoding")
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")

    # ----------------------------------------------------------- statements

    def _load(self, stmt: Load) -> None:
        address = self._read(stmt.addr)
        value = self.ctx.fresh_value(f"load_{self.thread}_{self.seq}")
        access = MemoryAccess(
            index=self.ctx.new_access_index(),
            kind="load",
            thread=self.thread,
            invocation=self._current_invocation,
            seq=self._next_seq(),
            guard=self._guard(),
            addr=address,
            value=value,
            addr_candidates=self.ctx.ranges.possible_addresses(stmt.addr),
            atomic_group=self._atomic_stack[-1] if self._atomic_stack else None,
            label=f"t{self.thread}: {stmt.dst} = *{stmt.addr}",
        )
        self.encoding.accesses.append(access)
        self._assign(stmt.dst, value)

    def _store(self, stmt: Store) -> None:
        address = self._read(stmt.addr)
        value = self._read(stmt.src)
        access = MemoryAccess(
            index=self.ctx.new_access_index(),
            kind="store",
            thread=self.thread,
            invocation=self._current_invocation,
            seq=self._next_seq(),
            guard=self._guard(),
            addr=address,
            value=value,
            addr_candidates=self.ctx.ranges.possible_addresses(stmt.addr),
            atomic_group=self._atomic_stack[-1] if self._atomic_stack else None,
            label=f"t{self.thread}: *{stmt.addr} = {stmt.src}",
        )
        self.encoding.accesses.append(access)

    def _prim(self, stmt: PrimOp) -> BitVec:
        bvb = self.ctx.bvb
        circuit = self.ctx.circuit
        operands = [self._read(arg) for arg in stmt.args]
        op = stmt.op
        if op is PrimitiveOp.MOVE:
            return operands[0]
        if op is PrimitiveOp.ADD:
            return bvb.add(operands[0], operands[1])
        if op is PrimitiveOp.SUB:
            return bvb.sub(operands[0], operands[1])
        if op is PrimitiveOp.EQ:
            return self._bool_vec(bvb.eq(operands[0], operands[1]))
        if op is PrimitiveOp.NE:
            return self._bool_vec(bvb.ne(operands[0], operands[1]))
        if op is PrimitiveOp.LT:
            return self._bool_vec(bvb.ult(operands[0], operands[1]))
        if op is PrimitiveOp.LE:
            return self._bool_vec(bvb.ule(operands[0], operands[1]))
        if op is PrimitiveOp.GT:
            return self._bool_vec(bvb.ugt(operands[0], operands[1]))
        if op is PrimitiveOp.GE:
            return self._bool_vec(bvb.uge(operands[0], operands[1]))
        if op is PrimitiveOp.AND:
            return self._bool_vec(
                circuit.and_(self._nonzero(operands[0]), self._nonzero(operands[1]))
            )
        if op is PrimitiveOp.OR:
            return self._bool_vec(
                circuit.or_(self._nonzero(operands[0]), self._nonzero(operands[1]))
            )
        if op is PrimitiveOp.NOT:
            return self._bool_vec(-self._nonzero(operands[0]))
        raise TypeError(f"unknown primitive {op}")  # pragma: no cover

    # ------------------------------------------------------------ utilities

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def _find_block(self, tag: str) -> list:
        for frame in reversed(self._blocks):
            if frame[0] == tag:
                return frame
        raise EncodingError(f"break targets unknown block {tag!r}")

    def _assign(self, reg: str, value: BitVec) -> None:
        guard = self._guard()
        if guard == self.ctx.circuit.TRUE:
            self.registers[reg] = value
        else:
            old = self._read(reg)
            self.registers[reg] = self.ctx.bvb.ite(guard, value, old)

    def _read(self, reg: str) -> BitVec:
        value = self.registers.get(reg)
        if value is None:
            value = self.ctx.fresh_value(f"uninit_{reg}")
            self.registers[reg] = value
        return value

    def _nonzero(self, value: BitVec) -> int:
        return -self.ctx.bvb.is_zero(value)

    def _truth(self, reg: str) -> int:
        return self._nonzero(self._read(reg))

    def _bool_vec(self, handle: int) -> BitVec:
        return self.ctx.bvb.from_bool(handle, self.ctx.width)
