"""The memory-model formula ``Theta`` (Section 3.2.1).

Given the per-thread symbolic encodings, this module introduces the memory
order variables ``Mxy`` (with antisymmetry by sharing the variable and
transitivity by explicit clauses), and asserts

* the program-order axioms of the chosen memory model,
* the fence and atomic-block ordering rules,
* "initialization happens first" for the init thread,
* the value axioms (via the ``Init_l`` / ``Flows_{s,l}`` style construction
  described in the paper), and
* for the Seriality model, the operation-atomicity constraints used to mine
  the specification.

Two constructions are available:

**Pruned (default).**  A *static order resolver* first decides every pair
whose direction is forced unconditionally — preserved program order,
init-first, atomic-block-internal order, always-executed fences, constant
same-address store pairs — and takes the transitive closure.
:meth:`MemoryOrderEncoding.order` constant-folds those pairs to
``TRUE``/``FALSE`` instead of minting a variable plus a unit clause.  Order
variables are minted only for pairs that can influence outcomes: pairs
queried by the value axioms (a load and its may-alias candidate stores, and
those stores among each other), by conditional fence/same-address/atomic/
seriality constraints, plus the *fill* pairs produced by triangulating the
resulting constraint graph (min-degree elimination).  Transitivity is
asserted as two no-3-cycle clauses per elimination triangle, with statically
known edges folded into binary implications; triangulating the support
graph makes the triangle constraints equivalent to full transitivity (every
cycle in a chordal graph has a chord, so acyclic triangles imply an acyclic
— hence linearizable — order).  Pairs that appear in no constraint get no
variable at all; counterexample decoding topologically sorts the remaining
partial order (:meth:`repro.encoding.formula.EncodedTest
.decode_memory_order`).

**Dense (fallback).**  The original construction — one variable for every
pair and the full O(n^3) transitivity axiom — is kept behind
``CheckOptions.dense_order`` / ``CHECKFENCE_DENSE_ORDER=1`` so differential
harnesses (tests, ``benchmarks/bench_encoding_size.py``, the fuzz CI smoke)
can prove the pruned construction produces identical outcome sets.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from itertools import combinations

from repro.encoding.symbolic import MemoryAccess, ThreadEncoding
from repro.encoding.testprogram import INIT_THREAD
from repro.memorymodel.base import MemoryModel
from repro.sat.circuit import Circuit


def dense_order_enabled(flag: bool | None = None) -> bool:
    """Resolve the dense-order knob: an explicit flag wins, otherwise the
    ``CHECKFENCE_DENSE_ORDER`` environment variable (default: pruned).
    Like every repo env flag, only the literal ``"1"`` enables it."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("CHECKFENCE_DENSE_ORDER", "0") == "1"


@dataclass
class MemoryOrderEncoding:
    """The order relation, for the axioms and for decoding counterexamples.

    A pair of accesses is in exactly one of three states:

    * **statically resolved** (``static_pairs``): the direction is forced by
      the model regardless of the solver's choices; :meth:`order` returns
      the constant ``TRUE``/``FALSE`` handle.
    * **live** (``order_vars``): a SAT variable decides the direction.
    * **dead** (neither): no constraint ever mentions the pair; it has no
      variable, and :meth:`order` raises.  :meth:`resolved` returns ``None``
      so decoders can treat the pair as unordered.

    Under the dense construction every pair is live.
    """

    accesses: list[MemoryAccess]
    order_vars: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Statically resolved pairs, keyed ``(i, j)`` with ``i < j``; the value
    #: is ``True`` when ``accesses[i] <M accesses[j]``.
    static_pairs: dict[tuple[int, int], bool] = field(default_factory=dict)

    def order(self, first: int, second: int) -> int:
        """Circuit handle for ``access[first] <M access[second]``."""
        handle = self.resolved(first, second)
        if handle is None:
            raise KeyError(
                f"no order constraint between accesses {first} and {second} "
                "(the pruned encoding proved the pair order-irrelevant)"
            )
        return handle

    def resolved(self, first: int, second: int) -> int | None:
        """Like :meth:`order`, but ``None`` for dead pairs."""
        if first == second:
            raise ValueError("an access is never ordered before itself")
        forward = first < second
        key = (first, second) if forward else (second, first)
        static = self.static_pairs.get(key)
        if static is not None:
            return Circuit.TRUE if static == forward else Circuit.FALSE
        var = self.order_vars.get(key)
        if var is None:
            return None
        return var if forward else -var


class MemoryModelEncoder:
    """Builds ``Theta`` for one memory model."""

    def __init__(
        self,
        context,
        model: MemoryModel,
        threads: list[ThreadEncoding],
        dense: bool = False,
    ) -> None:
        self.ctx = context
        self.model = model
        self.threads = threads
        self.dense = dense
        # Model-independent enumerations are memoized on the context's
        # shared-streams dict: in a shared-skeleton sweep the first model
        # computes them and the rest reuse them, while scratch encoding
        # recomputes them per model.
        self._streams: dict = getattr(context, "shared_streams", None) or {}
        base = self._streams.get("base")
        if base is None:
            accesses = sorted(
                (a for t in threads for a in t.accesses), key=lambda a: a.index
            )
            # Re-index accesses densely (their global indices may have gaps
            # if other structures were encoded in between).
            position = {a.index: i for i, a in enumerate(accesses)}
            alias_sets: dict[int, frozenset | None] = {
                a.index: (
                    frozenset(a.addr_candidates)
                    if a.addr_candidates is not None
                    else None
                )
                for a in accesses
            }
            by_thread = {
                t.thread: sorted(t.accesses, key=lambda a: a.seq)
                for t in threads
            }
            same_thread_pairs = [
                (first, second)
                for thread_accesses in by_thread.values()
                for i, first in enumerate(thread_accesses)
                for second in thread_accesses[i + 1:]
            ]
            base = (accesses, position, alias_sets, by_thread, same_thread_pairs)
            self._streams["base"] = base
        (
            self.accesses,
            self._position,
            self._alias_sets,
            self._by_thread,
            self._same_thread_pair_list,
        ) = base
        self.encoding = MemoryOrderEncoding(accesses=self.accesses)
        #: Candidate stores per load (visibility-pruned under the pruned
        #: construction), filled by :meth:`_compute_value_candidates`.
        self._value_candidates: list[tuple[MemoryAccess, list[MemoryAccess]]] = []
        #: Handle of every resolvable pair, doubly keyed by global access
        #: index; built by :meth:`_build_order_handle_map` after variable
        #: creation.
        self._order_handles: dict[tuple[int, int], int] = {}
        # Size counters surfaced through EncodingStatistics.
        self.transitivity_clause_count = 0

    # --------------------------------------------------------------- public

    def encode(self) -> MemoryOrderEncoding:
        self._compute_value_candidates()
        if self.dense:
            self._create_order_variables()
            self._assert_transitivity()
        else:
            self._resolve_static_orders()
            self._prune_value_candidates()
            self._create_live_order_variables()
        self._build_order_handle_map()
        self._assert_program_order()
        self._assert_same_address_order()
        self._assert_fences()
        self._assert_atomic_blocks()
        self._assert_init_first()
        if self.model.operation_atomicity:
            self._assert_operation_atomicity()
        self._assert_value_axioms()
        return self.encoding

    # ----------------------------------------------------------- statistics

    @property
    def order_pair_count(self) -> int:
        n = len(self.accesses)
        return n * (n - 1) // 2

    @property
    def order_var_count(self) -> int:
        return len(self.encoding.order_vars)

    @property
    def static_pair_count(self) -> int:
        return len(self.encoding.static_pairs)

    # ------------------------------------------------------ dense structure

    def _create_order_variables(self) -> None:
        circuit = self.ctx.circuit
        n = len(self.accesses)
        for i in range(n):
            for j in range(i + 1, n):
                self.encoding.order_vars[(i, j)] = circuit.var(f"M[{i},{j}]")

    def _assert_transitivity(self) -> None:
        n = len(self.accesses)
        assert_clause = self.ctx.assert_clause
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                order_ij = self._order(i, j)
                for k in range(n):
                    if k == i or k == j:
                        continue
                    # i <M j and j <M k implies i <M k
                    assert_clause([-order_ij, -self._order(j, k), self._order(i, k)])
                    self.transitivity_clause_count += 1

    # ----------------------------------------------------- static resolution

    def _resolve_static_orders(self) -> None:
        """Precompute every unconditionally ordered pair and its closure.

        Static edges always point from the init thread into the others and,
        within a thread, from lower to higher ``seq``, so sorting by
        ``(non-init, thread, seq)`` is a topological order and the closure
        is one reverse sweep over bitmask reachability sets.
        """
        n = len(self.accesses)
        position = self._position
        # The edge set splits into a model-independent *core* — init-thread
        # order, atomic-block-internal order, always-executed fences, and
        # constant same-address store pairs (conditional only on the
        # model's same-address axiom being on, which is part of the cache
        # key) — plus the model's preserved program-order pairs.  The core
        # masks are memoized on the shared streams, so a sweep computes
        # them once; edges are idempotent under ``|=``, so unioning the
        # core with the preserves pass yields exactly the edge set the
        # single combined walk used to produce.
        core_key = ("core_successors", self.model.same_address_store_order)
        core = self._streams.get(core_key)
        if core is None:
            core = [0] * n

            def add_edge(first: MemoryAccess, second: MemoryAccess) -> None:
                core[position[first.index]] |= 1 << position[second.index]

            circuit_true = self.ctx.circuit.TRUE
            for first, second in self._same_thread_pairs():
                if first.thread == INIT_THREAD:
                    add_edge(first, second)
                elif (
                    first.atomic_group is not None
                    and first.atomic_group == second.atomic_group
                ):
                    add_edge(first, second)
                elif self._same_address_static_edge(first, second):
                    # Axiom 1 with a constant address comparison: the guard
                    # of the implication is always true, so the order is
                    # forced.
                    add_edge(first, second)
            for first, second, guard in self._fence_pairs():
                if guard == circuit_true:
                    add_edge(first, second)
            init_accesses = [a for a in self.accesses if a.thread == INIT_THREAD]
            others = [a for a in self.accesses if a.thread != INIT_THREAD]
            for first in init_accesses:
                for second in others:
                    add_edge(first, second)
            self._streams[core_key] = core

        successors = list(core)
        preserves = self.model.preserves
        for first, second in self._same_thread_pairs():
            if first.thread != INIT_THREAD and preserves(
                first.kind, second.kind
            ):
                successors[position[first.index]] |= (
                    1 << position[second.index]
                )

        topo = sorted(
            range(n),
            key=lambda p: (
                self.accesses[p].thread != INIT_THREAD,
                self.accesses[p].thread,
                self.accesses[p].seq,
                p,
            ),
        )
        reach = [0] * n
        for p in reversed(topo):
            result = successors[p]
            pending = successors[p]
            while pending:
                low = pending & -pending
                result |= reach[low.bit_length() - 1]
                pending ^= low
            reach[p] = result

        static = self.encoding.static_pairs
        for i in range(n):
            mask = reach[i]
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                mask ^= low
                if i < j:
                    static[(i, j)] = True
                else:
                    static[(j, i)] = False

    # ------------------------------------------------- conflict restriction

    def _create_live_order_variables(self) -> None:
        """Mint variables only for pairs that can influence outcomes, then
        assert pruned transitivity over the triangulated support graph."""
        seeds = self._seed_pairs()
        init_positions = {
            self._position[a.index]
            for a in self.accesses
            if a.thread == INIT_THREAD
        }
        triangles = self._triangulate(seeds, init_positions)
        # Order variables are minted unnamed: no decoder reads them back by
        # name, and the f-string plus two name-table inserts per variable
        # were a measurable slice of the per-model layer.  The dense
        # (debugging) construction keeps its names.
        var = self.ctx.circuit.var
        order_vars = self.encoding.order_vars
        for key in sorted(seeds):
            order_vars[key] = var()
        self._assert_transitivity_pruned(triangles)

    def _seed_pairs(self) -> set[tuple[int, int]]:
        """Every non-static pair some constraint will mention."""
        seeds: set[tuple[int, int]] = set()
        position = self._position
        resolved = self.encoding.resolved

        def need(first: MemoryAccess, second: MemoryAccess) -> None:
            i, j = position[first.index], position[second.index]
            key = (i, j) if i < j else (j, i)
            if key not in self.encoding.static_pairs:
                seeds.add(key)

        circuit = self.ctx.circuit
        for first, second in self._same_address_pairs():
            need(first, second)
        for first, second, guard in self._fence_pairs():
            if guard != circuit.TRUE and guard != circuit.FALSE:
                if not self.model.preserves(first.kind, second.kind):
                    need(first, second)
        for first, second, other in self._atomic_exclusion_triples():
            first_other = resolved(
                position[first.index], position[other.index]
            )
            other_second = resolved(
                position[other.index], position[second.index]
            )
            # The clause (not first<other) or (not other<second) is
            # trivially true when either order is statically impossible.
            if first_other == circuit.FALSE or other_second == circuit.FALSE:
                continue
            if first_other is None:
                need(first, other)
            if other_second is None:
                need(other, second)
        if self.model.operation_atomicity:
            for group_a, group_b in self._invocation_group_pairs():
                for x in group_a:
                    for y in group_b:
                        need(x, y)
        for load, candidates in self._value_candidates:
            for store in candidates:
                if not self._forwarded(store, load):
                    need(store, load)
            for first, second in combinations(candidates, 2):
                need(first, second)
        return seeds

    def _triangulate(
        self,
        seeds: set[tuple[int, int]],
        excluded: set[int],
    ) -> list[tuple[int, int, int]]:
        """Chordalize the support graph by min-degree elimination.

        The support graph has an edge for every live or static pair between
        non-init accesses (init accesses have only outgoing static edges, so
        no cycle passes through them).  Fill edges discovered during
        elimination become live pairs (added to ``seeds``); the returned
        elimination triangles are exactly the triples over which no-3-cycle
        clauses must be asserted to make every orientation extendable to a
        total order.
        """
        n = len(self.accesses)
        vertices = [p for p in range(n) if p not in excluded]
        # Adjacency as one bitmask per vertex: membership tests, edge
        # updates and degree counts (popcount) all beat set operations in
        # this loop, and iterating set bits in ascending order gives the
        # sorted neighbor walk the fill computation needs for determinism.
        adjacency = [0] * n
        allowed = 0
        for p in vertices:
            allowed |= 1 << p
        for pairs in (seeds, self.encoding.static_pairs):
            for i, j in pairs:
                if (allowed >> i) & 1 and (allowed >> j) & 1:
                    adjacency[i] |= 1 << j
                    adjacency[j] |= 1 << i

        triangles: list[tuple[int, int, int]] = []
        static_pairs = self.encoding.static_pairs
        append = triangles.append
        alive = set(vertices)
        # Lazy min-degree heap: entries go stale when a neighbor's degree
        # changes, so each pop re-checks the recorded degree, and touched
        # neighbors are re-entered with their settled degree — the pop
        # order matches an eager min-scan exactly.  Scanning `alive` for
        # the minimum on every round was quadratic in the vertex count and
        # showed up in layer profiles.
        heap = [(adjacency[p].bit_count(), p) for p in vertices]
        heapq.heapify(heap)
        push = heapq.heappush
        while alive:
            degree, vertex = heapq.heappop(heap)
            if vertex not in alive:
                continue
            mask = adjacency[vertex]
            current = mask.bit_count()
            if current != degree:
                push(heap, (current, vertex))
                continue
            alive.discard(vertex)
            neighbors = []
            while mask:
                low = mask & -mask
                neighbors.append(low.bit_length() - 1)
                mask ^= low
            vertex_bit = 1 << vertex
            for index, a in enumerate(neighbors):
                adjacency[a] &= ~vertex_bit
                a_bit = 1 << a
                for b in neighbors[index + 1:]:
                    append((vertex, a, b))
                    b_bit = 1 << b
                    if not adjacency[a] & b_bit:
                        adjacency[a] |= b_bit
                        adjacency[b] |= a_bit
                        # a < b by construction (ascending bit order).
                        if (a, b) not in static_pairs:
                            seeds.add((a, b))
            adjacency[vertex] = 0
            for a in neighbors:
                push(heap, (adjacency[a].bit_count(), a))
        return triangles

    def _assert_transitivity_pruned(
        self, triangles: list[tuple[int, int, int]]
    ) -> None:
        """Forbid both cyclic orientations of every elimination triangle.

        Statically resolved edges fold away: a triangle with a known edge
        degenerates to one binary implication, and a triangle whose cycle is
        already statically impossible emits nothing.

        This is the hottest loop of the per-model layer (hundreds of
        thousands of triangles on the larger tests), so every support-graph
        edge is resolved to its SAT literal (or static truth value) exactly
        once up front and the clauses go through the trusted CNF path — the
        three literals of a triangle clause are distinct order variables by
        construction, so no per-clause normalization is needed.
        """
        # ``i*n + j`` in *both* orientations -> True/False when statically
        # resolved, else the SAT literal of "i <M j".  A flat list indexed
        # arithmetically beats a tuple-keyed dict in the triangle loop;
        # booleans and literals share the slots: literals always have
        # |lit| >= 2 (variable 1 is the lowering's constant), so identity
        # checks against True/False are unambiguous.
        n_acc = len(self.accesses)
        edges: list = [None] * (n_acc * n_acc)
        for (i, j), forced in self.encoding.static_pairs.items():
            edges[i * n_acc + j] = forced
            edges[j * n_acc + i] = not forced
        order_vars = self.encoding.order_vars
        lits = self.ctx.lowering.var_literals(order_vars.values())
        for (i, j), lit in zip(order_vars, lits):
            edges[i * n_acc + j] = lit
            edges[j * n_acc + i] = -lit
        # Clauses are batched into flat buffers and installed in one go;
        # `append` is bound once — this loop dominates layer time on the
        # larger tests.
        buf: list[int] = []
        lengths: list[int] = []
        push = buf.append
        push_len = lengths.append
        count = 0
        for v, a, b in triangles:
            row = v * n_acc
            e1 = edges[row + a]  # v <M a
            e2 = edges[a * n_acc + b]  # a <M b
            e3 = edges[row + b]  # v <M b
            # cycle v -> a -> b -> v: not(e1 and e2 and not e3)
            if not (e1 is False or e2 is False or e3 is True):
                n = 0
                if e1 is not True:
                    push(-e1)
                    n += 1
                if e2 is not True:
                    push(-e2)
                    n += 1
                if e3 is not False:
                    push(e3)
                    n += 1
                push_len(n)
                count += 1
            # cycle v -> b -> a -> v: not(e3 and not e2 and not e1)
            if not (e3 is False or e2 is True or e1 is True):
                n = 0
                if e3 is not True:
                    push(-e3)
                    n += 1
                if e2 is not False:
                    push(e2)
                    n += 1
                if e1 is not False:
                    push(e1)
                    n += 1
                push_len(n)
                count += 1
        self.ctx.lowering.cnf.add_clauses_trusted_flat(buf, lengths)
        self.transitivity_clause_count += count

    # ---------------------------------------------------------- pair streams

    def _order(self, i: int, j: int) -> int:
        return self.encoding.order(i, j)

    def _build_order_handle_map(self) -> None:
        """Resolve every live/static pair to its handle once, keyed by
        global access index in both orientations, so the axiom emitters
        (the value axioms in particular call :meth:`_order_of` once per
        candidate-store pair) skip the position lookup and the per-call
        key normalization of :meth:`MemoryOrderEncoding.resolved`."""
        accesses = self.accesses
        handles: dict[tuple[int, int], int] = {}
        for (i, j), forced in self.encoding.static_pairs.items():
            xi, xj = accesses[i].index, accesses[j].index
            if forced:
                handles[(xi, xj)] = Circuit.TRUE
                handles[(xj, xi)] = Circuit.FALSE
            else:
                handles[(xi, xj)] = Circuit.FALSE
                handles[(xj, xi)] = Circuit.TRUE
        for (i, j), var in self.encoding.order_vars.items():
            xi, xj = accesses[i].index, accesses[j].index
            handles[(xi, xj)] = var
            handles[(xj, xi)] = -var
        self._order_handles = handles

    def _same_thread_pairs(self):
        """(earlier, later) pairs of accesses of the same thread, memoized
        (several axioms walk the list per model)."""
        return self._same_thread_pair_list

    def _same_address_static_edge(
        self, first: MemoryAccess, second: MemoryAccess
    ) -> bool:
        """Same-address store order with a *constant* address comparison —
        the static half of axiom 1 (the symbolic half is emitted by
        :meth:`_assert_same_address_order`)."""
        return (
            self.model.same_address_store_order
            and second.is_store
            and self._may_alias(first, second)
            and self._addr_eq(first, second) == self.ctx.circuit.TRUE
        )

    def _same_address_pairs(self):
        """Pairs the same-address store-order axiom constrains with a
        *symbolic* address comparison (constant comparisons are static or
        vacuous)."""
        if not self.model.same_address_store_order:
            return
        circuit = self.ctx.circuit
        for first, second in self._same_thread_pairs():
            if not second.is_store:
                continue
            if first.thread == INIT_THREAD:
                continue  # already totally ordered
            if self.model.preserves(first.kind, second.kind):
                continue  # already ordered unconditionally
            if not self._may_alias(first, second):
                continue
            addr_eq = self._addr_eq(first, second)
            if addr_eq == circuit.FALSE:
                continue  # can never be the same address
            if addr_eq == circuit.TRUE and not self.dense:
                continue  # statically resolved instead
            yield first, second

    def _fence_pairs(self) -> list[tuple[MemoryAccess, MemoryAccess, int]]:
        """(before, after, guard) for every fence-ordered pair, materialized
        once per test (the pruned construction walks the list three times
        per model: static resolution, seeding, assertion)."""
        pairs = self._streams.get("fence_pairs")
        if pairs is None:
            pairs = list(self._enumerate_fence_pairs())
            self._streams["fence_pairs"] = pairs
        return pairs

    def _enumerate_fence_pairs(self):
        circuit = self.ctx.circuit
        for thread in self.threads:
            if not thread.fences:
                continue
            accesses = self._by_thread[thread.thread]
            for fence in thread.fences:
                if fence.guard == circuit.FALSE:
                    continue
                before = [
                    a for a in accesses
                    if a.seq < fence.seq and a.kind in fence.kind.orders_before
                ]
                after = [
                    a for a in accesses
                    if a.seq > fence.seq and a.kind in fence.kind.orders_after
                ]
                for first in before:
                    for second in after:
                        yield first, second, fence.guard

    def _atomic_groups(self) -> list[list[MemoryAccess]]:
        groups_list = self._streams.get("atomic_groups")
        if groups_list is None:
            groups: dict[int, list[MemoryAccess]] = {}
            # Iterating threads in seq order keeps every group seq-sorted
            # without re-sorting (atomic blocks never span threads).
            for accesses in self._by_thread.values():
                for access in accesses:
                    if access.atomic_group is not None:
                        groups.setdefault(access.atomic_group, []).append(access)
            groups_list = list(groups.values())
            self._streams["atomic_groups"] = groups_list
        return groups_list

    def _atomic_exclusion_triples(self):
        """(first, second, other) triples for atomic non-interleaving: no
        ``other`` of a different thread lands between two block members.
        Materialized once per test — the triple count is quadratic in block
        size times the outside accesses, and both the seeder and the
        assertion pass walk it for every model."""
        triples = self._streams.get("exclusion_triples")
        if triples is None:
            triples = []
            for members in self._atomic_groups():
                thread = members[0].thread
                outside = [a for a in self.accesses if a.thread != thread]
                for i, first in enumerate(members):
                    for second in members[i + 1:]:
                        for other in outside:
                            triples.append((first, second, other))
            self._streams["exclusion_triples"] = triples
        return triples

    def _invocation_group_pairs(self):
        """(accesses of invocation A, accesses of invocation B) for every
        unordered pair of invocations (Seriality)."""
        pairs = self._streams.get("invocation_group_pairs")
        if pairs is None:
            by_invocation: dict[int, list[MemoryAccess]] = {}
            for access in self.accesses:
                by_invocation.setdefault(access.invocation, []).append(access)
            invocations = sorted(by_invocation)
            pairs = [
                (by_invocation[first_inv], by_invocation[second_inv])
                for index, first_inv in enumerate(invocations)
                for second_inv in invocations[index + 1:]
            ]
            self._streams["invocation_group_pairs"] = pairs
        return pairs

    # ------------------------------------------------------------ the axioms

    def _assert_program_order(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        for first, second in self._same_thread_pairs():
            enforce = (
                first.thread == INIT_THREAD
                or self.model.preserves(first.kind, second.kind)
            )
            if enforce:
                handle = self._order_of(first, second)
                if handle != circuit_true:  # statically resolved otherwise
                    self.ctx.assert_true(handle)

    def _assert_same_address_order(self) -> None:
        # addr_eq -> ordered, asserted as one clause directly (routing it
        # through an implies() node would Tseitin-lower an OR gate per pair
        # just to assert its output true).
        circuit = self.ctx.circuit
        for first, second in self._same_address_pairs():
            handle = self._order_of(first, second)
            if handle == circuit.TRUE:
                continue
            self.ctx.assert_clause(
                [-self._addr_eq(first, second), handle]
            )

    def _assert_fences(self) -> None:
        circuit = self.ctx.circuit
        for first, second, guard in self._fence_pairs():
            if self.model.preserves(first.kind, second.kind):
                continue
            handle = self._order_of(first, second)
            if handle == circuit.TRUE:
                continue  # statically resolved (always-executed fence)
            self.ctx.assert_clause([-guard, handle])

    def _assert_atomic_blocks(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        # (a) program order inside the atomic block
        for members in self._atomic_groups():
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    handle = self._order_of(first, second)
                    if handle != circuit_true:
                        self.ctx.assert_true(handle)
        # (b) no access of another thread interleaves with the block.  The
        # triple count is the layer's largest clause source after
        # transitivity, so handles come straight from the prebuilt map (a
        # pair whose order is statically impossible was never seeded, so a
        # missing entry means the clause is vacuous), literals are memoized
        # locally (the same order variables recur across triples), and the
        # clauses go out through the trusted bulk path — at most two
        # distinct order literals each, so no normalization is needed.
        handles = self._order_handles
        literal = self.ctx.lowering.literal
        true_handle = Circuit.TRUE
        false_handle = Circuit.FALSE
        lit_of: dict[int, int] = {}
        buf: list[int] = []
        lengths: list[int] = []
        push = buf.append
        push_len = lengths.append
        for first, second, other in self._atomic_exclusion_triples():
            first_other = handles.get((first.index, other.index))
            other_second = handles.get((other.index, second.index))
            if first_other == false_handle or other_second == false_handle:
                continue  # one of the two orders is statically impossible
            count = 0
            if first_other != true_handle:
                lit = lit_of.get(first_other)
                if lit is None:
                    lit = literal(first_other)
                    lit_of[first_other] = lit
                push(-lit)
                count += 1
            if other_second != true_handle:
                lit = lit_of.get(other_second)
                if lit is None:
                    lit = literal(other_second)
                    lit_of[other_second] = lit
                push(-lit)
                count += 1
            # count == 0 (both orders statically forced) appends the empty
            # clause, marking the formula unsatisfiable exactly as the
            # generic path did.
            push_len(count)
        if lengths:
            self.ctx.lowering.cnf.add_clauses_trusted_flat(buf, lengths)

    def _assert_init_first(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        init_accesses = [a for a in self.accesses if a.thread == INIT_THREAD]
        others = [a for a in self.accesses if a.thread != INIT_THREAD]
        for first in init_accesses:
            for second in others:
                handle = self._order_of(first, second)
                if handle != circuit_true:  # statically resolved otherwise
                    self.ctx.assert_true(handle)

    def _assert_operation_atomicity(self) -> None:
        """Seriality: accesses of different invocations never interleave.

        ``order <-> OP`` goes out as two clauses directly; a static pair
        degenerates to a unit constraint on the OP variable (an ``iff()``
        node would Tseitin-lower an XOR cone per access pair just to assert
        its output).  Clauses are batched through the trusted path — every
        clause pairs the OP literal with a distinct order literal.
        """
        circuit = self.ctx.circuit
        literal = self.ctx.lowering.literal
        handles = self._order_handles
        true_handle = Circuit.TRUE
        false_handle = Circuit.FALSE
        lit_of: dict[int, int] = {}
        buf: list[int] = []
        lengths: list[int] = []
        push = buf.append
        push_len = lengths.append
        for group_a, group_b in self._invocation_group_pairs():
            first_inv = group_a[0].invocation
            second_inv = group_b[0].invocation
            op_lit = literal(circuit.var(f"OP[{first_inv},{second_inv}]"))
            for x in group_a:
                x_index = x.index
                for y in group_b:
                    handle = handles[(x_index, y.index)]
                    if handle == true_handle:
                        push(op_lit)
                        push_len(1)
                    elif handle == false_handle:
                        push(-op_lit)
                        push_len(1)
                    else:
                        lit = lit_of.get(handle)
                        if lit is None:
                            lit = literal(handle)
                            lit_of[handle] = lit
                        push(-lit)
                        push(op_lit)
                        push_len(2)
                        push(lit)
                        push(-op_lit)
                        push_len(2)
        if lengths:
            self.ctx.lowering.cnf.add_clauses_trusted_flat(buf, lengths)

    # ---------------------------------------------------------- value axioms

    def _compute_value_candidates(self) -> None:
        """Candidate stores per load, grouped by location up front.

        Stores are indexed by their (frozen) alias sets once; each load then
        gathers the stores of its own candidate locations instead of testing
        every (load, store) pair.  Under the pruned construction, stores
        whose visibility is statically impossible (ordered after the load
        with no forwarding) are dropped here, before any term is built.
        """
        cached = self._streams.get("value_candidates")
        if cached is not None:
            self._value_candidates = cached
            return
        stores = [a for a in self.accesses if a.is_store]
        by_location: dict[int, list[MemoryAccess]] = {}
        wildcard: list[MemoryAccess] = []
        for store in stores:
            alias = self._alias_sets[store.index]
            if alias is None:
                wildcard.append(store)
            else:
                for location in alias:
                    by_location.setdefault(location, []).append(store)
        for load in self.accesses:
            if not load.is_load:
                continue
            alias = self._alias_sets[load.index]
            if alias is None:
                candidates = list(stores)
            else:
                merged: dict[int, MemoryAccess] = {
                    s.index: s for s in wildcard
                }
                for location in alias:
                    for store in by_location.get(location, ()):
                        merged[store.index] = store
                candidates = [merged[index] for index in sorted(merged)]
            self._value_candidates.append((load, candidates))
        self._streams["value_candidates"] = self._value_candidates

    def _prune_value_candidates(self) -> None:
        """Drop statically invisible stores from every candidate list (the
        store is ordered after the load and forwarding does not apply).
        Runs once, right after static resolution, so the seeder and the
        value-axiom emitter consume the exact same lists."""
        self._value_candidates = [
            (load, [s for s in candidates if self._visible(s, load)])
            for load, candidates in self._value_candidates
        ]

    def _visible(self, store: MemoryAccess, load: MemoryAccess) -> bool:
        """Can this store possibly be visible to the load?  False only when
        the static resolver ordered the store after the load and store
        forwarding does not apply."""
        if self._forwarded(store, load):
            return True
        handle = self.encoding.resolved(
            self._position[store.index], self._position[load.index]
        )
        return handle != self.ctx.circuit.FALSE

    def _assert_value_axioms(self) -> None:
        # The hottest axiom of the per-model layer: quadratic in the
        # candidate stores of every load.  Bind the circuit constructors
        # once and read order handles straight from the prebuilt map
        # (:meth:`_order_of` and :meth:`_visibility_order` per pair were
        # measured to cost as much as the term construction itself).
        circuit = self.ctx.circuit
        and_ = circuit.and_
        and_many = circuit.and_many
        addr_eq = self.ctx.addr_eq
        value_eq = self.ctx.value_eq
        handles = self._order_handles
        true_handle = Circuit.TRUE
        forwarding = self.model.store_forwarding
        for load, candidates in self._value_candidates:
            load_index = load.index
            visibility: list[int] = []
            for store in candidates:
                if (
                    forwarding
                    and store.thread == load.thread
                    and store.seq < load.seq
                ):
                    order = true_handle
                else:
                    order = handles[(store.index, load_index)]
                visibility.append(
                    and_(store.guard, addr_eq(load, store), order)
                )
            # Case 1: no visible store -> the load reads the initial value.
            no_store = and_many([-v for v in visibility])
            terms = [and_(no_store, self._initial_value_term(load))]
            # Case 2: the load reads the <M-maximal visible store.
            count = len(candidates)
            for i in range(count):
                store = candidates[i]
                store_index = store.index
                is_maximal = and_many(
                    [
                        -and_(visibility[j], handles[(store_index, candidates[j].index)])
                        for j in range(count)
                        if j != i
                    ]
                )
                terms.append(
                    and_(visibility[i], is_maximal, value_eq(load, store))
                )
            self.ctx.assert_clause([-load.guard, circuit.or_many(terms)])

    def _forwarded(self, store: MemoryAccess, load: MemoryAccess) -> bool:
        """Store-queue forwarding: a program-order-earlier store of the
        load's own thread is visible regardless of the global order."""
        return (
            self.model.store_forwarding
            and store.thread == load.thread
            and store.seq < load.seq
        )

    def _visibility_order(self, store: MemoryAccess, load: MemoryAccess) -> int:
        """The ordering part of ``store in S(load)``."""
        if self._forwarded(store, load):
            return self.ctx.circuit.TRUE
        return self._order_of(store, load)

    def _initial_value_term(self, load: MemoryAccess) -> int:
        # Model-independent, so built (and cached) on the shared context.
        return self.ctx.initial_value_term(load)

    # ------------------------------------------------------------ utilities

    def _order_of(self, first: MemoryAccess, second: MemoryAccess) -> int:
        return self._order_handles[(first.index, second.index)]

    def _may_alias(self, first: MemoryAccess, second: MemoryAccess) -> bool:
        first_set = self._alias_sets[first.index]
        second_set = self._alias_sets[second.index]
        if first_set is None or second_set is None:
            return True
        return not first_set.isdisjoint(second_set)

    def _addr_eq(self, first: MemoryAccess, second: MemoryAccess) -> int:
        # The context cache is prewarmed by the skeleton build, so every
        # memory model shares one set of address-equality terms.
        return self.ctx.addr_eq(first, second)
