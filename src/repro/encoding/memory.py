"""The memory-model formula ``Theta`` (Section 3.2.1).

Given the per-thread symbolic encodings, this module introduces the memory
order variables ``Mxy`` (with antisymmetry by sharing the variable and
transitivity by explicit clauses), and asserts

* the program-order axioms of the chosen memory model,
* the fence and atomic-block ordering rules,
* "initialization happens first" for the init thread,
* the value axioms (via the ``Init_l`` / ``Flows_{s,l}`` style construction
  described in the paper), and
* for the Seriality model, the operation-atomicity constraints used to mine
  the specification.

Two constructions are available:

**Pruned (default).**  A *static order resolver* first decides every pair
whose direction is forced unconditionally — preserved program order,
init-first, atomic-block-internal order, always-executed fences, constant
same-address store pairs — and takes the transitive closure.
:meth:`MemoryOrderEncoding.order` constant-folds those pairs to
``TRUE``/``FALSE`` instead of minting a variable plus a unit clause.  Order
variables are minted only for pairs that can influence outcomes: pairs
queried by the value axioms (a load and its may-alias candidate stores, and
those stores among each other), by conditional fence/same-address/atomic/
seriality constraints, plus the *fill* pairs produced by triangulating the
resulting constraint graph (min-degree elimination).  Transitivity is
asserted as two no-3-cycle clauses per elimination triangle, with statically
known edges folded into binary implications; triangulating the support
graph makes the triangle constraints equivalent to full transitivity (every
cycle in a chordal graph has a chord, so acyclic triangles imply an acyclic
— hence linearizable — order).  Pairs that appear in no constraint get no
variable at all; counterexample decoding topologically sorts the remaining
partial order (:meth:`repro.encoding.formula.EncodedTest
.decode_memory_order`).

**Dense (fallback).**  The original construction — one variable for every
pair and the full O(n^3) transitivity axiom — is kept behind
``CheckOptions.dense_order`` / ``CHECKFENCE_DENSE_ORDER=1`` so differential
harnesses (tests, ``benchmarks/bench_encoding_size.py``, the fuzz CI smoke)
can prove the pruned construction produces identical outcome sets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import combinations

from repro.encoding.symbolic import MemoryAccess, ThreadEncoding
from repro.encoding.testprogram import INIT_THREAD
from repro.memorymodel.base import MemoryModel
from repro.sat.circuit import Circuit


def dense_order_enabled(flag: bool | None = None) -> bool:
    """Resolve the dense-order knob: an explicit flag wins, otherwise the
    ``CHECKFENCE_DENSE_ORDER`` environment variable (default: pruned).
    Like every repo env flag, only the literal ``"1"`` enables it."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("CHECKFENCE_DENSE_ORDER", "0") == "1"


@dataclass
class MemoryOrderEncoding:
    """The order relation, for the axioms and for decoding counterexamples.

    A pair of accesses is in exactly one of three states:

    * **statically resolved** (``static_pairs``): the direction is forced by
      the model regardless of the solver's choices; :meth:`order` returns
      the constant ``TRUE``/``FALSE`` handle.
    * **live** (``order_vars``): a SAT variable decides the direction.
    * **dead** (neither): no constraint ever mentions the pair; it has no
      variable, and :meth:`order` raises.  :meth:`resolved` returns ``None``
      so decoders can treat the pair as unordered.

    Under the dense construction every pair is live.
    """

    accesses: list[MemoryAccess]
    order_vars: dict[tuple[int, int], int] = field(default_factory=dict)
    #: Statically resolved pairs, keyed ``(i, j)`` with ``i < j``; the value
    #: is ``True`` when ``accesses[i] <M accesses[j]``.
    static_pairs: dict[tuple[int, int], bool] = field(default_factory=dict)

    def order(self, first: int, second: int) -> int:
        """Circuit handle for ``access[first] <M access[second]``."""
        handle = self.resolved(first, second)
        if handle is None:
            raise KeyError(
                f"no order constraint between accesses {first} and {second} "
                "(the pruned encoding proved the pair order-irrelevant)"
            )
        return handle

    def resolved(self, first: int, second: int) -> int | None:
        """Like :meth:`order`, but ``None`` for dead pairs."""
        if first == second:
            raise ValueError("an access is never ordered before itself")
        forward = first < second
        key = (first, second) if forward else (second, first)
        static = self.static_pairs.get(key)
        if static is not None:
            return Circuit.TRUE if static == forward else Circuit.FALSE
        var = self.order_vars.get(key)
        if var is None:
            return None
        return var if forward else -var


class MemoryModelEncoder:
    """Builds ``Theta`` for one memory model."""

    def __init__(
        self,
        context,
        model: MemoryModel,
        threads: list[ThreadEncoding],
        dense: bool = False,
    ) -> None:
        self.ctx = context
        self.model = model
        self.threads = threads
        self.dense = dense
        self.accesses: list[MemoryAccess] = sorted(
            (a for t in threads for a in t.accesses), key=lambda a: a.index
        )
        # Re-index accesses densely (their global indices may have gaps if
        # other structures were encoded in between).
        self._position = {a.index: i for i, a in enumerate(self.accesses)}
        self.encoding = MemoryOrderEncoding(accesses=self.accesses)
        self._addr_eq_cache: dict[tuple[int, int], int] = {}
        # Frozen alias sets and per-thread seq-sorted access lists are
        # computed once and reused by every axiom (the dense construction
        # re-derived both repeatedly).
        self._alias_sets: dict[int, frozenset | None] = {
            a.index: (
                frozenset(a.addr_candidates)
                if a.addr_candidates is not None
                else None
            )
            for a in self.accesses
        }
        self._by_thread: dict[int, list[MemoryAccess]] = {
            t.thread: sorted(t.accesses, key=lambda a: a.seq)
            for t in self.threads
        }
        #: Candidate stores per load (visibility-pruned under the pruned
        #: construction), filled by :meth:`_compute_value_candidates`.
        self._value_candidates: list[tuple[MemoryAccess, list[MemoryAccess]]] = []
        self._fence_pair_list: (
            list[tuple[MemoryAccess, MemoryAccess, int]] | None
        ) = None
        # Size counters surfaced through EncodingStatistics.
        self.transitivity_clause_count = 0

    # --------------------------------------------------------------- public

    def encode(self) -> MemoryOrderEncoding:
        self._compute_value_candidates()
        if self.dense:
            self._create_order_variables()
            self._assert_transitivity()
        else:
            self._resolve_static_orders()
            self._prune_value_candidates()
            self._create_live_order_variables()
        self._assert_program_order()
        self._assert_same_address_order()
        self._assert_fences()
        self._assert_atomic_blocks()
        self._assert_init_first()
        if self.model.operation_atomicity:
            self._assert_operation_atomicity()
        self._assert_value_axioms()
        return self.encoding

    # ----------------------------------------------------------- statistics

    @property
    def order_pair_count(self) -> int:
        n = len(self.accesses)
        return n * (n - 1) // 2

    @property
    def order_var_count(self) -> int:
        return len(self.encoding.order_vars)

    @property
    def static_pair_count(self) -> int:
        return len(self.encoding.static_pairs)

    # ------------------------------------------------------ dense structure

    def _create_order_variables(self) -> None:
        circuit = self.ctx.circuit
        n = len(self.accesses)
        for i in range(n):
            for j in range(i + 1, n):
                self.encoding.order_vars[(i, j)] = circuit.var(f"M[{i},{j}]")

    def _assert_transitivity(self) -> None:
        n = len(self.accesses)
        assert_clause = self.ctx.assert_clause
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                order_ij = self._order(i, j)
                for k in range(n):
                    if k == i or k == j:
                        continue
                    # i <M j and j <M k implies i <M k
                    assert_clause([-order_ij, -self._order(j, k), self._order(i, k)])
                    self.transitivity_clause_count += 1

    # ----------------------------------------------------- static resolution

    def _resolve_static_orders(self) -> None:
        """Precompute every unconditionally ordered pair and its closure.

        Static edges always point from the init thread into the others and,
        within a thread, from lower to higher ``seq``, so sorting by
        ``(non-init, thread, seq)`` is a topological order and the closure
        is one reverse sweep over bitmask reachability sets.
        """
        n = len(self.accesses)
        position = self._position
        successors = [0] * n

        def add_edge(first: MemoryAccess, second: MemoryAccess) -> None:
            successors[position[first.index]] |= 1 << position[second.index]

        circuit_true = self.ctx.circuit.TRUE
        for first, second in self._same_thread_pairs():
            if first.thread == INIT_THREAD or self.model.preserves(
                first.kind, second.kind
            ):
                add_edge(first, second)
            elif (
                first.atomic_group is not None
                and first.atomic_group == second.atomic_group
            ):
                add_edge(first, second)
            elif self._same_address_static_edge(first, second):
                # Axiom 1 with a constant address comparison: the guard of
                # the implication is always true, so the order is forced.
                add_edge(first, second)
        for first, second, guard in self._fence_pairs():
            if guard == circuit_true:
                add_edge(first, second)
        init_accesses = [a for a in self.accesses if a.thread == INIT_THREAD]
        others = [a for a in self.accesses if a.thread != INIT_THREAD]
        for first in init_accesses:
            for second in others:
                add_edge(first, second)

        topo = sorted(
            range(n),
            key=lambda p: (
                self.accesses[p].thread != INIT_THREAD,
                self.accesses[p].thread,
                self.accesses[p].seq,
                p,
            ),
        )
        reach = [0] * n
        for p in reversed(topo):
            result = successors[p]
            pending = successors[p]
            while pending:
                low = pending & -pending
                result |= reach[low.bit_length() - 1]
                pending ^= low
            reach[p] = result

        static = self.encoding.static_pairs
        for i in range(n):
            mask = reach[i]
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                mask ^= low
                if i < j:
                    static[(i, j)] = True
                else:
                    static[(j, i)] = False

    # ------------------------------------------------- conflict restriction

    def _create_live_order_variables(self) -> None:
        """Mint variables only for pairs that can influence outcomes, then
        assert pruned transitivity over the triangulated support graph."""
        seeds = self._seed_pairs()
        init_positions = {
            self._position[a.index]
            for a in self.accesses
            if a.thread == INIT_THREAD
        }
        triangles = self._triangulate(seeds, init_positions)
        circuit = self.ctx.circuit
        for key in sorted(seeds):
            self.encoding.order_vars[key] = circuit.var(f"M[{key[0]},{key[1]}]")
        self._assert_transitivity_pruned(triangles)

    def _seed_pairs(self) -> set[tuple[int, int]]:
        """Every non-static pair some constraint will mention."""
        seeds: set[tuple[int, int]] = set()
        position = self._position
        resolved = self.encoding.resolved

        def need(first: MemoryAccess, second: MemoryAccess) -> None:
            i, j = position[first.index], position[second.index]
            key = (i, j) if i < j else (j, i)
            if key not in self.encoding.static_pairs:
                seeds.add(key)

        circuit = self.ctx.circuit
        for first, second in self._same_address_pairs():
            need(first, second)
        for first, second, guard in self._fence_pairs():
            if guard != circuit.TRUE and guard != circuit.FALSE:
                if not self.model.preserves(first.kind, second.kind):
                    need(first, second)
        for first, second, other in self._atomic_exclusion_triples():
            first_other = resolved(
                position[first.index], position[other.index]
            )
            other_second = resolved(
                position[other.index], position[second.index]
            )
            # The clause (not first<other) or (not other<second) is
            # trivially true when either order is statically impossible.
            if first_other == circuit.FALSE or other_second == circuit.FALSE:
                continue
            if first_other is None:
                need(first, other)
            if other_second is None:
                need(other, second)
        if self.model.operation_atomicity:
            for group_a, group_b in self._invocation_group_pairs():
                for x in group_a:
                    for y in group_b:
                        need(x, y)
        for load, candidates in self._value_candidates:
            for store in candidates:
                if not self._forwarded(store, load):
                    need(store, load)
            for first, second in combinations(candidates, 2):
                need(first, second)
        return seeds

    def _triangulate(
        self,
        seeds: set[tuple[int, int]],
        excluded: set[int],
    ) -> list[tuple[int, int, int]]:
        """Chordalize the support graph by min-degree elimination.

        The support graph has an edge for every live or static pair between
        non-init accesses (init accesses have only outgoing static edges, so
        no cycle passes through them).  Fill edges discovered during
        elimination become live pairs (added to ``seeds``); the returned
        elimination triangles are exactly the triples over which no-3-cycle
        clauses must be asserted to make every orientation extendable to a
        total order.
        """
        n = len(self.accesses)
        vertices = [p for p in range(n) if p not in excluded]
        adjacency: dict[int, set[int]] = {p: set() for p in vertices}

        def connect(i: int, j: int) -> None:
            if i in adjacency and j in adjacency:
                adjacency[i].add(j)
                adjacency[j].add(i)

        for i, j in seeds:
            connect(i, j)
        for i, j in self.encoding.static_pairs:
            connect(i, j)

        triangles: list[tuple[int, int, int]] = []
        alive = set(vertices)
        while alive:
            vertex = min(alive, key=lambda p: (len(adjacency[p]), p))
            alive.discard(vertex)
            neighbors = sorted(adjacency[vertex])
            for index, a in enumerate(neighbors):
                adjacency[a].discard(vertex)
                for b in neighbors[index + 1:]:
                    triangles.append((vertex, a, b))
                    if b not in adjacency[a]:
                        adjacency[a].add(b)
                        adjacency[b].add(a)
                        key = (a, b) if a < b else (b, a)
                        if key not in self.encoding.static_pairs:
                            seeds.add(key)
            adjacency[vertex].clear()
        return triangles

    def _assert_transitivity_pruned(
        self, triangles: list[tuple[int, int, int]]
    ) -> None:
        """Forbid both cyclic orientations of every elimination triangle.

        Statically resolved edges fold away: a triangle with a known edge
        degenerates to one binary implication, and a triangle whose cycle is
        already statically impossible emits nothing.
        """
        order = self.encoding.order
        for v, a, b in triangles:
            o_va = order(v, a)
            o_ab = order(a, b)
            o_vb = order(v, b)
            # cycle v -> a -> b -> v: not(o_va and o_ab and not o_vb)
            self._assert_folded_clause((-o_va, -o_ab, o_vb))
            # cycle v -> b -> a -> v: not(o_vb and not o_ab and not o_va)
            self._assert_folded_clause((-o_vb, o_ab, o_va))

    def _assert_folded_clause(self, handles) -> None:
        """Assert a clause, dropping false literals and skipping clauses
        made true by a constant (statically resolved) literal."""
        circuit = self.ctx.circuit
        out = []
        for handle in handles:
            if handle == circuit.TRUE:
                return
            if handle != circuit.FALSE:
                out.append(handle)
        self.ctx.assert_clause(out)
        self.transitivity_clause_count += 1

    # ---------------------------------------------------------- pair streams

    def _order(self, i: int, j: int) -> int:
        return self.encoding.order(i, j)

    def _same_thread_pairs(self):
        """Yield (earlier, later) pairs of accesses of the same thread."""
        for accesses in self._by_thread.values():
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    yield first, second

    def _same_address_static_edge(
        self, first: MemoryAccess, second: MemoryAccess
    ) -> bool:
        """Same-address store order with a *constant* address comparison —
        the static half of axiom 1 (the symbolic half is emitted by
        :meth:`_assert_same_address_order`)."""
        return (
            self.model.same_address_store_order
            and second.is_store
            and self._may_alias(first, second)
            and self._addr_eq(first, second) == self.ctx.circuit.TRUE
        )

    def _same_address_pairs(self):
        """Pairs the same-address store-order axiom constrains with a
        *symbolic* address comparison (constant comparisons are static or
        vacuous)."""
        if not self.model.same_address_store_order:
            return
        circuit = self.ctx.circuit
        for first, second in self._same_thread_pairs():
            if not second.is_store:
                continue
            if first.thread == INIT_THREAD:
                continue  # already totally ordered
            if self.model.preserves(first.kind, second.kind):
                continue  # already ordered unconditionally
            if not self._may_alias(first, second):
                continue
            addr_eq = self._addr_eq(first, second)
            if addr_eq == circuit.FALSE:
                continue  # can never be the same address
            if addr_eq == circuit.TRUE and not self.dense:
                continue  # statically resolved instead
            yield first, second

    def _fence_pairs(self) -> list[tuple[MemoryAccess, MemoryAccess, int]]:
        """(before, after, guard) for every fence-ordered pair, materialized
        once (the pruned construction walks the list three times: static
        resolution, seeding, assertion)."""
        if self._fence_pair_list is None:
            self._fence_pair_list = list(self._enumerate_fence_pairs())
        return self._fence_pair_list

    def _enumerate_fence_pairs(self):
        circuit = self.ctx.circuit
        for thread in self.threads:
            if not thread.fences:
                continue
            accesses = self._by_thread[thread.thread]
            for fence in thread.fences:
                if fence.guard == circuit.FALSE:
                    continue
                before = [
                    a for a in accesses
                    if a.seq < fence.seq and a.kind in fence.kind.orders_before
                ]
                after = [
                    a for a in accesses
                    if a.seq > fence.seq and a.kind in fence.kind.orders_after
                ]
                for first in before:
                    for second in after:
                        yield first, second, fence.guard

    def _atomic_groups(self) -> list[list[MemoryAccess]]:
        groups: dict[int, list[MemoryAccess]] = {}
        # Iterating threads in seq order keeps every group seq-sorted
        # without re-sorting (atomic blocks never span threads).
        for accesses in self._by_thread.values():
            for access in accesses:
                if access.atomic_group is not None:
                    groups.setdefault(access.atomic_group, []).append(access)
        return list(groups.values())

    def _atomic_exclusion_triples(self):
        """Yield (first, second, other) for atomic non-interleaving: no
        ``other`` of a different thread lands between two block members."""
        for members in self._atomic_groups():
            thread = members[0].thread
            outside = [a for a in self.accesses if a.thread != thread]
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    for other in outside:
                        yield first, second, other

    def _invocation_group_pairs(self):
        """Yield (accesses of invocation A, accesses of invocation B) for
        every unordered pair of invocations (Seriality)."""
        by_invocation: dict[int, list[MemoryAccess]] = {}
        for access in self.accesses:
            by_invocation.setdefault(access.invocation, []).append(access)
        invocations = sorted(by_invocation)
        for index, first_inv in enumerate(invocations):
            for second_inv in invocations[index + 1:]:
                yield by_invocation[first_inv], by_invocation[second_inv]

    # ------------------------------------------------------------ the axioms

    def _assert_program_order(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        for first, second in self._same_thread_pairs():
            enforce = (
                first.thread == INIT_THREAD
                or self.model.preserves(first.kind, second.kind)
            )
            if enforce:
                handle = self._order_of(first, second)
                if handle != circuit_true:  # statically resolved otherwise
                    self.ctx.assert_true(handle)

    def _assert_same_address_order(self) -> None:
        circuit = self.ctx.circuit
        for first, second in self._same_address_pairs():
            handle = self._order_of(first, second)
            if handle == circuit.TRUE:
                continue
            self.ctx.assert_true(
                circuit.implies(self._addr_eq(first, second), handle)
            )

    def _assert_fences(self) -> None:
        circuit = self.ctx.circuit
        for first, second, guard in self._fence_pairs():
            if self.model.preserves(first.kind, second.kind):
                continue
            handle = self._order_of(first, second)
            if handle == circuit.TRUE:
                continue  # statically resolved (always-executed fence)
            self.ctx.assert_true(circuit.implies(guard, handle))

    def _assert_atomic_blocks(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        # (a) program order inside the atomic block
        for members in self._atomic_groups():
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    handle = self._order_of(first, second)
                    if handle != circuit_true:
                        self.ctx.assert_true(handle)
        # (b) no access of another thread interleaves with the block
        for first, second, other in self._atomic_exclusion_triples():
            self._assert_exclusion_clause(first, second, other)

    def _assert_exclusion_clause(
        self, first: MemoryAccess, second: MemoryAccess, other: MemoryAccess
    ) -> None:
        circuit = self.ctx.circuit
        position = self._position
        first_other = self.encoding.resolved(
            position[first.index], position[other.index]
        )
        other_second = self.encoding.resolved(
            position[other.index], position[second.index]
        )
        if first_other == circuit.FALSE or other_second == circuit.FALSE:
            return  # one of the two orders is statically impossible
        out = []
        if first_other != circuit.TRUE:
            out.append(-self._order_of(first, other))
        if other_second != circuit.TRUE:
            out.append(-self._order_of(other, second))
        self.ctx.assert_clause(out)

    def _assert_init_first(self) -> None:
        circuit_true = self.ctx.circuit.TRUE
        init_accesses = [a for a in self.accesses if a.thread == INIT_THREAD]
        others = [a for a in self.accesses if a.thread != INIT_THREAD]
        for first in init_accesses:
            for second in others:
                handle = self._order_of(first, second)
                if handle != circuit_true:  # statically resolved otherwise
                    self.ctx.assert_true(handle)

    def _assert_operation_atomicity(self) -> None:
        """Seriality: accesses of different invocations never interleave."""
        circuit = self.ctx.circuit
        for group_a, group_b in self._invocation_group_pairs():
            first_inv = group_a[0].invocation
            second_inv = group_b[0].invocation
            op_order = circuit.var(f"OP[{first_inv},{second_inv}]")
            for x in group_a:
                for y in group_b:
                    # iff constant-folds when the pair is static, turning
                    # into a unit constraint on the OP variable.
                    self.ctx.assert_true(
                        circuit.iff(self._order_of(x, y), op_order)
                    )

    # ---------------------------------------------------------- value axioms

    def _compute_value_candidates(self) -> None:
        """Candidate stores per load, grouped by location up front.

        Stores are indexed by their (frozen) alias sets once; each load then
        gathers the stores of its own candidate locations instead of testing
        every (load, store) pair.  Under the pruned construction, stores
        whose visibility is statically impossible (ordered after the load
        with no forwarding) are dropped here, before any term is built.
        """
        stores = [a for a in self.accesses if a.is_store]
        by_location: dict[int, list[MemoryAccess]] = {}
        wildcard: list[MemoryAccess] = []
        for store in stores:
            alias = self._alias_sets[store.index]
            if alias is None:
                wildcard.append(store)
            else:
                for location in alias:
                    by_location.setdefault(location, []).append(store)
        for load in self.accesses:
            if not load.is_load:
                continue
            alias = self._alias_sets[load.index]
            if alias is None:
                candidates = list(stores)
            else:
                merged: dict[int, MemoryAccess] = {
                    s.index: s for s in wildcard
                }
                for location in alias:
                    for store in by_location.get(location, ()):
                        merged[store.index] = store
                candidates = [merged[index] for index in sorted(merged)]
            self._value_candidates.append((load, candidates))

    def _prune_value_candidates(self) -> None:
        """Drop statically invisible stores from every candidate list (the
        store is ordered after the load and forwarding does not apply).
        Runs once, right after static resolution, so the seeder and the
        value-axiom emitter consume the exact same lists."""
        self._value_candidates = [
            (load, [s for s in candidates if self._visible(s, load)])
            for load, candidates in self._value_candidates
        ]

    def _visible(self, store: MemoryAccess, load: MemoryAccess) -> bool:
        """Can this store possibly be visible to the load?  False only when
        the static resolver ordered the store after the load and store
        forwarding does not apply."""
        if self._forwarded(store, load):
            return True
        handle = self.encoding.resolved(
            self._position[store.index], self._position[load.index]
        )
        return handle != self.ctx.circuit.FALSE

    def _assert_value_axioms(self) -> None:
        circuit = self.ctx.circuit
        bvb = self.ctx.bvb
        for load, candidates in self._value_candidates:
            visibility: dict[int, int] = {}
            for store in candidates:
                visibility[store.index] = circuit.and_(
                    store.guard,
                    self._addr_eq(load, store),
                    self._visibility_order(store, load),
                )
            # Case 1: no visible store -> the load reads the initial value.
            no_store = circuit.and_many(-v for v in visibility.values())
            init_term = circuit.and_(no_store, self._initial_value_term(load))
            terms = [init_term]
            # Case 2: the load reads the <M-maximal visible store.
            for store in candidates:
                newer_exists = [
                    circuit.and_(
                        visibility[other.index],
                        self._order_of(store, other),
                    )
                    for other in candidates
                    if other.index != store.index
                ]
                is_maximal = circuit.and_many(-h for h in newer_exists)
                terms.append(
                    circuit.and_(
                        visibility[store.index],
                        is_maximal,
                        bvb.eq(load.value, store.value),
                    )
                )
            self.ctx.assert_true(
                circuit.implies(load.guard, circuit.or_many(terms))
            )

    def _forwarded(self, store: MemoryAccess, load: MemoryAccess) -> bool:
        """Store-queue forwarding: a program-order-earlier store of the
        load's own thread is visible regardless of the global order."""
        return (
            self.model.store_forwarding
            and store.thread == load.thread
            and store.seq < load.seq
        )

    def _visibility_order(self, store: MemoryAccess, load: MemoryAccess) -> int:
        """The ordering part of ``store in S(load)``."""
        if self._forwarded(store, load):
            return self.ctx.circuit.TRUE
        return self._order_of(store, load)

    def _initial_value_term(self, load: MemoryAccess) -> int:
        circuit = self.ctx.circuit
        bvb = self.ctx.bvb
        if load.addr_candidates is None:
            locations = list(self.ctx.layout.valid_indices())
        else:
            locations = [l for l in load.addr_candidates if l != 0]
        terms = []
        for location in locations:
            terms.append(
                circuit.and_(
                    bvb.eq_const(load.addr, location),
                    bvb.eq(load.value, self.ctx.initial_value(location)),
                )
            )
        return circuit.or_many(terms)

    # ------------------------------------------------------------ utilities

    def _order_of(self, first: MemoryAccess, second: MemoryAccess) -> int:
        return self._order(
            self._position[first.index], self._position[second.index]
        )

    def _may_alias(self, first: MemoryAccess, second: MemoryAccess) -> bool:
        first_set = self._alias_sets[first.index]
        second_set = self._alias_sets[second.index]
        if first_set is None or second_set is None:
            return True
        return not first_set.isdisjoint(second_set)

    def _addr_eq(self, first: MemoryAccess, second: MemoryAccess) -> int:
        key = (min(first.index, second.index), max(first.index, second.index))
        cached = self._addr_eq_cache.get(key)
        if cached is None:
            cached = self.ctx.bvb.eq(first.addr, second.addr)
            self._addr_eq_cache[key] = cached
        return cached
