"""The memory-model formula ``Theta`` (Section 3.2.1).

Given the per-thread symbolic encodings, this module introduces the memory
order variables ``Mxy`` (one per pair of accesses, with antisymmetry by
sharing the variable and transitivity by explicit clauses), and asserts

* the program-order axioms of the chosen memory model,
* the fence and atomic-block ordering rules,
* "initialization happens first" for the init thread,
* the value axioms (via the ``Init_l`` / ``Flows_{s,l}`` style construction
  described in the paper), and
* for the Seriality model, the operation-atomicity constraints used to mine
  the specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding.symbolic import MemoryAccess, ThreadEncoding
from repro.encoding.testprogram import INIT_THREAD
from repro.memorymodel.base import MemoryModel


@dataclass
class MemoryOrderEncoding:
    """The order variables, for use when decoding counterexample traces."""

    accesses: list[MemoryAccess]
    order_vars: dict[tuple[int, int], int] = field(default_factory=dict)

    def order(self, first: int, second: int) -> int:
        """Circuit handle for ``access[first] <M access[second]``."""
        if first == second:
            raise ValueError("an access is never ordered before itself")
        if first < second:
            return self.order_vars[(first, second)]
        return -self.order_vars[(second, first)]


class MemoryModelEncoder:
    """Builds ``Theta`` for one memory model."""

    def __init__(
        self,
        context,
        model: MemoryModel,
        threads: list[ThreadEncoding],
    ) -> None:
        self.ctx = context
        self.model = model
        self.threads = threads
        self.accesses: list[MemoryAccess] = sorted(
            (a for t in threads for a in t.accesses), key=lambda a: a.index
        )
        # Re-index accesses densely (their global indices may have gaps if
        # other structures were encoded in between).
        self._position = {a.index: i for i, a in enumerate(self.accesses)}
        self.encoding = MemoryOrderEncoding(accesses=self.accesses)
        self._addr_eq_cache: dict[tuple[int, int], int] = {}

    # --------------------------------------------------------------- public

    def encode(self) -> MemoryOrderEncoding:
        self._create_order_variables()
        self._assert_transitivity()
        self._assert_program_order()
        self._assert_same_address_order()
        self._assert_fences()
        self._assert_atomic_blocks()
        self._assert_init_first()
        if self.model.operation_atomicity:
            self._assert_operation_atomicity()
        self._assert_value_axioms()
        return self.encoding

    # ------------------------------------------------------------ structure

    def _create_order_variables(self) -> None:
        circuit = self.ctx.circuit
        n = len(self.accesses)
        for i in range(n):
            for j in range(i + 1, n):
                self.encoding.order_vars[(i, j)] = circuit.var(f"M[{i},{j}]")

    def _order(self, i: int, j: int) -> int:
        return self.encoding.order(i, j)

    def _assert_transitivity(self) -> None:
        n = len(self.accesses)
        assert_clause = self.ctx.assert_clause
        for i in range(n):
            for j in range(n):
                if j == i:
                    continue
                order_ij = self._order(i, j)
                for k in range(n):
                    if k == i or k == j:
                        continue
                    # i <M j and j <M k implies i <M k
                    assert_clause([-order_ij, -self._order(j, k), self._order(i, k)])

    def _same_thread_pairs(self):
        """Yield (earlier, later) pairs of accesses of the same thread."""
        for thread in self.threads:
            accesses = sorted(thread.accesses, key=lambda a: a.seq)
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    yield first, second

    def _assert_program_order(self) -> None:
        for first, second in self._same_thread_pairs():
            enforce = (
                first.thread == INIT_THREAD
                or self.model.preserves(first.kind, second.kind)
            )
            if enforce:
                self.ctx.assert_true(self._order_of(first, second))

    def _assert_same_address_order(self) -> None:
        if not self.model.same_address_store_order:
            return
        for first, second in self._same_thread_pairs():
            if not second.is_store:
                continue
            if first.thread == INIT_THREAD:
                continue  # already totally ordered
            if self.model.preserves(first.kind, second.kind):
                continue  # already ordered unconditionally
            if not self._may_alias(first, second):
                continue
            self.ctx.assert_true(
                self.ctx.circuit.implies(
                    self._addr_eq(first, second), self._order_of(first, second)
                )
            )

    def _assert_fences(self) -> None:
        circuit = self.ctx.circuit
        for thread in self.threads:
            if not thread.fences:
                continue
            accesses = sorted(thread.accesses, key=lambda a: a.seq)
            for fence in thread.fences:
                before = [
                    a for a in accesses
                    if a.seq < fence.seq and a.kind in fence.kind.orders_before
                ]
                after = [
                    a for a in accesses
                    if a.seq > fence.seq and a.kind in fence.kind.orders_after
                ]
                for first in before:
                    for second in after:
                        if self.model.preserves(first.kind, second.kind):
                            continue
                        self.ctx.assert_true(
                            circuit.implies(
                                fence.guard, self._order_of(first, second)
                            )
                        )

    def _assert_atomic_blocks(self) -> None:
        groups: dict[int, list[MemoryAccess]] = {}
        for access in self.accesses:
            if access.atomic_group is not None:
                groups.setdefault(access.atomic_group, []).append(access)
        for members in groups.values():
            members.sort(key=lambda a: a.seq)
            thread = members[0].thread
            # (a) program order inside the atomic block
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    self.ctx.assert_true(self._order_of(first, second))
            # (b) no access of another thread interleaves with the block
            outside = [a for a in self.accesses if a.thread != thread]
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    for other in outside:
                        self.ctx.assert_clause(
                            [
                                -self._order_of(first, other),
                                -self._order_of(other, second),
                            ]
                        )

    def _assert_init_first(self) -> None:
        init_accesses = [a for a in self.accesses if a.thread == INIT_THREAD]
        others = [a for a in self.accesses if a.thread != INIT_THREAD]
        for first in init_accesses:
            for second in others:
                self.ctx.assert_true(self._order_of(first, second))

    def _assert_operation_atomicity(self) -> None:
        """Seriality: accesses of different invocations never interleave."""
        circuit = self.ctx.circuit
        by_invocation: dict[int, list[MemoryAccess]] = {}
        for access in self.accesses:
            by_invocation.setdefault(access.invocation, []).append(access)
        invocations = sorted(by_invocation)
        for index, first_inv in enumerate(invocations):
            for second_inv in invocations[index + 1:]:
                op_order = circuit.var(f"OP[{first_inv},{second_inv}]")
                for x in by_invocation[first_inv]:
                    for y in by_invocation[second_inv]:
                        self.ctx.assert_true(
                            circuit.iff(self._order_of(x, y), op_order)
                        )

    # ---------------------------------------------------------- value axioms

    def _assert_value_axioms(self) -> None:
        circuit = self.ctx.circuit
        bvb = self.ctx.bvb
        loads = [a for a in self.accesses if a.is_load]
        stores = [a for a in self.accesses if a.is_store]
        for load in loads:
            candidates = [s for s in stores if self._may_alias(load, s)]
            visibility: dict[int, int] = {}
            for store in candidates:
                visibility[store.index] = circuit.and_(
                    store.guard,
                    self._addr_eq(load, store),
                    self._visibility_order(store, load),
                )
            # Case 1: no visible store -> the load reads the initial value.
            no_store = circuit.and_many(-v for v in visibility.values())
            init_term = circuit.and_(no_store, self._initial_value_term(load))
            terms = [init_term]
            # Case 2: the load reads the <M-maximal visible store.
            for store in candidates:
                newer_exists = [
                    circuit.and_(
                        visibility[other.index],
                        self._order_of(store, other),
                    )
                    for other in candidates
                    if other.index != store.index
                ]
                is_maximal = circuit.and_many(-h for h in newer_exists)
                terms.append(
                    circuit.and_(
                        visibility[store.index],
                        is_maximal,
                        bvb.eq(load.value, store.value),
                    )
                )
            self.ctx.assert_true(
                circuit.implies(load.guard, circuit.or_many(terms))
            )

    def _visibility_order(self, store: MemoryAccess, load: MemoryAccess) -> int:
        """The ordering part of ``store in S(load)``."""
        if (
            self.model.store_forwarding
            and store.thread == load.thread
            and store.seq < load.seq
        ):
            # Store-queue forwarding: a program-order-earlier store of the
            # same thread is visible regardless of the global order.
            return self.ctx.circuit.TRUE
        return self._order_of(store, load)

    def _initial_value_term(self, load: MemoryAccess) -> int:
        circuit = self.ctx.circuit
        bvb = self.ctx.bvb
        if load.addr_candidates is None:
            locations = list(self.ctx.layout.valid_indices())
        else:
            locations = [l for l in load.addr_candidates if l != 0]
        terms = []
        for location in locations:
            terms.append(
                circuit.and_(
                    bvb.eq_const(load.addr, location),
                    bvb.eq(load.value, self.ctx.initial_value(location)),
                )
            )
        return circuit.or_many(terms)

    # ------------------------------------------------------------ utilities

    def _order_of(self, first: MemoryAccess, second: MemoryAccess) -> int:
        return self._order(
            self._position[first.index], self._position[second.index]
        )

    def _may_alias(self, first: MemoryAccess, second: MemoryAccess) -> bool:
        if first.addr_candidates is None or second.addr_candidates is None:
            return True
        return bool(set(first.addr_candidates) & set(second.addr_candidates))

    def _addr_eq(self, first: MemoryAccess, second: MemoryAccess) -> int:
        key = (min(first.index, second.index), max(first.index, second.index))
        cached = self._addr_eq_cache.get(key)
        if cached is None:
            cached = self.ctx.bvb.eq(first.addr, second.addr)
            self._addr_eq_cache[key] = cached
        return cached
