"""Compiling a symbolic test against an implementation.

This is the first half of the back-end (Section 3.2): the operation calls of
the symbolic test are expanded into LSL harness code (argument choice,
shared-object addresses, out-parameter cells, observation of argument and
return values), the implementation procedures are inlined, and all loops are
unrolled.  The result — a :class:`CompiledTest` — is what the encoder turns
into the propositional formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.allocation import AllocationMap, build_layout, resolve_allocations
from repro.analysis.inline import Inliner
from repro.analysis.ranges import DisabledRanges, RangeAnalysis, RangeInfo
from repro.analysis.unroll import Unroller
from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.lang.lower import compile_c
from repro.lsl.builder import LslBuilder
from repro.lsl.instructions import Statement, count_memory_accesses, count_statements
from repro.lsl.layout import MemoryLayout
from repro.lsl.program import Invocation, Program, SymbolicTest


#: Thread index used for the initialization sequence.
INIT_THREAD = -1


@dataclass
class CompiledInvocation:
    """One operation invocation, fully inlined and unrolled."""

    thread: int
    position: int
    global_index: int
    label: str
    operation: OperationSpec
    statements: list[Statement]
    arg_regs: list[str]
    out_regs: list[str]
    ret_regs: list[str]
    overflow_registers: dict[str, str] = field(default_factory=dict)

    @property
    def observable_regs(self) -> list[str]:
        return self.arg_regs + self.ret_regs + self.out_regs

    @property
    def observable_labels(self) -> list[str]:
        labels = [f"{self.label}.arg{i}" for i in range(len(self.arg_regs))]
        labels += [f"{self.label}.ret" for _ in self.ret_regs]
        labels += [f"{self.label}.out{i}" for i in range(len(self.out_regs))]
        return labels


@dataclass
class CompiledTest:
    """A symbolic test compiled against an implementation."""

    implementation: DataTypeImplementation
    test: SymbolicTest
    program: Program
    invocations: list[CompiledInvocation]
    layout: MemoryLayout
    allocation: AllocationMap
    ranges: RangeInfo
    loop_bounds: dict[str, int]

    # The encoder memoizes its model-independent skeleton on this object
    # (see repro.encoding.formula.skeleton_for); the skeleton holds live
    # circuit/CNF state and must never travel across process boundaries.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_encoding_skeleton", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------ structure

    def threads(self) -> dict[int, list[CompiledInvocation]]:
        """Invocations grouped by thread (including INIT_THREAD)."""
        grouped: dict[int, list[CompiledInvocation]] = {}
        for invocation in self.invocations:
            grouped.setdefault(invocation.thread, []).append(invocation)
        for members in grouped.values():
            members.sort(key=lambda inv: inv.position)
        return grouped

    def thread_bodies(self) -> list[list[Statement]]:
        """Flat statement lists per thread (init thread first)."""
        grouped = self.threads()
        ordered_threads = sorted(grouped)
        bodies = []
        for thread in ordered_threads:
            body: list[Statement] = []
            for invocation in grouped[thread]:
                body.extend(invocation.statements)
            bodies.append(body)
        return bodies

    def observation_labels(self) -> list[str]:
        labels: list[str] = []
        for invocation in self.invocations:
            labels.extend(invocation.observable_labels)
        return labels

    # ------------------------------------------------------------ statistics

    def size_statistics(self) -> dict[str, int]:
        # Memoized: every per-model encode reads these counts, and the
        # statement walk is pure.
        cached = getattr(self, "_size_statistics", None)
        if cached is not None:
            return cached
        instrs = loads = stores = 0
        for invocation in self.invocations:
            instrs += count_statements(invocation.statements)
            invocation_loads, invocation_stores = count_memory_accesses(
                invocation.statements
            )
            loads += invocation_loads
            stores += invocation_stores
        stats = {
            "instructions": instrs,
            "loads": loads,
            "stores": stores,
            "locations": self.layout.num_locations - 1,
            "invocations": len(self.invocations),
        }
        self._size_statistics = stats
        return stats


def compile_test(
    implementation: DataTypeImplementation,
    test: SymbolicTest,
    loop_bounds: dict[str, int] | None = None,
    default_bound: int | None = None,
    overflow: str = "assume",
    use_range_analysis: bool = True,
    program: Program | None = None,
) -> CompiledTest:
    """Compile ``test`` against ``implementation``.

    ``program`` may be supplied to reuse an already-lowered LSL program (the
    C front-end output is deterministic, so callers typically cache it).
    """
    if program is None:
        program = compile_c(implementation.source, implementation.name)
    if default_bound is None:
        default_bound = implementation.default_loop_bound
    inliner = Inliner(program)
    invocations: list[CompiledInvocation] = []
    global_index = 0
    all_bounds: dict[str, int] = {}

    ordered: list[tuple[int, int, Invocation]] = test.all_invocations()
    for thread, position, invocation in ordered:
        spec = implementation.operation(invocation.operation)
        compiled = _compile_invocation(
            inliner,
            program,
            spec,
            invocation,
            thread,
            position,
            global_index,
            loop_bounds or {},
            default_bound,
            overflow,
        )
        all_bounds.update(
            {tag: bound for tag, bound in compiled.overflow_bounds.items()}
        )
        invocations.append(compiled.invocation)
        global_index += 1

    layout = build_layout(program)
    bodies_by_thread = _bodies_in_thread_order(invocations)
    allocation = resolve_allocations(bodies_by_thread, layout)
    if use_range_analysis:
        ranges = RangeAnalysis(layout, allocation).analyze(bodies_by_thread)
    else:
        ranges = DisabledRanges(layout)
    return CompiledTest(
        implementation=implementation,
        test=test,
        program=program,
        invocations=invocations,
        layout=layout,
        allocation=allocation,
        ranges=ranges,
        loop_bounds=all_bounds,
    )


def _bodies_in_thread_order(
    invocations: list[CompiledInvocation],
) -> list[list[Statement]]:
    grouped: dict[int, list[CompiledInvocation]] = {}
    for invocation in invocations:
        grouped.setdefault(invocation.thread, []).append(invocation)
    bodies = []
    for thread in sorted(grouped):
        body: list[Statement] = []
        for invocation in sorted(grouped[thread], key=lambda inv: inv.position):
            body.extend(invocation.statements)
        bodies.append(body)
    return bodies


@dataclass
class _CompiledCall:
    invocation: CompiledInvocation
    overflow_bounds: dict[str, int]


def _compile_invocation(
    inliner: Inliner,
    program: Program,
    spec: OperationSpec,
    invocation: Invocation,
    thread: int,
    position: int,
    global_index: int,
    loop_bounds: dict[str, int],
    default_bound: int,
    overflow: str,
) -> _CompiledCall:
    thread_name = "init" if thread == INIT_THREAD else f"t{thread}"
    label = invocation.label or f"{thread_name}.{position}.{spec.name}"
    prefix = f"{thread_name}${position}$"
    builder = LslBuilder(prefix=prefix)

    # Shared objects are passed by address (their base location index).
    arg_registers: list[str] = []
    for global_name in spec.shared_globals:
        base = _global_base(program, global_name)
        arg_registers.append(builder.const(base))

    # Value arguments: fixed or chosen nondeterministically from the domain.
    value_arg_regs: list[str] = []
    for index in range(spec.num_value_args):
        provided = invocation.args[index] if index < len(invocation.args) else None
        if provided is None:
            reg = builder.choose(
                invocation.choice_domain, label=f"{label}.arg{index}",
                dst=f"{prefix}arg{index}",
            )
        else:
            reg = builder.const(provided, dst=f"{prefix}arg{index}")
        value_arg_regs.append(reg)
        arg_registers.append(reg)

    # Out-parameters: one fresh zero-initialized cell each.
    out_cells: list[str] = []
    for index in range(spec.num_out_params):
        cell = builder.alloc(
            1, type_name=f"{label}.out{index}", field_names=("cell",),
            init="zero", dst=f"{prefix}outp{index}",
        )
        out_cells.append(cell)
        arg_registers.append(cell)

    ret_regs: list[str] = []
    if spec.has_return:
        ret_regs = [f"{prefix}ret"]

    call_statements = inliner.inline_call(
        spec.proc, tuple(arg_registers), tuple(ret_regs), prefix=prefix
    )
    builder.statements.extend(call_statements)

    # Read back the out-parameters so they become observable registers.
    out_regs: list[str] = []
    for index, cell in enumerate(out_cells):
        out_regs.append(builder.load(cell, dst=f"{prefix}out{index}"))

    builder.observe(label, value_arg_regs + ret_regs + out_regs)

    unroller = Unroller(loop_bounds, default_bound, overflow)
    result = unroller.unroll(builder.statements)

    compiled = CompiledInvocation(
        thread=thread,
        position=position,
        global_index=global_index,
        label=label,
        operation=spec,
        statements=result.statements,
        arg_regs=value_arg_regs,
        out_regs=out_regs,
        ret_regs=ret_regs,
        overflow_registers=result.overflow_registers,
    )
    return _CompiledCall(invocation=compiled, overflow_bounds=result.bounds_used)


def _global_base(program: Program, name: str) -> int:
    """Base location index of a global, consistent with the front-end."""
    base = 1
    for decl in program.globals:
        if decl.name == name:
            return base
        base += max(1, len(decl.field_names))
    raise KeyError(f"program {program.name!r} has no global {name!r}")
