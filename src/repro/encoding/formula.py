"""Assembling the combined formula ``Phi = Theta AND /\\_k Delta_k``.

:func:`encode_test` symbolically executes every thread of a compiled test,
adds the memory-model constraints for the chosen model, and returns an
:class:`EncodedTest` that the checker drives: it exposes the observation
slots (argument/return values), supports adding blocking clauses
incrementally (specification mining) and "not in the observation set"
constraints (inclusion check), and decodes SAT models back into execution
traces.

The build is split along the paper's own formula structure.  The
``/\\_k Delta_k`` half — symbolic execution of every thread, observation
slots, assertions, overflow handles, and their Tseitin lowering — depends
only on the compiled test, never on the memory model, so it is built once
per :class:`CompiledTest` as an :class:`EncodingSkeleton` and memoized on
the compiled test itself.  Each per-model encode then *forks* the skeleton
(an array-level CNF snapshot plus shallow circuit/dict copies) and runs
only ``Theta`` — the :class:`repro.encoding.memory.MemoryModelEncoder`
layer — on top.  A five-model sweep therefore executes symbolic execution
and base lowering once instead of five times.  ``CHECKFENCE_SHARE_ENCODE=0``
(or ``share_encode=False``) restores scratch encoding; both paths run the
identical construction sequence, so they produce identical formulas.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field

from repro.encoding.memory import (
    MemoryModelEncoder,
    MemoryOrderEncoding,
    dense_order_enabled,
)
from repro.encoding.symbolic import (
    EncodingError,
    MemoryAccess,
    ThreadEncoding,
    ThreadSymbolicExecutor,
)
from repro.encoding.testprogram import INIT_THREAD, CompiledInvocation, CompiledTest
from repro.lsl.instructions import Alloc
from repro.lsl.values import is_undef
from repro.memorymodel.base import MemoryModel
from repro.sat.backend import BackendFactory, InternalBackend, SolverBackend
from repro.sat.bitvec import BitVec, BitVecBuilder
from repro.sat.circuit import Circuit, CnfLowering
from repro.sat.simplify import (
    ENUMERATION_MIN_CLAUSES,
    SimplifyingBackend,
    simplify_enabled,
)


class EncodingContext:
    """Shared state while building the formula for one (test, model) pair."""

    def __init__(self, compiled: CompiledTest) -> None:
        self.compiled = compiled
        self.circuit = Circuit()
        self.bvb = BitVecBuilder(self.circuit)
        self.lowering = CnfLowering(self.circuit)
        self.layout = compiled.layout
        self.ranges = compiled.ranges
        self.allocation = compiled.allocation
        self.width = max(compiled.ranges.width(), 1)
        self._access_counter = 0
        self._atomic_counter = 0
        self._initial_values: dict[int, BitVec] = {}
        self._heap_policies: dict[int, str] = {}
        #: Selector variables of candidate fences, by candidate label.  One
        #: variable per label, shared by every dynamic fence instance that
        #: carries it (inlining/unrolling duplicates the statement but not
        #: the label).
        self.fence_selectors: dict[str, int] = {}
        # Model-independent equality terms, shared across per-model layers:
        # address/value equality by unordered access-index pair and the
        # initial-value term of each load.  Prewarmed by the skeleton build
        # so no memory model pays to reconstruct them.
        self._addr_eq: dict[tuple[int, int], int] = {}
        self._value_eq: dict[tuple[int, int], int] = {}
        self._init_terms: dict[int, int] = {}
        #: Memoized model-independent enumerations (sorted access lists,
        #: same-thread pairs, fence pairs, atomic-exclusion triples, value
        #: candidates).  Forks share the dict *by reference*: whichever
        #: per-model layer runs first fills it and the other four models of
        #: a sweep reuse it, while scratch encoding (a fresh context per
        #: model) recomputes it five times.
        self.shared_streams: dict = {}

    # -------------------------------------------------------------- snapshot

    def fork(self) -> "EncodingContext":
        """An independent continuation of this context.

        Circuit handles minted before the fork stay valid in the copy, and
        the CNF snapshot is an array-level memcpy, so a per-model encoding
        layer can grow on the fork without disturbing the shared skeleton.
        """
        out = EncodingContext.__new__(EncodingContext)
        out.compiled = self.compiled
        out.circuit = self.circuit.copy()
        out.bvb = BitVecBuilder(out.circuit)
        out.lowering = self.lowering.fork(out.circuit)
        out.layout = self.layout
        out.ranges = self.ranges
        out.allocation = self.allocation
        out.width = self.width
        out._access_counter = self._access_counter
        out._atomic_counter = self._atomic_counter
        out._initial_values = dict(self._initial_values)
        out._heap_policies = dict(self._heap_policies)
        out.fence_selectors = dict(self.fence_selectors)
        out._addr_eq = dict(self._addr_eq)
        out._value_eq = dict(self._value_eq)
        out._init_terms = dict(self._init_terms)
        out.shared_streams = self.shared_streams
        return out

    # ------------------------------------------------------------- plumbing

    def assert_true(self, handle: int) -> None:
        self.lowering.assert_true(handle)

    def assert_clause(self, handles) -> None:
        self.lowering.assert_clause(list(handles))

    def fresh_value(self, name: str) -> BitVec:
        return self.bvb.fresh(self.width, name)

    def const_value(self, value: int) -> BitVec:
        if value >= (1 << self.width):
            raise EncodingError(
                f"constant {value} does not fit in {self.width} bits; "
                "range analysis may be disabled with too small a width"
            )
        return self.bvb.const(value, self.width)

    def new_access_index(self) -> int:
        self._access_counter += 1
        return self._access_counter

    def new_atomic_group(self) -> int:
        self._atomic_counter += 1
        return self._atomic_counter

    def register_allocation(self, stmt: Alloc, base: int) -> None:
        """Record the initialization policy of a heap object's cells."""
        for offset in range(max(1, stmt.num_cells)):
            self._heap_policies.setdefault(base + offset, stmt.init)

    def fence_selector(self, label: str) -> int:
        """The selector variable of a candidate fence (minted on first use)."""
        handle = self.fence_selectors.get(label)
        if handle is None:
            handle = self.circuit.var(f"fence_sel[{label}]")
            self.fence_selectors[label] = handle
        return handle

    # -------------------------------------------------------- initial values

    def initial_value(self, location: int) -> BitVec:
        """Symbolic initial value ``i(a)`` of a memory location."""
        cached = self._initial_values.get(location)
        if cached is not None:
            return cached
        info = self.layout.info(location)
        if not is_undef(info.initial):
            value = self.const_value(int(info.initial))
        else:
            policy = self._heap_policies.get(location, "havoc")
            if policy == "zero":
                value = self.const_value(0)
            else:
                value = self.fresh_value(f"init_loc{location}")
                domain = self.ranges.location_domain(location)
                if domain is not None:
                    valid = [v for v in sorted(domain) if v < (1 << self.width)]
                    if valid:
                        self.assert_true(
                            self.circuit.or_many(
                                self.bvb.eq_const(value, v) for v in valid
                            )
                        )
        self._initial_values[location] = value
        return value

    # ----------------------------------------------- shared equality terms

    def addr_eq(self, first, second) -> int:
        """Address-equality handle of an access pair (model-independent;
        ``eq`` is structurally symmetric, so the pair is keyed unordered)."""
        if first.index < second.index:
            key = (first.index, second.index)
        else:
            key = (second.index, first.index)
        cached = self._addr_eq.get(key)
        if cached is None:
            cached = self.bvb.eq(first.addr, second.addr)
            self._addr_eq[key] = cached
        return cached

    def value_eq(self, load, store) -> int:
        """Value-equality handle between a load and a candidate store."""
        if load.index < store.index:
            key = (load.index, store.index)
        else:
            key = (store.index, load.index)
        cached = self._value_eq.get(key)
        if cached is None:
            cached = self.bvb.eq(load.value, store.value)
            self._value_eq[key] = cached
        return cached

    def initial_value_term(self, load) -> int:
        """The "load reads the initial value of its address" disjunct of the
        value axiom — model-independent, so built once per load."""
        cached = self._init_terms.get(load.index)
        if cached is not None:
            return cached
        circuit = self.circuit
        bvb = self.bvb
        if load.addr_candidates is None:
            locations = sorted(self.layout.valid_indices())
        else:
            locations = sorted(l for l in load.addr_candidates if l != 0)
        terms = []
        for location in locations:
            terms.append(
                circuit.and_(
                    bvb.eq_const(load.addr, location),
                    bvb.eq(load.value, self.initial_value(location)),
                )
            )
        term = circuit.or_many(terms)
        self._init_terms[load.index] = term
        return term


@dataclass
class ObservationSlot:
    """One observable value (an argument or return value of an invocation)."""

    label: str
    invocation: CompiledInvocation
    value: BitVec


#: The memory-order counter set embedded in benchmark JSON.  One source of
#: truth: ``EncodingStatistics``, ``CheckStatistics`` and ``InclusionRow``
#: all carry fields with these names and build their ``order_dict`` from it.
ORDER_COUNTER_FIELDS = (
    "dense_order",
    "accesses",
    "order_pairs",
    "order_vars",
    "order_pairs_static",
    "transitivity_clauses",
    "cnf_variables",
    "cnf_clauses",
)


def order_counter_dict(stats) -> dict:
    """The order-encoding counters of any stats object that carries the
    :data:`ORDER_COUNTER_FIELDS` attributes, for benchmark JSON output."""
    return {name: getattr(stats, name) for name in ORDER_COUNTER_FIELDS}


@dataclass
class EncodingStatistics:
    """Size and timing information reported in Fig. 10.

    The ``order_*`` / ``transitivity_clauses`` counters describe the memory
    order relation: how many access pairs exist, how many were statically
    resolved (constant-folded, no variable), how many got a SAT variable,
    and how many transitivity clauses were asserted.  ``dense_order`` marks
    whether the dense fallback construction was used.
    """

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    accesses: int = 0
    cnf_variables: int = 0
    cnf_clauses: int = 0
    #: Total encode wall-clock paid by *this* call: skeleton + layer.
    encode_seconds: float = 0.0
    #: Time spent building the model-independent skeleton in this call
    #: (0.0 when a memoized skeleton was reused).
    skeleton_seconds: float = 0.0
    #: Time spent forking the skeleton and running the per-model layer.
    layer_seconds: float = 0.0
    #: True when a previously built skeleton was reused.
    skeleton_shared: bool = False
    order_pairs: int = 0
    order_vars: int = 0
    order_pairs_static: int = 0
    transitivity_clauses: int = 0
    dense_order: bool = False

    def order_dict(self) -> dict:
        """The order-encoding counters, for benchmark JSON output."""
        return order_counter_dict(self)


class EncodedTest:
    """The formula for one (implementation, test, memory model) triple."""

    def __init__(
        self,
        context: EncodingContext,
        model: MemoryModel,
        threads: list[ThreadEncoding],
        executors: dict[int, ThreadSymbolicExecutor],
        order: MemoryOrderEncoding,
        observation_slots: list[ObservationSlot],
        assertions: list[tuple[int, str]],
        overflow_handles: dict[str, int],
        stats: EncodingStatistics,
        backend_factory: BackendFactory | None = None,
        simplify: bool = False,
    ) -> None:
        self.ctx = context
        self.model = model
        self.threads = threads
        self.executors = executors
        self.order = order
        self.observation_slots = observation_slots
        self.assertions = assertions
        self.overflow_handles = overflow_handles
        self.stats = stats
        self.backend_factory = backend_factory
        #: Run the SatELite-style CNF preprocessor between lowering and
        #: solving (see :mod:`repro.sat.simplify`).
        self.simplify = simplify
        self._backend: SolverBackend | None = None
        self._synced_clauses = 0
        self._not_in_guards: dict[frozenset, int] = {}
        #: Assumption literal -> circuit handle of the most recent solve,
        #: for mapping failed-assumption cores back to handles.
        self._assumed_handles: dict[int, int] = {}
        #: Per-slot observation bit plan (constants and CNF literals),
        #: built lazily for the projected enumeration paths.
        self._obs_plan: list[list[bool | int]] | None = None

    # ------------------------------------------------------------ solver use

    @property
    def cnf(self):
        return self.ctx.lowering.cnf

    @property
    def fence_selectors(self) -> dict[str, int]:
        """Candidate-fence selector variables by label (see
        :meth:`EncodingContext.fence_selector`)."""
        return self.ctx.fence_selectors

    def _ensure_backend(self) -> SolverBackend:
        if self._backend is None:
            factory = self.backend_factory or InternalBackend
            backend = factory()
            if self.simplify:
                backend = SimplifyingBackend(backend)
                # The frozen set must be in place before any clause reaches
                # the preprocessor; computing it is a non-forcing peek and
                # never grows the formula.
                backend.freeze(self.frozen_variables())
            self._backend = backend
        cnf = self.cnf
        self._backend.ensure_vars(cnf.num_vars)
        if self._synced_clauses < len(cnf.clauses):
            # CNF clauses are already normalized, so the bulk path applies.
            self._backend.add_clauses(cnf.clauses[self._synced_clauses:])
            self._synced_clauses = len(cnf.clauses)
        return self._backend

    def frozen_variables(self) -> set[int]:
        """CNF variables the pipeline mentions *after* the first solve, so
        the preprocessor must not eliminate or substitute them away:

        * observation-slot bits (projected blocking clauses and the
          observation decoding of every mined outcome),
        * assertion and overflow handles (assumption terms are built over
          them lazily),
        * already-minted ``not_in_guard`` guard literals (guards created
          later are fresh variables and need no protection), and
        * the constant-TRUE variable.

        Memory-order variables are deliberately *not* frozen: no later
        clause or assumption is ever built over them, and counterexample
        decoding reads them out of the *reconstructed* model, which the
        elimination stack rebuilds to satisfy every original clause
        (including the order axioms).  Leaving them eliminable is what
        lets the preprocessor cut the order-axiom-heavy formulas (e.g.
        msn/Tpc6) by half instead of 15%.

        Only *already-lowered* nodes contribute (a non-forcing peek, so
        computing the set never grows the formula); anything lowered later
        that touches an eliminated variable is caught by the
        preprocessor's reinstatement path instead.
        """
        lowered = self.ctx.lowering.lowered_var
        frozen: set[int] = set()
        handles: list[int] = [Circuit.TRUE]
        for slot in self.observation_slots:
            handles.extend(slot.value.bits)
        handles.extend(handle for handle, _ in self.assertions)
        handles.extend(self.overflow_handles.values())
        handles.extend(self._not_in_guards.values())
        handles.extend(self.fence_selectors.values())
        for handle in handles:
            var = lowered(handle)
            if var is not None:
                frozen.add(var)
        return frozen

    def expect_enumeration(self) -> None:
        """Hint that this formula feeds a solve/block enumeration loop
        (outcome mining), so one preprocessing pass will amortize over
        many solves: lowers the preprocessor's engagement threshold.
        Must be called before the first solve to have an effect; a no-op
        when simplification is off or the backend already decided."""
        backend = self._ensure_backend()
        if isinstance(backend, SimplifyingBackend):
            backend.min_clauses = min(
                backend.min_clauses, ENUMERATION_MIN_CLAUSES
            )

    def solve(self, assumptions=()):
        """Solve the current formula; returns True/False (or None on limit).

        Lowering an assumption handle can itself append the Tseitin clauses
        of a not-yet-lowered node, so the backend is synced *after* the
        assumptions are lowered — an assumption literal must never reach
        the solver ahead of the clauses that define it.  The sync before
        lowering is belt-and-braces (lowering never reads the backend); it
        keeps the invariant "the backend is behind only by what this call
        just lowered", which the regression tests pin.
        """
        self._ensure_backend()
        assumption_lits = [self.ctx.lowering.literal(h) for h in assumptions]
        self._assumed_handles = dict(zip(assumption_lits, assumptions))
        backend = self._ensure_backend()
        return backend.solve(assumptions=assumption_lits)

    def failed_assumption_handles(self) -> list[int]:
        """The failed-assumption core of the last (UNSAT) solve, mapped back
        to the circuit handles that were passed to :meth:`solve`.  Empty
        after a SAT solve, or when the formula alone is unsatisfiable."""
        if self._backend is None:
            return []
        return [
            self._assumed_handles[lit]
            for lit in self._backend.failed_assumptions()
            if lit in self._assumed_handles
        ]

    def model_values(self) -> dict[int, bool]:
        if self._backend is None:
            raise RuntimeError("solve() has not produced a model yet")
        return self._backend.model()

    @property
    def solver_stats(self):
        return self._backend.stats() if self._backend else None

    @property
    def simplify_stats(self):
        """The preprocessing counters (:class:`repro.sat.simplify
        .SimplifyStats`) when simplification is active and a backend
        exists; None otherwise."""
        if isinstance(self._backend, SimplifyingBackend):
            return self._backend.simplify_stats
        return None

    @property
    def backend_name(self) -> str | None:
        """Name of the backend once one has been instantiated."""
        if self._backend is None and self.backend_factory is None:
            return InternalBackend.name
        return self._backend.name if self._backend else None

    # ---------------------------------------------------------- observations

    def observation_equals(self, observation: tuple[int, ...]) -> list[int]:
        """Per-slot equality handles between the symbolic observation and a
        concrete observation vector."""
        if len(observation) != len(self.observation_slots):
            raise ValueError("observation arity mismatch")
        return [
            self.ctx.bvb.eq_const(slot.value, value)
            for slot, value in zip(self.observation_slots, observation)
        ]

    def _observation_bit_plan(self) -> list[list[bool | int]]:
        """Per-slot observation bits as constants (bool) or CNF literals.

        This is the *projection*: every blocking clause and every decoded
        outcome is expressed over exactly these literals, so the
        enumeration loops never touch the non-observable part of the
        formula."""
        if self._obs_plan is None:
            literal = self.ctx.lowering.literal
            plan: list[list[bool | int]] = []
            for slot in self.observation_slots:
                bits: list[bool | int] = []
                for bit in slot.value.bits:
                    if abs(bit) == Circuit.TRUE:
                        bits.append(bit > 0)
                    else:
                        bits.append(literal(bit))
                plan.append(bits)
            self._obs_plan = plan
        return self._obs_plan

    def projected_blocking_clause(
        self, observation: tuple[int, ...]
    ) -> list[int] | None:
        """The clause (over observation literals only) satisfied exactly by
        executions whose observation *differs* from ``observation``.

        Returns ``None`` when no execution can produce the observation at
        all (a constant bit mismatches, or a value exceeds its slot width)
        — blocking it would be a tautology.  Unlike the circuit route this
        mints no Tseitin variables, so a solve/block enumeration loop grows
        the formula by one pure clause per outcome.
        """
        plan = self._observation_bit_plan()
        if len(observation) != len(plan):
            raise ValueError("observation arity mismatch")
        literals: list[int] = []
        for bits, value in zip(plan, observation):
            if value >> len(bits):
                return None  # value does not fit the slot: unreachable
            for position, bit in enumerate(bits):
                want = (value >> position) & 1
                if isinstance(bit, bool):
                    if bit != bool(want):
                        return None  # constant bit mismatch: unreachable
                    continue
                literals.append(-bit if want else bit)
        return literals

    def block_observation(self, observation: tuple[int, ...]) -> None:
        """Exclude executions whose observation equals the given one.

        The blocking clause is *projected*: it mentions observation-slot
        literals only (no fresh variables), which keeps the incremental
        solver state small during outcome mining and lets the preprocessor
        map it against the live simplified state."""
        literals = self.projected_blocking_clause(observation)
        if literals is None:
            return  # no execution matches; nothing to block
        self.cnf.add_clause(literals)

    def require_not_in(self, observations) -> None:
        """Constrain the observation to differ from every element of a set."""
        for observation in observations:
            self.block_observation(observation)

    def not_in_guard(self, observations) -> int:
        """A guard handle that, when assumed, excludes every observation in
        the given set.

        Unlike :meth:`require_not_in` the constraint is inert unless the
        returned handle is passed as an assumption, so the same encoded test
        (and its learned clauses) can serve the assertion query, the
        inclusion query, and later re-checks without the blocking clauses of
        one query leaking into another.  The guarded clauses are emitted only
        once per distinct observation set, and are projected over the guard
        literal plus observation literals only.
        """
        key = frozenset(observations)
        cached = self._not_in_guards.get(key)
        if cached is not None:
            return cached
        guard = self.ctx.circuit.var(f"not_in_guard{len(self._not_in_guards)}")
        guard_literal = self.ctx.lowering.literal(guard)
        for observation in observations:
            literals = self.projected_blocking_clause(observation)
            if literals is None:
                continue  # unreachable observation: guard need not block it
            self.cnf.add_clause([-guard_literal] + literals)
        self._not_in_guards[key] = guard
        return guard

    def decode_observation(self, model: dict[int, bool]) -> tuple[int, ...]:
        return tuple(
            self._decode_vec(slot.value, model) for slot in self.observation_slots
        )

    def decode_current_observation(self) -> tuple[int, ...]:
        """The observation vector of the most recent SAT result, read
        through the backend's narrow :meth:`values_of` accessor instead of
        materializing the full model dict — the hot path of the
        solve/block outcome-enumeration loops."""
        if self._backend is None:
            raise RuntimeError("solve() has not produced a model yet")
        plan = self._observation_bit_plan()
        wanted = {
            abs(bit) for bits in plan for bit in bits
            if not isinstance(bit, bool)
        }
        values = self._backend.values_of(wanted)
        out: list[int] = []
        for bits in plan:
            value = 0
            for position, bit in enumerate(bits):
                if isinstance(bit, bool):
                    bit_value = bit
                else:
                    raw = values.get(abs(bit), False)
                    bit_value = raw if bit > 0 else not raw
                if bit_value:
                    value |= 1 << position
            out.append(value)
        return tuple(out)

    # ------------------------------------------------------------- decoding

    def _evaluate(self, handle: int, model: dict[int, bool]) -> bool:
        return self.ctx.lowering.evaluate(handle, model)

    def _decode_vec(self, vec: BitVec, model: dict[int, bool]) -> int:
        return BitVecBuilder.decode(vec, lambda h: self._evaluate(h, model))

    def decode_access(self, access: MemoryAccess, model: dict[int, bool]) -> dict:
        return {
            "label": access.label,
            "kind": access.kind,
            "thread": access.thread,
            "invocation": access.invocation,
            "executed": self._evaluate(access.guard, model),
            "address": self._decode_vec(access.addr, model),
            "value": self._decode_vec(access.value, model),
        }

    def decode_memory_order(self, model: dict[int, bool]) -> list[MemoryAccess]:
        """The executed accesses in a linear extension of the memory order.

        Under the pruned encoding some pairs carry no order information at
        all (they were proven order-irrelevant), so the model only fixes a
        partial order; a deterministic topological sort (ties broken by
        access position) produces a total order consistent with it.  Under
        the dense encoding every pair is resolved and the result is exactly
        the model's total order.
        """
        executed = [
            a for a in self.order.accesses if self._evaluate(a.guard, model)
        ]
        position = {a.index: i for i, a in enumerate(self.order.accesses)}
        count = len(executed)
        successors: list[list[int]] = [[] for _ in range(count)]
        indegree = [0] * count
        for x in range(count):
            for y in range(x + 1, count):
                handle = self.order.resolved(
                    position[executed[x].index], position[executed[y].index]
                )
                if handle is None:
                    continue
                if self._evaluate(handle, model):
                    successors[x].append(y)
                    indegree[y] += 1
                else:
                    successors[y].append(x)
                    indegree[x] += 1
        ready = [x for x in range(count) if indegree[x] == 0]
        heapq.heapify(ready)
        result: list[MemoryAccess] = []
        while ready:
            x = heapq.heappop(ready)
            result.append(executed[x])
            for y in successors[x]:
                indegree[y] -= 1
                if indegree[y] == 0:
                    heapq.heappush(ready, y)
        if len(result) != count:  # pragma: no cover - encoding invariant
            raise RuntimeError("memory order of the model contains a cycle")
        return result

    def violated_assertions(self, model: dict[int, bool]) -> list[str]:
        return [
            description
            for handle, description in self.assertions
            if not self._evaluate(handle, model)
        ]


def share_encode_enabled(flag: bool | None = None) -> bool:
    """Resolve the encode-sharing knob: an explicit flag wins, otherwise the
    ``CHECKFENCE_SHARE_ENCODE`` environment variable (default: enabled;
    like every repo env flag, only the literal ``"0"`` disables it)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("CHECKFENCE_SHARE_ENCODE", "1") != "0"


@dataclass
class EncodingSkeleton:
    """The model-independent half of ``Phi`` for one compiled test.

    Holds the pristine :class:`EncodingContext` after symbolic execution of
    every thread, the observation slots / assertions / overflow handles,
    and the base CNF with every thread formula already Tseitin-lowered.
    Per-model layers must never mutate it: they run on
    :meth:`EncodingContext.fork` snapshots (see :func:`encode_test`).
    """

    compiled: CompiledTest
    context: EncodingContext
    threads: list[ThreadEncoding]
    executors: dict[int, ThreadSymbolicExecutor]
    observation_slots: list[ObservationSlot]
    assertions: list[tuple[int, str]]
    overflow_handles: dict[str, int]
    build_seconds: float = 0.0


#: Attribute under which a compiled test memoizes its skeleton.  Storing it
#: on the object (rather than a module-level map) ties the skeleton's
#: lifetime to the compiled test: session caches keep it warm, fuzz
#: campaigns drop it with the program.  ``CompiledTest.__getstate__``
#: excludes it from pickling.
_SKELETON_ATTR = "_encoding_skeleton"


def skeleton_for(compiled: CompiledTest) -> tuple[EncodingSkeleton, bool]:
    """The memoized skeleton of a compiled test, building it on first use.

    Returns ``(skeleton, reused)`` where ``reused`` is True when a
    previously built skeleton was found.
    """
    skeleton = getattr(compiled, _SKELETON_ATTR, None)
    if skeleton is not None:
        return skeleton, True
    skeleton = build_skeleton(compiled)
    setattr(compiled, _SKELETON_ATTR, skeleton)
    return skeleton, False


def build_skeleton(compiled: CompiledTest) -> EncodingSkeleton:
    """Symbolically execute every thread and lower the base CNF."""
    start = time.perf_counter()
    context = EncodingContext(compiled)
    threads_by_index = compiled.threads()

    executors: dict[int, ThreadSymbolicExecutor] = {}
    thread_encodings: list[ThreadEncoding] = []
    observation_slots: list[ObservationSlot] = []
    assertions: list[tuple[int, str]] = []
    overflow_handles: dict[str, int] = {}

    for thread_index in sorted(threads_by_index):
        executor = ThreadSymbolicExecutor(context, thread_index)
        executors[thread_index] = executor
        for invocation in threads_by_index[thread_index]:
            executor.run_invocation(invocation.global_index, invocation.statements)
        thread_encodings.append(executor.encoding)
        assertions.extend(executor.encoding.assertions)

    # Observation slots, in test order (init invocations first).
    for invocation in compiled.invocations:
        executor = executors[invocation.thread]
        for label, reg in zip(
            invocation.observable_labels, invocation.observable_regs
        ):
            observation_slots.append(
                ObservationSlot(label, invocation, executor.register_value(reg))
            )
        for tag, flag_reg in invocation.overflow_registers.items():
            handle = -context.bvb.is_zero(executor.register_value(flag_reg))
            overflow_handles[f"{invocation.label}:{tag}"] = handle

    prelower = _prewarm_shared_terms(context, thread_encodings)
    _lower_base_cnf(
        context, thread_encodings, observation_slots, assertions,
        overflow_handles, prelower,
    )
    return EncodingSkeleton(
        compiled=compiled,
        context=context,
        threads=thread_encodings,
        executors=executors,
        observation_slots=observation_slots,
        assertions=assertions,
        overflow_handles=overflow_handles,
        build_seconds=time.perf_counter() - start,
    )


def _core_static_reach(
    context: EncodingContext,
    threads: list[ThreadEncoding],
    accesses,
    position: dict[int, int],
    extra_edges,
) -> list[int]:
    """Reachability bitmasks of the *model-independent core* of the static
    order: edges every memory model resolves identically — init-thread
    accesses before every other thread, init-thread and atomic-block
    program order, always-executed fences, and the caller-supplied
    ``extra_edges`` (constant same-address store order, which every
    registered model enforces).  The per-model static resolver
    (:meth:`MemoryModelEncoder._resolve_static_orders`) produces a superset
    of this relation, so a (load, store) pair the core orders load-first is
    invisible under every model and its equality terms need never exist.
    (Were a model ever to drop one of these axioms, its layer would simply
    build the skipped terms lazily on its fork — prewarm narrowing can
    cost per-model time, never correctness.)
    """
    n = len(accesses)
    successors = [0] * n
    for first, second in extra_edges:
        successors[position[first.index]] |= 1 << position[second.index]
    circuit_true = context.circuit.TRUE
    by_thread: dict[int, list] = {}
    for access in accesses:
        by_thread.setdefault(access.thread, []).append(access)
    for thread_accesses in by_thread.values():
        thread_accesses.sort(key=lambda a: a.seq)
        for i, first in enumerate(thread_accesses):
            for second in thread_accesses[i + 1:]:
                if first.thread == INIT_THREAD or (
                    first.atomic_group is not None
                    and first.atomic_group == second.atomic_group
                ):
                    successors[position[first.index]] |= (
                        1 << position[second.index]
                    )
    for thread in threads:
        fences = [f for f in thread.fences if f.guard == circuit_true]
        if not fences:
            continue
        thread_accesses = by_thread.get(thread.thread, [])
        for fence in fences:
            before = [
                a for a in thread_accesses
                if a.seq < fence.seq and a.kind in fence.kind.orders_before
            ]
            after = [
                a for a in thread_accesses
                if a.seq > fence.seq and a.kind in fence.kind.orders_after
            ]
            for first in before:
                for second in after:
                    successors[position[first.index]] |= (
                        1 << position[second.index]
                    )
    for access in accesses:
        if access.thread == INIT_THREAD:
            bit = 0
            for other in accesses:
                if other.thread != INIT_THREAD:
                    bit |= 1 << position[other.index]
            successors[position[access.index]] |= bit
    # Closure: core edges go init -> non-init or follow seq within one
    # thread, so (non-init, thread, seq) sorts topologically (the same
    # argument as the per-model resolver's sweep).
    topo = sorted(
        range(n),
        key=lambda p: (
            accesses[p].thread != INIT_THREAD,
            accesses[p].thread,
            accesses[p].seq,
            p,
        ),
    )
    reach = [0] * n
    for p in reversed(topo):
        result = successors[p]
        pending = successors[p]
        while pending:
            low = pending & -pending
            result |= reach[low.bit_length() - 1]
            pending ^= low
        reach[p] = result
    return reach


def _prewarm_shared_terms(
    context: EncodingContext, threads: list[ThreadEncoding]
) -> list[int]:
    """Build the model-independent equality terms into the skeleton.

    Address/value equalities and initial-value terms are what the value and
    same-address axioms consume; constructing them here (into the context
    caches every fork inherits) means no per-model layer re-walks the
    bit-vector builders for them.  Only terms some model can actually
    reference are built: pairs the model-independent core order proves
    invisible (store after load under every model), init-thread pairs and
    atomic-block-internal pairs (statically ordered everywhere, so never
    compared symbolically) are skipped — prewarming is an optimization,
    and any term a future model does need is still built lazily on its
    fork.  Cross-thread store pairs never compare addresses at all: the
    <M-maximality terms reuse the load's own visibility conjuncts.
    """
    accesses = sorted(
        (a for t in threads for a in t.accesses), key=lambda a: a.index
    )
    position = {a.index: i for i, a in enumerate(accesses)}
    alias = {
        a.index: (
            frozenset(a.addr_candidates)
            if a.addr_candidates is not None
            else None
        )
        for a in accesses
    }

    def may_alias(x, y) -> bool:
        sx, sy = alias[x.index], alias[y.index]
        return sx is None or sy is None or not sx.isdisjoint(sy)

    # The same-thread (earlier, store) pairs of the same-address axiom
    # compare addresses symbolically — except on the init thread and inside
    # one atomic block, where every model orders them statically.  Pairs
    # whose comparison folds to a constant TRUE are static order edges
    # under every registered model and feed the core relation below.
    # Pairs already ordered by the fence/atomic/init core are built (so
    # every fork shares the construction) but not marked for pre-lowering:
    # the same-address axiom folds their order handle to TRUE and never
    # references the comparison.
    prelower: list[int] = []
    const_edges: list[tuple] = []
    circuit_true = context.circuit.TRUE
    base_reach = _core_static_reach(context, threads, accesses, position, ())
    for thread in threads:
        if thread.thread == INIT_THREAD:
            continue
        ordered = sorted(thread.accesses, key=lambda a: a.seq)
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                if not second.is_store:
                    continue
                if (
                    first.atomic_group is not None
                    and first.atomic_group == second.atomic_group
                ):
                    continue
                if may_alias(first, second):
                    term = context.addr_eq(first, second)
                    if term == circuit_true:
                        const_edges.append((first, second))
                    elif not (
                        (base_reach[position[first.index]]
                         >> position[second.index]) & 1
                    ):
                        prelower.append(term)

    reach = _core_static_reach(
        context, threads, accesses, position, const_edges
    )
    stores = [a for a in accesses if a.is_store]
    for load in accesses:
        if not load.is_load:
            continue
        prelower.append(context.initial_value_term(load))
        load_reach = reach[position[load.index]]
        for store in stores:
            if (load_reach >> position[store.index]) & 1:
                continue  # store after load in every model: invisible
            if may_alias(load, store):
                prelower.append(context.addr_eq(load, store))
                prelower.append(context.value_eq(load, store))
    return prelower


def _lower_base_cnf(
    context: EncodingContext,
    threads: list[ThreadEncoding],
    observation_slots: list[ObservationSlot],
    assertions: list[tuple[int, str]],
    overflow_handles: dict[str, int],
    prelower: list[int],
) -> None:
    """Tseitin-lower the model-independent formula into the base CNF.

    Every observable bit, assertion condition and overflow handle needs a
    SAT variable so models can always be decoded; every access guard,
    address and value bit is referenced by the value axioms of *every*
    memory model, so lowering their cones here emits the thread-formula
    clauses once instead of once per model.  Candidate-fence selectors are
    assumed (and appear in cores) after the first solve, so they too need
    CNF variables — and protection from the preprocessor — up front.
    """
    literal = context.lowering.literal
    for slot in observation_slots:
        for bit in slot.value.bits:
            literal(bit)
    for handle, _ in assertions:
        literal(handle)
    for handle in overflow_handles.values():
        literal(handle)
    for handle in context.fence_selectors.values():
        literal(handle)
    for thread in threads:
        for access in thread.accesses:
            literal(access.guard)
            for bit in access.addr.bits:
                literal(bit)
            for bit in access.value.bits:
                literal(bit)
        for fence in thread.fences:
            literal(fence.guard)
    # The prewarmed equality/initial-value cones marked for pre-lowering
    # are consumed by every model's axioms — the gates themselves appear
    # as children of each layer's conjunctions — so lowering them (cone
    # and top gate) here emits exactly the Tseitin definitions every
    # per-model layer would otherwise re-derive.
    for handle in prelower:
        if abs(handle) != Circuit.TRUE:
            literal(handle)


def encode_test(
    compiled: CompiledTest,
    model: MemoryModel,
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
    share_encode: bool | None = None,
) -> EncodedTest:
    """Build the formula ``Phi`` for a compiled test under a memory model.

    ``dense_order`` selects the memory-order construction: ``False`` (the
    default) uses the conflict-aware pruned encoding, ``True`` the original
    dense one; ``None`` defers to ``CHECKFENCE_DENSE_ORDER``.

    ``simplify`` runs the in-process CNF preprocessor between lowering and
    solving (``True`` by default); ``None`` defers to
    ``CHECKFENCE_SIMPLIFY`` (``0`` disables).

    ``share_encode`` reuses the memoized model-independent skeleton of the
    compiled test and runs only the per-model layer on a fork of it
    (``True`` by default); ``None`` defers to ``CHECKFENCE_SHARE_ENCODE``
    (``0`` disables).  Both paths run the identical construction sequence,
    so shared and scratch encodes produce the same formula.
    """
    dense = dense_order_enabled(dense_order)
    simplify_flag = simplify_enabled(simplify)
    if share_encode_enabled(share_encode):
        skeleton, reused = skeleton_for(compiled)
        layer_start = time.perf_counter()
        # Fork even a freshly built skeleton: it must stay pristine for the
        # next model (and the next check after an inclusion query).
        context = skeleton.context.fork()
    else:
        skeleton, reused = build_skeleton(compiled), False
        layer_start = time.perf_counter()
        context = skeleton.context  # consumed in place; never reused

    encoder = MemoryModelEncoder(context, model, skeleton.threads, dense=dense)
    order = encoder.encode()

    stats = EncodingStatistics()
    size = compiled.size_statistics()
    stats.instructions = size["instructions"]
    stats.loads = size["loads"]
    stats.stores = size["stores"]
    stats.accesses = len(order.accesses)
    stats.cnf_variables = context.lowering.cnf.num_vars
    stats.cnf_clauses = context.lowering.cnf.num_clauses
    stats.order_pairs = encoder.order_pair_count
    stats.order_vars = encoder.order_var_count
    stats.order_pairs_static = encoder.static_pair_count
    stats.transitivity_clauses = encoder.transitivity_clause_count
    stats.dense_order = dense
    stats.skeleton_shared = reused
    stats.skeleton_seconds = 0.0 if reused else skeleton.build_seconds
    stats.layer_seconds = time.perf_counter() - layer_start
    stats.encode_seconds = stats.skeleton_seconds + stats.layer_seconds

    return EncodedTest(
        context=context,
        model=model,
        threads=skeleton.threads,
        executors=skeleton.executors,
        order=order,
        observation_slots=skeleton.observation_slots,
        assertions=skeleton.assertions,
        overflow_handles=skeleton.overflow_handles,
        stats=stats,
        backend_factory=backend_factory,
        simplify=simplify_flag,
    )
