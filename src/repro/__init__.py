"""CheckFence reproduction: checking consistency of concurrent data types on
relaxed memory models (Burckhardt, Alur, Martin — PLDI 2007).

Quickstart::

    from repro import CheckFence, get_implementation, get_test

    checker = CheckFence(get_implementation("msn-unfenced"))
    result = checker.check(get_test("queue", "T0"), "relaxed")
    if result.failed:
        print(result.counterexample.format())

The package layers (see DESIGN.md for the full inventory):

* :mod:`repro.sat` — CDCL SAT solver, circuits, bit-vectors (zChaff stand-in)
* :mod:`repro.lang` — C-subset front-end (CIL stand-in)
* :mod:`repro.lsl` — the Load/Store Language IR and its serial interpreter
* :mod:`repro.analysis` — inlining, loop unrolling, range analysis
* :mod:`repro.memorymodel` — Seriality, SC, TSO, PSO, Relaxed
* :mod:`repro.encoding` — the propositional encoding of all executions
* :mod:`repro.core` — specification mining, inclusion check, counterexamples
* :mod:`repro.datatypes` — ms2, msn, lazylist, harris, snark (+ variants)
* :mod:`repro.harness` — the Fig. 8 test catalog and Section 4 experiments
* :mod:`repro.litmus` — memory-model litmus tests (Fig. 2 and friends)
"""

from repro.core import CheckFence, CheckOptions, CheckResult, check
from repro.datatypes import available_implementations, get_implementation
from repro.harness import get_test, test_names
from repro.lsl import Invocation, SymbolicTest
from repro.memorymodel import (
    PSO,
    RELAXED,
    SEQUENTIAL_CONSISTENCY,
    SERIAL,
    TSO,
    available_models,
    get_model,
)

__version__ = "0.1.0"

__all__ = [
    "CheckFence",
    "CheckOptions",
    "CheckResult",
    "check",
    "available_implementations",
    "get_implementation",
    "get_test",
    "test_names",
    "Invocation",
    "SymbolicTest",
    "PSO",
    "RELAXED",
    "SEQUENTIAL_CONSISTENCY",
    "SERIAL",
    "TSO",
    "available_models",
    "get_model",
    "__version__",
]
