"""Experiment runner: regenerates the quantitative results of Section 4.

The runner wraps the checker with bookkeeping so that each experiment
(benchmark module) can produce the same rows/series the paper reports:

* :func:`inclusion_row` — one row of the Fig. 10 table (unrolled size,
  encoding time, CNF size, solver time, total time);
* :func:`mining_point` — one data point of Fig. 11a (observation set size vs
  enumeration time, for both the SAT miner and the reference miner);
* :func:`breakdown` — the Fig. 11b average time breakdown;
* :func:`range_analysis_comparison` — one point of Fig. 11c;
* :func:`method_comparison` — one point of Fig. 12 (observation-set method
  vs the commit-point style baseline);
* :func:`fence_experiment` — the Section 4.2 experiment (unfenced fails,
  fenced passes).

Matrix-shaped experiments (a whole catalog, or one test under several
models) go through :mod:`repro.harness.matrix`: :func:`catalog_matrix`
runs Fig. 8 x models across a worker pool, and :func:`model_sweep` is the
one-test-many-models special case.  :func:`fuzz_campaign` runs the
differential litmus fuzzer (oracle vs SAT encoding) through the same pool.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

from repro.core.checker import CheckFence, CheckOptions
from repro.core.commitpoint import run_commit_point_check
from repro.core.results import CheckResult
from repro.core.specification import (
    ReferenceSpecificationMiner,
    SatSpecificationMiner,
)
from repro.encoding.formula import order_counter_dict
from repro.datatypes.registry import (
    base_implementations,
    category_of,
    get_implementation,
)
from repro.harness.catalog import get_test
from repro.harness.matrix import MatrixCell, MatrixResult, catalog_cells, run_matrix
from repro.memorymodel.base import get_model


def large_tests_enabled() -> bool:
    """Large catalog tests are only run when CHECKFENCE_LARGE=1."""
    return os.environ.get("CHECKFENCE_LARGE", "0") == "1"


@dataclass
class InclusionRow:
    """One row of the Fig. 10 statistics table."""

    implementation: str
    test: str
    memory_model: str
    instructions: int
    loads: int
    stores: int
    accesses: int
    encode_seconds: float
    cnf_variables: int
    cnf_clauses: int
    solve_seconds: float
    total_seconds: float
    passed: bool
    order_pairs: int = 0
    order_vars: int = 0
    order_pairs_static: int = 0
    transitivity_clauses: int = 0
    dense_order: bool = False
    simplify: bool = False
    solver_backend: str = ""
    solver_counters_available: bool = True
    solver_decisions: int = 0
    solver_conflicts: int = 0
    solver_propagations: int = 0
    solver_restarts: int = 0
    solver_learned_clauses: int = 0
    solver_deleted_clauses: int = 0
    solver_vars_eliminated: int = 0
    solver_clauses_subsumed: int = 0
    solver_equiv_merged: int = 0
    solver_preprocess_seconds: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)

    def solver_dict(self) -> dict:
        """Per-backend solver counters (embedded in benchmark JSON); the
        same key set as :meth:`CheckStatistics.solver_dict`, derived
        mechanically from the ``solver_*`` fields."""
        prefix = "solver_"
        return {
            key[len(prefix):]: value
            for key, value in asdict(self).items()
            if key.startswith(prefix)
        }

    def order_dict(self) -> dict:
        """Memory-order encoding counters (embedded in benchmark JSON);
        the same key set as :meth:`CheckStatistics.order_dict`."""
        return order_counter_dict(self)


def check_catalog_test(
    implementation_name: str,
    test_name: str,
    memory_model: str = "relaxed",
    options: CheckOptions | None = None,
) -> CheckResult:
    """Check one catalog test against one implementation variant."""
    implementation = get_implementation(implementation_name)
    category = category_of(implementation_name)
    test = get_test(category, test_name)
    checker = CheckFence(implementation, options)
    return checker.check(test, get_model(memory_model))


def model_sweep(
    implementation_name: str,
    test_name: str,
    memory_models,
    options: CheckOptions | None = None,
    jobs: int | None = None,
    shard_by: str = "test",
) -> list[CheckResult]:
    """Check one catalog test under several memory models.

    Routed through :func:`repro.harness.matrix.run_matrix`.  With the
    default ``shard_by="test"`` every model lands in one shard, so one
    :class:`~repro.core.session.CheckSession` compiles the test once and
    mines its specification once (the deterministic serial path, whatever
    ``jobs`` says).  Pass ``shard_by="model"`` with ``jobs>1`` to trade
    that reuse for wall-clock parallelism across models.
    """
    cells = [
        MatrixCell(implementation_name, test_name, get_model(m).name)
        for m in memory_models
    ]
    matrix = run_matrix(cells, jobs=jobs, shard_by=shard_by, options=options)
    for cell_result in matrix.results:
        if cell_result.error:
            raise RuntimeError(
                f"model_sweep cell {cell_result.cell.key} failed: "
                f"{cell_result.error}"
            )
    return [cell_result.result for cell_result in matrix.results]


def catalog_matrix(
    implementations=None,
    memory_models=("relaxed",),
    tests=None,
    size: str = "small",
    jobs: int | None = None,
    shard_by: str = "test",
    options: CheckOptions | None = None,
    progress=None,
) -> MatrixResult:
    """Run a Fig. 8 catalog matrix: (implementation x test x model) cells
    sharded across a worker pool (see :mod:`repro.harness.matrix`).

    ``implementations=None`` checks the five Table 1 base implementations;
    ``tests=None`` selects each implementation's catalog tests of the given
    ``size`` class.
    """
    if implementations is None:
        implementations = base_implementations()
    cells = catalog_cells(
        implementations, models=memory_models, tests=tests, size=size
    )
    return run_matrix(
        cells, jobs=jobs, shard_by=shard_by, options=options, progress=progress
    )


def fuzz_campaign(
    budget: int,
    seed: int,
    memory_models=("serial", "sc", "tso", "pso", "relaxed"),
    jobs: int | None = None,
    options: CheckOptions | None = None,
    progress=None,
):
    """Run a differential fuzzing campaign (oracle vs SAT encoding).

    A thin experiment-runner wrapper over :func:`repro.fuzz.run_fuzz`; the
    returned :class:`~repro.fuzz.harness.FuzzCampaignResult` carries the
    throughput numbers (programs/s, cells/s) the fuzz benchmark records.
    """
    from repro.fuzz import run_fuzz

    return run_fuzz(
        budget=budget,
        seed=seed,
        models=memory_models,
        jobs=jobs,
        options=options,
        progress=progress,
    )


def inclusion_row(
    implementation_name: str,
    test_name: str,
    memory_model: str = "relaxed",
    options: CheckOptions | None = None,
) -> InclusionRow:
    """Produce one Fig. 10 row."""
    result = check_catalog_test(
        implementation_name, test_name, memory_model, options
    )
    stats = result.stats
    return InclusionRow(
        implementation=implementation_name,
        test=test_name,
        memory_model=memory_model,
        instructions=stats.instructions,
        loads=stats.loads,
        stores=stats.stores,
        accesses=stats.accesses,
        encode_seconds=stats.encode_seconds,
        cnf_variables=stats.cnf_variables,
        cnf_clauses=stats.cnf_clauses,
        solve_seconds=stats.solve_seconds,
        total_seconds=stats.total_seconds,
        passed=result.passed,
        order_pairs=stats.order_pairs,
        order_vars=stats.order_vars,
        order_pairs_static=stats.order_pairs_static,
        transitivity_clauses=stats.transitivity_clauses,
        dense_order=stats.dense_order,
        simplify=stats.simplify,
        # One source of truth for the counter set: CheckStatistics.
        **{f"solver_{key}": value for key, value in stats.solver_dict().items()},
    )


@dataclass
class MiningPoint:
    """One data point of Fig. 11a."""

    implementation: str
    test: str
    method: str
    observation_set_size: int
    mining_seconds: float


def mining_point(
    implementation_name: str, test_name: str, method: str
) -> MiningPoint:
    implementation = get_implementation(implementation_name)
    category = category_of(implementation_name)
    test = get_test(category, test_name)
    checker = CheckFence(implementation)
    compiled = checker.compile(test, "serial")
    if method == "sat":
        spec = SatSpecificationMiner(compiled).mine()
    else:
        spec = ReferenceSpecificationMiner(compiled).mine()
    return MiningPoint(
        implementation=implementation_name,
        test=test_name,
        method=method,
        observation_set_size=len(spec),
        mining_seconds=spec.mining_seconds,
    )


@dataclass
class TimeBreakdown:
    """Fig. 11b: share of total runtime per phase."""

    mining_seconds: float = 0.0
    encode_seconds: float = 0.0
    solve_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.mining_seconds + self.encode_seconds + self.solve_seconds

    def shares(self) -> dict[str, float]:
        total = self.total_seconds or 1.0
        return {
            "specification mining": self.mining_seconds / total,
            "encoding of inclusion test": self.encode_seconds / total,
            "refutation of inclusion test": self.solve_seconds / total,
        }


def breakdown(
    implementation_name: str,
    test_name: str,
    memory_model: str = "relaxed",
    specification_method: str = "sat",
) -> TimeBreakdown:
    options = CheckOptions(specification_method=specification_method)
    result = check_catalog_test(
        implementation_name, test_name, memory_model, options
    )
    return TimeBreakdown(
        mining_seconds=result.stats.mining_seconds,
        encode_seconds=result.stats.encode_seconds,
        solve_seconds=result.stats.solve_seconds,
    )


@dataclass
class RangeAnalysisComparison:
    """Fig. 11c: runtime with and without the range analysis."""

    implementation: str
    test: str
    with_analysis_seconds: float
    without_analysis_seconds: float
    with_clauses: int
    without_clauses: int

    @property
    def speedup(self) -> float:
        if self.with_analysis_seconds == 0:
            return 1.0
        return self.without_analysis_seconds / self.with_analysis_seconds


def range_analysis_comparison(
    implementation_name: str, test_name: str, memory_model: str = "relaxed"
) -> RangeAnalysisComparison:
    with_result = check_catalog_test(
        implementation_name, test_name, memory_model,
        CheckOptions(use_range_analysis=True),
    )
    without_result = check_catalog_test(
        implementation_name, test_name, memory_model,
        CheckOptions(use_range_analysis=False),
    )
    return RangeAnalysisComparison(
        implementation=implementation_name,
        test=test_name,
        with_analysis_seconds=with_result.stats.total_seconds,
        without_analysis_seconds=without_result.stats.total_seconds,
        with_clauses=with_result.stats.cnf_clauses,
        without_clauses=without_result.stats.cnf_clauses,
    )


@dataclass
class MethodComparison:
    """Fig. 12: observation-set method vs the commit-point style baseline."""

    implementation: str
    test: str
    observation_set_seconds: float
    commit_point_seconds: float
    both_agree: bool

    @property
    def speedup(self) -> float:
        if self.observation_set_seconds == 0:
            return 1.0
        return self.commit_point_seconds / self.observation_set_seconds


def method_comparison(
    implementation_name: str, test_name: str, memory_model: str = "relaxed"
) -> MethodComparison:
    implementation = get_implementation(implementation_name)
    category = category_of(implementation_name)
    test = get_test(category, test_name)
    model = get_model(memory_model)

    checker = CheckFence(implementation)
    start = time.perf_counter()
    observation_result = checker.check(test, model)
    observation_seconds = time.perf_counter() - start

    compiled = checker.compile(test, model)
    # Same order construction and preprocessing on both sides of the
    # Fig. 12 comparison.
    commit_result = run_commit_point_check(
        compiled, model, dense_order=checker.session.dense_order,
        simplify=checker.session.simplify,
    )
    return MethodComparison(
        implementation=implementation_name,
        test=test_name,
        observation_set_seconds=observation_seconds,
        commit_point_seconds=commit_result.total_seconds,
        both_agree=observation_result.passed == commit_result.passed,
    )


@dataclass
class FenceExperiment:
    """Section 4.2/4.3: the unfenced algorithm fails on Relaxed, the fenced
    one passes, both pass under sequential consistency — and fence synthesis
    (:mod:`repro.core.synthesize`) automatically repairs the unfenced
    variant with a verified fence set no larger than the hand-placed one."""

    implementation: str
    test: str
    fenced_passes_relaxed: bool
    unfenced_fails_relaxed: bool
    unfenced_passes_sc: bool
    counterexample: str = ""
    #: Labels of the synthesized fence set (empty when synthesis was
    #: skipped because the unfenced variant did not fail).
    synthesized_labels: tuple[str, ...] = ()
    synthesized_cost: int = 0
    synthesis_sufficient: bool = False
    synthesis_minimal: bool = False
    #: Unconditional fences in the hand-fenced variant's LSL program.
    hand_fence_count: int = 0

    @property
    def reproduces_paper(self) -> bool:
        return (
            self.fenced_passes_relaxed
            and self.unfenced_fails_relaxed
            and self.unfenced_passes_sc
        )

    @property
    def synthesis_repairs(self) -> bool:
        """Synthesis found a verified minimal fence set at most as large
        as the hand-placed one (the Section 4.3 automation claim)."""
        return (
            self.synthesis_sufficient
            and self.synthesis_minimal
            and len(self.synthesized_labels) <= self.hand_fence_count
        )


def count_hand_fences(implementation_name: str) -> int:
    """Unconditional fences in an implementation's compiled LSL program."""
    from repro.lang.lower import compile_c
    from repro.lsl.instructions import Fence, iter_statements

    implementation = get_implementation(implementation_name)
    program = compile_c(implementation.source, implementation.name)
    return sum(
        1
        for procedure in program.procedures.values()
        for stmt in iter_statements(procedure.body)
        if isinstance(stmt, Fence) and stmt.candidate is None
    )


def fence_experiment(
    base_name: str, test_name: str, synthesize: bool = True,
    memory_model: str = "relaxed",
) -> FenceExperiment:
    from repro.core.session import CheckSession

    fenced = check_catalog_test(base_name, test_name, memory_model)
    unfenced_relaxed = check_catalog_test(
        f"{base_name}-unfenced", test_name, memory_model
    )
    unfenced_sc = check_catalog_test(f"{base_name}-unfenced", test_name, "sc")
    counterexample = ""
    if unfenced_relaxed.counterexample is not None:
        counterexample = unfenced_relaxed.counterexample.format()
    synthesized_labels: tuple[str, ...] = ()
    synthesized_cost = 0
    synthesis_sufficient = False
    synthesis_minimal = False
    if synthesize and not unfenced_relaxed.passed:
        session = CheckSession(get_implementation(f"{base_name}-unfenced"))
        category = category_of(base_name)
        test = get_test(category, test_name)
        synthesis = session.synthesize(test, [memory_model])
        synthesized_labels = tuple(synthesis.labels)
        synthesized_cost = synthesis.cost
        synthesis_sufficient = synthesis.verified_sufficient
        synthesis_minimal = synthesis.verified_minimal
    return FenceExperiment(
        implementation=base_name,
        test=test_name,
        fenced_passes_relaxed=fenced.passed,
        unfenced_fails_relaxed=not unfenced_relaxed.passed,
        unfenced_passes_sc=unfenced_sc.passed,
        counterexample=counterexample,
        synthesized_labels=synthesized_labels,
        synthesized_cost=synthesized_cost,
        synthesis_sufficient=synthesis_sufficient,
        synthesis_minimal=synthesis_minimal,
        hand_fence_count=count_hand_fences(base_name),
    )
