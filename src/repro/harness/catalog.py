"""The symbolic test catalog of Fig. 8.

Tests are written in the paper's compact notation: one string of operation
letters per thread, with an optional initialization sequence executed before
the threads start.  Letters: ``e``/``d`` (enqueue/dequeue), ``a``/``c``/``r``
(add/contains/remove), and ``al``/``ar``/``rl``/``rr`` (add/remove left/
right).  Primed operations in the paper restrict retry loops to a single
iteration; in this reproduction every retry loop is bounded (Section 3.3),
so primes do not change the test and are accepted and ignored.

Every test starts with the implementation's ``init`` operation so the shared
object is set up before the init sequence and the threads run.
"""

from __future__ import annotations

from repro.lsl.program import Invocation, SymbolicTest

#: Token -> operation name, per data type category.
_TOKENS = {
    "queue": {"e": "enqueue", "d": "dequeue"},
    "set": {"a": "add", "c": "contains", "r": "remove"},
    "deque": {
        "al": "add_left",
        "ar": "add_right",
        "rl": "remove_left",
        "rr": "remove_right",
    },
}

#: Operations that take one (nondeterministic) value argument.
_HAS_ARGUMENT = {"enqueue", "add", "contains", "remove", "add_left", "add_right"}

# ---------------------------------------------------------------------------
# The catalog (Fig. 8).  Each entry: name -> (init tokens, [thread tokens]).
# ---------------------------------------------------------------------------

QUEUE_TESTS: dict[str, tuple[str, list[str]]] = {
    "T0": ("", ["e", "d"]),
    "T1": ("", ["e", "e", "d", "d"]),
    "Tpc2": ("", ["ee", "dd"]),
    "Tpc3": ("", ["eee", "ddd"]),
    "Tpc4": ("", ["eeee", "dddd"]),
    "Tpc5": ("", ["eeeee", "ddddd"]),
    "Tpc6": ("", ["eeeeee", "dddddd"]),
    "Ti2": ("e", ["ed", "de"]),
    "Ti3": ("e", ["de", "dde"]),
    "T53": ("", ["eeee", "d", "d"]),
    "T54": ("", ["eee", "e", "d", "d"]),
    "T55": ("", ["ee", "e", "e", "d", "d"]),
    "T56": ("", ["e", "e", "e", "e", "d", "d"]),
}

SET_TESTS: dict[str, tuple[str, list[str]]] = {
    "Sac": ("", ["a", "c"]),
    "Sar": ("", ["a", "r"]),
    "Saa": ("", ["a", "a"]),
    "Sacr": ("", ["a", "c", "r"]),
    "Saacr": ("a", ["a", "c", "r"]),
    "Sacr2": ("aar", ["a", "c", "r"]),
    "Saaarr": ("aaa", ["r", "rc"]),
    "Sarr": ("", ["a", "r", "r"]),
    "S1": ("", ["a'", "a'", "c'", "c'", "r'", "r'"]),
}

DEQUE_TESTS: dict[str, tuple[str, list[str]]] = {
    "D0": ("", ["al rr", "ar rl"]),
    "Da": ("al al", ["rr rr", "rl rl"]),
    "Db": ("", ["rr rl", "ar", "al"]),
    "Dm": ("", ["al' al' al'", "rr' rr' rr'", "rl'", "ar'"]),
    "Dq": ("", ["al'", "al'", "ar'", "ar'", "rl'", "rl'", "rr'", "rr'"]),
}

_CATALOG = {"queue": QUEUE_TESTS, "set": SET_TESTS, "deque": DEQUE_TESTS}

#: Tests small enough for the pure-Python back-end to check quickly; the
#: remaining tests are available but slow (guard with CHECKFENCE_LARGE=1).
SMALL_TESTS = {
    "queue": ["T0", "Ti2", "Tpc2"],
    "set": ["Sac", "Sar", "Saa"],
    "deque": ["D0", "Da"],
}

MEDIUM_TESTS = {
    "queue": ["T1", "Tpc3", "Ti3", "T53", "T54", "T55", "T56"],
    "set": ["Sacr", "Saacr", "Sarr"],
    "deque": ["Db", "Dm"],
}

LARGE_TESTS = {
    "queue": ["Tpc4", "Tpc5", "Tpc6"],
    "set": ["Sacr2", "Saaarr", "S1"],
    "deque": ["Dq"],
}


def _tokenize(text: str, category: str) -> list[str]:
    """Split a thread description into operation tokens."""
    tokens: list[str] = []
    for word in text.replace("'", "").split():
        if category == "deque":
            tokens.append(word)
            continue
        tokens.extend(word)
    if category == "deque":
        return tokens
    return tokens


def _invocations(tokens: list[str], category: str) -> list[Invocation]:
    mapping = _TOKENS[category]
    out = []
    for token in tokens:
        operation = mapping.get(token)
        if operation is None:
            raise KeyError(f"unknown operation token {token!r} for {category}")
        if operation in _HAS_ARGUMENT:
            out.append(Invocation(operation, (None,)))
        else:
            out.append(Invocation(operation))
    return out


def build_test(
    category: str, name: str, init: str, threads: list[str]
) -> SymbolicTest:
    """Build a SymbolicTest from the compact Fig. 8 notation."""
    init_invocations = [Invocation("init")]
    init_invocations += _invocations(_tokenize(init, category), category)
    thread_invocations = [
        _invocations(_tokenize(thread, category), category) for thread in threads
    ]
    display = f"{init} ( {' | '.join(threads)} )".strip()
    return SymbolicTest(
        name=name,
        threads=thread_invocations,
        init=init_invocations,
        description=display,
    )


def get_test(category: str, name: str) -> SymbolicTest:
    """Look up a Fig. 8 test by category and name."""
    try:
        tests = _CATALOG[category]
    except KeyError as exc:
        raise KeyError(f"unknown category {category!r}") from exc
    try:
        init, threads = tests[name]
    except KeyError as exc:
        raise KeyError(f"unknown {category} test {name!r}") from exc
    return build_test(category, name, init, threads)


def test_names(category: str, size: str = "all") -> list[str]:
    """Names of the catalog tests for a category, optionally filtered by
    size class ('small', 'medium', 'large', 'all')."""
    if size == "all":
        return list(_CATALOG[category])
    groups = {"small": SMALL_TESTS, "medium": MEDIUM_TESTS, "large": LARGE_TESTS}
    return list(groups[size][category])


def all_tests(category: str) -> dict[str, SymbolicTest]:
    return {name: get_test(category, name) for name in _CATALOG[category]}


def operation_count(test: SymbolicTest) -> int:
    """Number of operation invocations (excluding the implicit init)."""
    thread_ops = sum(len(thread) for thread in test.threads)
    init_ops = sum(1 for inv in test.init if inv.operation != "init")
    return thread_ops + init_ops
