"""Plain-text table/series rendering for the benchmark harness.

The original paper presents its quantitative results as a table (Fig. 10)
and log-log scatter charts (Figs. 10-12).  Without a plotting dependency we
render the same data as aligned text tables and simple ASCII scatter plots,
which is enough to compare shapes and ratios against the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    if seconds < 0.1:
        return f"{seconds * 1000:.0f}ms"
    return f"{seconds:.2f}s"


def ascii_scatter(
    points: Sequence[tuple[float, float, str]],
    width: int = 60,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A crude ASCII scatter plot (optionally log-log), one char per point."""
    if not points:
        return "(no data points)"

    def transform(value: float, log: bool) -> float:
        if not log:
            return value
        return math.log10(max(value, 1e-6))

    xs = [transform(x, log_x) for x, _, _ in points]
    ys = [transform(y, log_y) for _, y, _ in points]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (raw_x, raw_y, marker), x, y in zip(points, xs, ys):
        column = int((x - min_x) / span_x * (width - 1))
        row = height - 1 - int((y - min_y) / span_y * (height - 1))
        grid[row][column] = marker[0] if marker else "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: {x_label}  [{min(p[0] for p in points):g} .. "
                 f"{max(p[0] for p in points):g}]"
                 + ("  (log scale)" if log_x else ""))
    lines.append(f"y: {y_label}  [{min(p[1] for p in points):g} .. "
                 f"{max(p[1] for p in points):g}]"
                 + ("  (log scale)" if log_y else ""))
    return "\n".join(lines)
