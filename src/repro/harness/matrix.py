"""Parallel check matrix: multiprocess sharding across (test x model x impl).

CheckFence's workload is embarrassingly parallel: every (bounded test,
memory model, implementation) cell is an independent SAT instance, and the
paper's experiments (Fig. 8 catalog runs, Table 1, the Fig. 2 litmus matrix)
are exactly such matrices.  This module enumerates the cells, groups them
into *shards*, and runs the shards either serially or across a
``multiprocessing`` worker pool:

* a :class:`MatrixCell` names one check — a catalog cell
  (implementation, Fig. 8 test, memory model) or a litmus cell
  (litmus test, memory model);
* :func:`shard_cells` batches cells so that work is reused *inside* a
  shard: the default ``shard_by="test"`` groups by compiled-test key
  (implementation, test), so one :class:`~repro.core.session.CheckSession`
  compiles the test and mines its specification once and then sweeps the
  models;
* :func:`run_matrix` is the orchestrator.  With ``jobs=1`` it runs the
  shards in order in-process (the deterministic serial path).  With
  ``jobs>1`` it starts worker processes that pull shards from a task
  queue — each worker keeps warm ``CheckSession`` objects per
  implementation — and streams :class:`CellResult` messages back through a
  result queue, so progress is reported as cells finish.  Results are
  merged back into the original cell order, so serial and parallel runs
  produce the same sequence of verdicts.

Fault tolerance (the robustness layer):

* cells run under the per-cell resource budget of
  :mod:`repro.core.limits` (``options.timeout`` /
  ``options.memory_limit_mb``), degrading to first-class ``TIMEOUT`` /
  ``OOM`` verdicts instead of hanging a worker;
* a crashed (or hung) worker's unfinished cells are *re-queued* to a
  replacement worker with capped retries
  (``CHECKFENCE_MATRIX_RETRIES``, default 2) and a small backoff; cells
  still unfinished after the attempt cap are quarantined as explicit
  ``CRASHED`` verdicts;
* ``journal=`` writes one JSON line per completed cell as it finishes,
  and ``resume=True`` reads the journal back, records the finished
  cells verdict-identically, and reruns only the rest;
* pool teardown escalates terminate → kill, so a worker stuck in a
  SIGTERM-ignoring state (hung solver, masked signals) is never leaked.

Fault *injection* for all of the above lives in
:mod:`repro.core.faults` (``CHECKFENCE_FAULT=worker-crash:<key>,...``);
the legacy ``CHECKFENCE_MATRIX_CRASH`` / ``CHECKFENCE_MATRIX_INTERRUPT``
hooks keep working through it.

The CLI surface is ``checkfence matrix`` (``--jobs``, ``--shard-by``,
``--solver``, ``--json``, ``--timeout``, ``--journal``/``--resume``);
``checkfence litmus`` and :func:`repro.harness.runner.model_sweep` are
built on top of this module.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import signal
import time
import traceback
from dataclasses import dataclass, field, replace

from repro.core import faults, limits
from repro.core.results import CheckResult
from repro.core.session import CheckSession
from repro.datatypes.registry import category_of, get_implementation
from repro.harness.catalog import get_test, test_names
from repro.memorymodel.base import get_model

#: Kinds of matrix cells.
CATALOG_KIND = "catalog"
LITMUS_KIND = "litmus"
#: Differential-fuzzing cells: ``test`` is a replayable fuzz program spec
#: (see :mod:`repro.fuzz.generator`) and the verdict is "oracle and SAT
#: encoding agree on the outcome set".
FUZZ_KIND = "fuzz"
#: Engine-parameterized differential cells: like :data:`FUZZ_KIND`, but the
#: ``implementation`` column carries a comma-separated engine selection
#: (``enumerator``/``rfcheck``/``sat``) instead of the constant ``"fuzz"``,
#: so a non-default selection travels to pool workers inside the cell.
ENGINES_KIND = "engines"

#: Valid ``shard_by`` axes.
SHARD_AXES = ("test", "model", "impl")

#: Legacy fault-injection hooks, now folded into the unified
#: ``CHECKFENCE_FAULT`` framework (:mod:`repro.core.faults`): a
#: comma-separated list of cell keys that makes a worker holding one of
#: them hard-exit (CRASH_ENV) or the parent raise KeyboardInterrupt the
#: moment the cell's result is recorded (INTERRUPT_ENV).
CRASH_ENV = faults.LEGACY_CRASH_ENV
INTERRUPT_ENV = faults.LEGACY_INTERRUPT_ENV

#: Extra attempts granted to the unfinished cells of a crashed or hung
#: worker before they are quarantined as ``CRASHED`` (so the total
#: attempt cap is retries + 1).
RETRIES_ENV = "CHECKFENCE_MATRIX_RETRIES"
#: Seconds slept (scaled by the attempt number) before re-queuing a
#: crashed worker's shard.
BACKOFF_ENV = "CHECKFENCE_MATRIX_BACKOFF"
#: Parent-side hung-worker watchdog: a worker with an in-flight shard
#: that has produced no message for this many seconds is killed and its
#: shard re-queued like a crash.  Unset/empty disables the watchdog.
WORKER_TIMEOUT_ENV = "CHECKFENCE_MATRIX_WORKER_TIMEOUT"


def matrix_retries() -> int:
    value = os.environ.get(RETRIES_ENV, "").strip()
    if not value:
        return 2
    try:
        return max(0, int(value))
    except ValueError as exc:
        raise ValueError(
            f"{RETRIES_ENV} must be an integer, got {value!r}"
        ) from exc


def matrix_backoff() -> float:
    value = os.environ.get(BACKOFF_ENV, "").strip()
    if not value:
        return 0.05
    try:
        return max(0.0, float(value))
    except ValueError as exc:
        raise ValueError(
            f"{BACKOFF_ENV} must be a number, got {value!r}"
        ) from exc


def matrix_worker_timeout() -> float | None:
    value = os.environ.get(WORKER_TIMEOUT_ENV, "").strip()
    if not value:
        return None
    try:
        parsed = float(value)
    except ValueError as exc:
        raise ValueError(
            f"{WORKER_TIMEOUT_ENV} must be a number, got {value!r}"
        ) from exc
    return parsed if parsed > 0 else None


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given.

    Reads the ``CHECKFENCE_JOBS`` environment variable (so CI can run the
    whole suite through the pool with ``CHECKFENCE_JOBS=2``); defaults to 1
    (the deterministic serial path).
    """
    value = os.environ.get("CHECKFENCE_JOBS", "").strip()
    if not value:
        return 1
    try:
        return max(1, int(value))
    except ValueError as exc:
        raise ValueError(
            f"CHECKFENCE_JOBS must be an integer, got {value!r}"
        ) from exc


# --------------------------------------------------------------------- cells


@dataclass(frozen=True)
class MatrixCell:
    """One independent check: an (implementation, test, model) coordinate.

    ``kind`` selects the pipeline: :data:`CATALOG_KIND` cells run the full
    Fig. 1 check of a data type implementation against a Fig. 8 test;
    :data:`LITMUS_KIND` cells ask whether a litmus observation is reachable
    (``implementation`` is the constant ``"litmus"`` and ``test`` names the
    litmus shape); :data:`FUZZ_KIND` cells differentially compare the
    operational oracle against the SAT encoding on a generated program
    (``implementation`` is ``"fuzz"`` and ``test`` is the replayable spec).
    """

    implementation: str
    test: str
    model: str
    kind: str = CATALOG_KIND

    @property
    def key(self) -> str:
        """Human-readable (and fault-injection) identity of the cell."""
        return f"{self.implementation}/{self.test}@{self.model}"


def catalog_cells(
    implementations,
    models=("relaxed",),
    tests=None,
    size: str = "small",
) -> list[MatrixCell]:
    """Enumerate catalog cells: each implementation x its Fig. 8 tests x
    each memory model.

    ``tests=None`` selects the catalog tests of each implementation's
    category filtered by ``size`` ('small', 'medium', 'large', 'all');
    an explicit test list is used verbatim for every implementation (all
    implementations must then share one category, or :func:`run_matrix`
    reports per-cell errors for the mismatches).
    """
    model_names = [get_model(m).name for m in models]
    cells = []
    for implementation in implementations:
        names = tests
        if names is None:
            names = test_names(category_of(implementation), size)
        for test in names:
            for model in model_names:
                cells.append(MatrixCell(implementation, test, model))
    return cells


def litmus_cells(models) -> list[MatrixCell]:
    """Enumerate litmus cells: each litmus shape with an observation of
    interest x each memory model."""
    from repro.litmus.catalog import available_litmus_tests

    model_names = [get_model(m).name for m in models]
    cells = []
    for name, litmus in available_litmus_tests().items():
        if not litmus.observation:
            continue
        for model in model_names:
            cells.append(MatrixCell("litmus", name, model, kind=LITMUS_KIND))
    return cells


# ------------------------------------------------------------------- results


@dataclass
class CellResult:
    """Outcome of one matrix cell.

    Exactly one of the verdict fields is meaningful: ``passed`` for catalog
    cells, ``allowed`` for litmus cells; both are ``None`` when ``error``
    or ``degraded`` is set.  ``degraded`` carries a first-class
    resource/fault verdict (``TIMEOUT``, ``OOM``, ``CRASHED``) — distinct
    from both FAIL (the check completed and found a bug) and ERROR (the
    harness mis-ran): a degraded cell produced *no* verdict and must never
    be conflated with either.  ``result`` carries the full
    :class:`CheckResult` for catalog cells; workers blank its
    ``specification`` before queue transport (the mined observation set is
    the heavy part and would be pickled once per model otherwise — on the
    serial path it survives intact, which ``model_sweep`` relies on).
    ``stats`` is a JSON-safe subset for reporting.
    """

    cell: MatrixCell
    passed: bool | None = None
    allowed: bool | None = None
    seconds: float = 0.0
    worker: int = -1
    error: str = ""
    degraded: str = ""
    counterexample: str = ""
    notes: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    result: CheckResult | None = None

    @property
    def verdict(self) -> str:
        if self.degraded:
            return self.degraded
        if self.error:
            return "ERROR"
        if self.cell.kind == LITMUS_KIND:
            return "allowed" if self.allowed else "forbidden"
        if self.cell.kind in (FUZZ_KIND, ENGINES_KIND):
            if self.notes:
                return "INCONCLUSIVE"
            return "agree" if self.passed else "DIVERGE"
        return "PASS" if self.passed else "FAIL"

    @property
    def ok(self) -> bool:
        """True unless the cell errored, degraded (TIMEOUT/OOM/CRASHED),
        a catalog check failed, or a fuzz cell found an oracle/SAT
        divergence."""
        if self.error or self.degraded:
            return False
        if self.cell.kind == LITMUS_KIND:
            return True
        return bool(self.passed)

    def as_dict(self) -> dict:
        """JSON-safe summary (drops the full ``result`` object)."""
        return {
            "implementation": self.cell.implementation,
            "test": self.cell.test,
            "model": self.cell.model,
            "kind": self.cell.kind,
            "verdict": self.verdict,
            "seconds": self.seconds,
            "worker": self.worker,
            "error": self.error,
            "degraded": self.degraded,
            "counterexample": self.counterexample,
            "notes": list(self.notes),
            "stats": dict(self.stats),
        }


@dataclass
class MatrixResult:
    """Merged outcome of one matrix run, in original cell order."""

    results: list[CellResult]
    jobs: int
    shard_by: str
    shard_count: int
    elapsed_seconds: float
    shard_stats: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def errors(self) -> list[CellResult]:
        return [r for r in self.results if r.error and not r.degraded]

    @property
    def degraded(self) -> list[CellResult]:
        """Cells that hit a resource budget or exhausted their crash
        retries (verdicts TIMEOUT / OOM / CRASHED)."""
        return [r for r in self.results if r.degraded]

    @property
    def resumed(self) -> list[CellResult]:
        """Cells restored from a journal instead of re-run."""
        return [r for r in self.results if r.stats.get("resumed")]

    def cache_totals(self) -> dict:
        """Aggregate CheckSession cache counters over all shards (how often
        each stage ran vs was reused)."""
        totals: dict[str, int] = {}
        for stats in self.shard_stats:
            for key, value in stats.get("cache", {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def verdict_counts(self) -> dict[str, int]:
        """How many cells landed on each verdict.  INCONCLUSIVE cells are
        their own bucket — they compared nothing and must never read as
        silent agreement in aggregate reporting; likewise the degraded
        verdicts (TIMEOUT/OOM/CRASHED) never fold into PASS or FAIL."""
        counts: dict[str, int] = {}
        for result in self.results:
            verdict = result.verdict
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "shard_by": self.shard_by,
            "shards": self.shard_count,
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
            "verdicts": self.verdict_counts(),
            "cache": self.cache_totals(),
            "cells": [r.as_dict() for r in self.results],
            "shard_stats": list(self.shard_stats),
        }

    def format_table(self) -> str:
        from repro.harness.reporting import format_seconds, format_table

        rows = []
        for r in self.results:
            rows.append((
                r.cell.implementation,
                r.cell.test,
                r.cell.model,
                r.verdict,
                r.stats.get("backend", ""),
                format_seconds(r.seconds),
            ))
        return format_table(
            ["implementation", "test", "model", "verdict", "backend", "time"],
            rows,
        )

    def summary(self) -> str:
        cache = self.cache_totals()
        reused = cache.get("compile_hits", 0) + cache.get("mine_hits", 0)
        line = (
            f"{len(self.results)} cells in {self.shard_count} shards "
            f"(shard-by {self.shard_by}), jobs={self.jobs}, "
            f"{self.elapsed_seconds:.2f}s elapsed; "
            f"compiled {cache.get('compile', 0)}x, "
            f"spec mined {cache.get('mine', 0)}x, "
            f"{reused} cache hits"
        )
        resumed = len(self.resumed)
        if resumed:
            line += f"; {resumed} resumed from journal"
        degraded = self.degraded
        if degraded:
            counts = {}
            for result in degraded:
                counts[result.degraded] = counts.get(result.degraded, 0) + 1
            line += "; " + ", ".join(
                f"{count} {verdict}" for verdict, count in sorted(counts.items())
            )
        if self.errors:
            line += f"; {len(self.errors)} ERRORS"
        return line


# ------------------------------------------------------------------ sharding


@dataclass
class _Shard:
    """A batch of cells that share cacheable work, plus their original
    positions (so merged results keep the caller's cell order).
    ``attempt`` counts executions of this shard (1 = first run); the
    crash-retry path re-queues a replacement shard with ``attempt + 1``
    holding only the unfinished cells."""

    index: int
    key: tuple
    cells: list[tuple[int, MatrixCell]]
    attempt: int = 1


def _shard_key(cell: MatrixCell, shard_by: str) -> tuple:
    if shard_by == "test":
        # The compiled-test key: one CheckSession compiles (impl, test)
        # once and mines its specification once for all models.
        return (cell.kind, cell.implementation, cell.test)
    if shard_by == "impl":
        return (cell.kind, cell.implementation)
    if shard_by == "model":
        return (cell.kind, cell.model)
    raise ValueError(
        f"unknown shard_by {shard_by!r} (expected one of {SHARD_AXES})"
    )


def shard_cells(cells, shard_by: str = "test") -> list[_Shard]:
    """Group cells into shards of reusable work, preserving first-seen
    order of both shards and cells."""
    grouped: dict[tuple, list[tuple[int, MatrixCell]]] = {}
    for position, cell in enumerate(cells):
        grouped.setdefault(_shard_key(cell, shard_by), []).append(
            (position, cell)
        )
    return [
        _Shard(index=index, key=key, cells=members)
        for index, (key, members) in enumerate(grouped.items())
    ]


# ------------------------------------------------------------ cell execution


def _run_cell(cell: MatrixCell, sessions: dict, options) -> CellResult:
    """Check one cell, reusing a warm session when one exists.

    Never raises: failures (unknown names, backend errors, ...) become
    ``error`` results and resource-budget breaches become ``degraded``
    results, so one bad cell cannot take down a shard.  The cell runs
    under its own deadline scope built from the options (plus the
    ``cell-timeout`` fault injection), which nested layers — the session,
    the solver backends, the oracle loops — poll.
    """
    started = time.perf_counter()
    deadline = limits.deadline_from_options(options)
    if cell.key in faults.timeout_cells():
        # Injected expiry: the cell sees an already-expired deadline, so
        # the TIMEOUT path runs without waiting for real wall-clock.
        deadline = limits.Deadline(timeout_seconds=0.0)
    try:
        with limits.deadline_scope(deadline):
            # An already-expired budget (tiny --timeout, injected
            # cell-timeout fault) fails fast instead of waiting for the
            # first in-loop poll, which a small cell may never reach.
            limits.check_deadline()
            return _run_cell_inner(cell, sessions, options, started)
    except limits.LimitExceeded as exc:
        return CellResult(
            cell=cell,
            seconds=time.perf_counter() - started,
            degraded=exc.kind,
            notes=[str(exc)],
        )
    except Exception as exc:
        detail = traceback.format_exc(limit=3)
        return CellResult(
            cell=cell,
            seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}\n{detail}",
        )


def _run_cell_inner(
    cell: MatrixCell, sessions: dict, options, started: float
) -> CellResult:
    if cell.kind in (FUZZ_KIND, ENGINES_KIND):
        from repro.fuzz.harness import run_fuzz_cell

        return run_fuzz_cell(cell, options)
    if cell.kind == LITMUS_KIND:
        from repro.litmus.catalog import (
            available_litmus_tests,
            observation_outcome,
        )

        litmus = available_litmus_tests()[cell.test]
        outcome = observation_outcome(
            litmus, cell.model, backend_spec=options.solver_backend,
            dense_order=getattr(options, "dense_order", None),
            simplify=getattr(options, "simplify", None),
        )
        return CellResult(
            cell=cell,
            allowed=outcome.allowed,
            seconds=time.perf_counter() - started,
            stats={"backend": outcome.backend, "order": outcome.order},
        )
    session = sessions.get(cell.implementation)
    if session is None:
        session = CheckSession(
            get_implementation(cell.implementation), options
        )
        sessions[cell.implementation] = session
    test = get_test(category_of(cell.implementation), cell.test)
    result = session.check(test, cell.model)
    if result.degraded:
        # The session already folded the budget breach into a degraded
        # CheckResult (and skipped the store); surface it as a
        # first-class cell verdict.
        return CellResult(
            cell=cell,
            seconds=time.perf_counter() - started,
            degraded=result.degraded,
            notes=list(result.notes),
            stats={"backend": result.stats.solver_backend,
                   **result.stats.phase_dict()},
        )
    return CellResult(
        cell=cell,
        passed=result.passed,
        seconds=time.perf_counter() - started,
        counterexample=(
            result.counterexample.format()
            if result.counterexample is not None
            else ""
        ),
        notes=list(result.notes),
        stats={
            "backend": result.stats.solver_backend,
            "cnf_clauses": result.stats.cnf_clauses,
            "cnf_variables": result.stats.cnf_variables,
            "observation_set_size": result.stats.observation_set_size,
            "solver_decisions": result.stats.solver_decisions,
            "solver_conflicts": result.stats.solver_conflicts,
            # Per-phase wall-clock breakdown (compile / mine / encode
            # split into skeleton+layer / simplify / solve), plus the
            # persistent-store hit marker.
            **result.stats.phase_dict(),
        },
        result=result,
    )


def _cache_snapshot(sessions: dict) -> dict:
    return {name: dict(s.cache_stats) for name, s in sessions.items()}


def _cache_delta(sessions: dict, before: dict) -> dict:
    """How often each cacheable stage ran during one shard."""
    delta: dict[str, int] = {}
    for name, session in sessions.items():
        baseline = before.get(name, {})
        for key, value in session.cache_stats.items():
            delta[key] = delta.get(key, 0) + value - baseline.get(key, 0)
    return delta


def _run_shard(shard: _Shard, sessions: dict, options, emit) -> dict:
    """Run every cell of a shard, calling ``emit(position, result)`` as
    each finishes; returns the shard's cache-usage statistics."""
    before = _cache_snapshot(sessions)
    for position, cell in shard.cells:
        emit(position, _run_cell(cell, sessions, options))
    return {
        "shard": shard.index,
        "key": "/".join(str(part) for part in shard.key),
        "cells": len(shard.cells),
        "attempt": shard.attempt,
        "cache": _cache_delta(sessions, before),
    }


# -------------------------------------------------------------- journaling


JOURNAL_VERSION = 1

#: Journal verdicts that count as *finished*: a resumed run restores them
#: instead of re-running.  ERROR and the degraded verdicts (CRASHED,
#: TIMEOUT, OOM) are deliberately not final — the whole point of resuming
#: is to give them another go, and a budget is a property of one run, not
#: of the cell.
_FINAL_VERDICTS_EXCLUDED = ("ERROR",) + tuple(limits.DEGRADED_VERDICTS)


class JournalError(ValueError):
    """A journal file does not match the requested matrix run."""


def _journal_fingerprint(cells) -> str:
    payload = json.dumps(
        [[c.implementation, c.test, c.model, c.kind] for c in cells],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _journal_entry(position: int, result: CellResult) -> dict:
    return {
        "position": position,
        "key": result.cell.key,
        "kind": result.cell.kind,
        "verdict": result.verdict,
        "passed": result.passed,
        "allowed": result.allowed,
        "degraded": result.degraded,
        "error": result.error,
        "seconds": result.seconds,
        "counterexample": result.counterexample,
        "notes": list(result.notes),
        "stats": dict(result.stats),
    }


def _result_from_journal(cell: MatrixCell, entry: dict) -> CellResult:
    stats = dict(entry.get("stats", {}))
    stats["resumed"] = True
    return CellResult(
        cell=cell,
        passed=entry.get("passed"),
        allowed=entry.get("allowed"),
        seconds=entry.get("seconds", 0.0),
        error=entry.get("error", ""),
        degraded=entry.get("degraded", ""),
        counterexample=entry.get("counterexample", ""),
        notes=list(entry.get("notes", [])),
        stats=stats,
    )


def _load_journal(path: str, fingerprint: str, cells) -> dict[int, CellResult]:
    """Parse a journal, returning the finished cells by position.

    The header's cell-set fingerprint must match the requested run — a
    journal from a different matrix silently "finishing" the wrong cells
    would be much worse than an error.  A torn final line (the writer
    died mid-write) is ignored.
    """
    finished: dict[int, CellResult] = {}
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line.strip():
            return finished
        try:
            header = json.loads(header_line)
        except ValueError as exc:
            raise JournalError(
                f"{path}: not a matrix journal (unparseable header)"
            ) from exc
        if header.get("journal") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: unsupported journal version "
                f"{header.get('journal')!r}"
            )
        if header.get("fingerprint") != fingerprint:
            raise JournalError(
                f"{path}: journal was written for a different cell set "
                f"(fingerprint {header.get('fingerprint')!r}, this run "
                f"is {fingerprint!r}); use a fresh --journal file"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail line from a dead writer
            position = entry.get("position")
            if not isinstance(position, int) or not (
                0 <= position < len(cells)
            ):
                continue
            cell = cells[position]
            if entry.get("key") != cell.key:
                raise JournalError(
                    f"{path}: entry for position {position} names "
                    f"{entry.get('key')!r}, expected {cell.key!r}"
                )
            if entry.get("verdict") in _FINAL_VERDICTS_EXCLUDED:
                finished.pop(position, None)
                continue
            # Last entry for a position wins (a resumed run may append a
            # fresh verdict for a cell an earlier run left as ERROR).
            finished[position] = _result_from_journal(cell, entry)
    return finished


# ------------------------------------------------------------- orchestrator


def _worker_main(worker_id, task_queue, result_queue, options) -> None:
    """Worker process: pull shards until the ``None`` sentinel.

    Sessions stay warm across shards, so a worker that processes several
    shards of one implementation compiles its C source once.  Messages:
    ``("start", worker, shard)`` before a shard (so the parent knows what
    was in flight if this process dies), ``("cell", worker, shard,
    position, result)`` per cell, ``("shard", worker, stats)`` after, and
    ``("done", worker)`` on clean exit.
    """
    sessions: dict = {}
    crash_attempts = faults.crash_attempts()
    hang_attempts = faults.hang_attempts()
    while True:
        shard = task_queue.get()
        if shard is None:
            result_queue.put(("done", worker_id))
            return
        result_queue.put(("start", worker_id, shard.index))
        if crash_attempts and any(
            shard.attempt <= crash_attempts.get(cell.key, 0)
            for _, cell in shard.cells
        ):
            # Fault injection for the worker-crash tests: die mid-shard
            # without cleanup, like a segfaulting or OOM-killed solver
            # would.  Flush the queue first so the "start" message is on
            # the wire (a crash during the solve, not during the put); a
            # crash that loses even that is covered by the stall detection
            # in run_matrix.  Attempt-bounded injections crash the first
            # n attempts and let the retry succeed, which is how the chaos
            # tests prove retried cells are verdict-identical.
            result_queue.close()
            result_queue.join_thread()
            os._exit(3)
        if hang_attempts and any(
            shard.attempt <= hang_attempts.get(cell.key, 0)
            for _, cell in shard.cells
        ):
            # Fault injection for the hung-worker paths: ignore SIGTERM
            # (so only the parent's kill() escalation can reap us) and
            # sleep forever instead of checking the shard.
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(3600)

        def emit(position, result, _wid=worker_id, _shard=shard.index):
            result.worker = _wid
            if result.result is not None:
                # Don't pickle the shared observation set once per cell;
                # spec size and counterexample text are already in the
                # JSON-safe fields.
                result.result = replace(result.result, specification=None)
            result_queue.put(("cell", _wid, _shard, position, result))

        stats = _run_shard(shard, sessions, options, emit)
        result_queue.put(("shard", worker_id, stats))


def _mp_context():
    # fork is cheap and inherits the imported package; fall back to spawn
    # where fork is unavailable (it pickles cells/options/results fine).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _stop_worker(process) -> None:
    """Tear one worker down, escalating terminate → kill.

    A worker stuck in a SIGTERM-ignoring state (a hung solver call, a
    signal-masked C extension) used to be joined with a timeout and then
    leaked; the final ``kill()`` + join guarantees the process is reaped.
    """
    if not process.is_alive():
        process.join(timeout=1)
        return
    process.terminate()
    process.join(timeout=2)
    if process.is_alive():
        process.kill()
        process.join(timeout=5)


def run_matrix(
    cells,
    jobs: int | None = None,
    shard_by: str = "test",
    options=None,
    progress=None,
    journal: str | None = None,
    resume: bool = False,
) -> MatrixResult:
    """Run a check matrix, optionally across a multiprocessing pool.

    ``jobs=None`` reads ``CHECKFENCE_JOBS`` (default 1).  ``jobs=1`` is the
    deterministic serial path: shards run in order, in-process, sharing
    warm sessions exactly like one worker would.  ``jobs>1`` starts worker
    processes and streams results back as cells finish.  A crashed or hung
    worker's unfinished cells are re-queued to a replacement worker with
    capped retries (``CHECKFENCE_MATRIX_RETRIES``) and quarantined as
    ``CRASHED`` verdicts when the cap is exhausted — the run always
    completes.  ``progress`` (if given) is called as
    ``progress(done, total, cell_result)`` from the parent process, in
    completion order.

    ``journal`` names a JSONL file that receives one line per completed
    cell (plus a header identifying the cell set); with ``resume=True``
    the journal is read first and every finished cell is restored
    verdict-identically instead of re-run, so a campaign that died at cell
    2400 of 2500 reruns only the missing hundred.

    The returned :class:`MatrixResult` lists cell results in the original
    order of ``cells``, so a parallel run is directly comparable to a
    serial one.
    """
    from repro.core.checker import CheckOptions

    cells = list(cells)
    if jobs is None:
        jobs = default_jobs()
    options = options if options is not None else CheckOptions()
    started = time.perf_counter()
    results: dict[int, CellResult] = {}
    shard_stats: list[dict] = []
    total = len(cells)

    interrupt_keys = faults.interrupt_cells()

    # ---- journal / resume
    fingerprint = _journal_fingerprint(cells)
    resumed_results: dict[int, CellResult] = {}
    if journal and resume and os.path.exists(journal):
        resumed_results = _load_journal(journal, fingerprint, cells)
    journal_handle = None
    if journal:
        fresh = not (resume and os.path.exists(journal))
        journal_handle = open(
            journal, "w" if fresh else "a", encoding="utf-8"
        )
        if fresh:
            journal_handle.write(json.dumps({
                "journal": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "cells": total,
            }) + "\n")
            journal_handle.flush()

    def record(position: int, result: CellResult) -> None:
        results[position] = result
        if journal_handle is not None and not result.stats.get("resumed"):
            journal_handle.write(
                json.dumps(_journal_entry(position, result)) + "\n"
            )
            journal_handle.flush()
        if progress is not None:
            progress(len(results), total, result)
        if interrupt_keys and result.cell.key in interrupt_keys:
            # Fault injection: behave exactly as if Ctrl-C arrived the
            # moment this cell's result was recorded.
            raise KeyboardInterrupt

    def finish(jobs_used: int, shard_count: int) -> MatrixResult:
        return MatrixResult(
            results=[results[i] for i in range(total)],
            jobs=jobs_used,
            shard_by=shard_by,
            shard_count=shard_count,
            elapsed_seconds=time.perf_counter() - started,
            shard_stats=shard_stats,
        )

    try:
        for position in sorted(resumed_results):
            record(position, resumed_results[position])

        shards = shard_cells(cells, shard_by)
        if resumed_results:
            shards = [
                replace(shard, cells=members)
                for shard in shards
                if (members := [
                    (p, c) for p, c in shard.cells if p not in resumed_results
                ])
            ]
        remaining = total - len(resumed_results)

        if jobs <= 1 or len(shards) <= 1 or remaining <= 1:
            sessions: dict = {}
            for shard in shards:
                shard_stats.append(
                    _run_shard(shard, sessions, options, record)
                )
            return finish(1, len(shards))

        return _run_matrix_pool(
            shards, jobs, options, record, finish, shard_stats
        )
    finally:
        if journal_handle is not None:
            journal_handle.close()


def _run_matrix_pool(
    shards, jobs, options, record, finish, shard_stats
) -> MatrixResult:
    """The multiprocess orchestrator: dispatch shards, stream results,
    retry crashed/hung workers' shards, quarantine after the attempt cap,
    and always reap every worker on the way out."""
    jobs = min(jobs, len(shards))
    max_attempts = 1 + matrix_retries()
    backoff = matrix_backoff()
    worker_timeout = matrix_worker_timeout()
    ctx = _mp_context()
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    for shard in shards:
        task_queue.put(shard)
    # No shutdown sentinels yet: a retried shard must never queue behind
    # them, so they are sent only once every cell is accounted for.

    workers: dict[int, object] = {}
    last_heard: dict[int, float] = {}
    next_worker_id = 0
    spawned = 0
    # Bound respawns: each crash with an in-flight shard consumes one of
    # that shard's attempts, so this cap is unreachable in sane runs and
    # only guards against a pathological crash-on-startup loop.
    max_spawns = jobs + len(shards) * max_attempts

    def spawn_worker() -> bool:
        nonlocal next_worker_id, spawned
        if spawned >= max_spawns:
            return False
        worker_id = next_worker_id
        next_worker_id += 1
        spawned += 1
        process = ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, options),
            daemon=True,
        )
        process.start()
        workers[worker_id] = process
        last_heard[worker_id] = time.monotonic()
        return True

    #: positions of each shard's cells not yet reported back.
    pending: dict[int, set[int]] = {
        shard.index: {position for position, _ in shard.cells}
        for shard in shards
    }
    shards_by_index = {shard.index: shard for shard in shards}
    in_flight: dict[int, int] = {}   # worker id -> shard index
    finished_workers: set[int] = set()
    crashed_workers: dict[int, object] = {}
    stalled_since: float | None = None

    def live_worker_ids() -> list[int]:
        return [
            worker_id for worker_id in workers
            if worker_id not in finished_workers
            and worker_id not in crashed_workers
        ]

    def handle(message) -> None:
        kind = message[0]
        worker_id = message[1]
        last_heard[worker_id] = time.monotonic()
        if kind == "start":
            _, _, shard_index = message
            if worker_id in crashed_workers:
                # The worker's death was detected before this (flushed
                # but not yet drained) message arrived.  Recording it
                # into in_flight would orphan the shard forever — the
                # death check skips already-crashed workers — so route
                # it straight to the retry path instead.
                retry_or_quarantine(
                    shard_index,
                    f"worker {worker_id} crashed (exit code "
                    f"{crashed_workers[worker_id]})",
                )
            else:
                in_flight[worker_id] = shard_index
        elif kind == "cell":
            _, _, shard_index, position, result = message
            record(position, result)
            remaining = pending.get(shard_index)
            if remaining is not None:
                remaining.discard(position)
                if not remaining:
                    pending.pop(shard_index, None)
                    in_flight.pop(worker_id, None)
        elif kind == "shard":
            _, _, stats = message
            shard_stats.append(stats)
        elif kind == "done":
            finished_workers.add(worker_id)
            in_flight.pop(worker_id, None)

    def drain() -> None:
        while True:
            try:
                handle(result_queue.get_nowait())
            except queue_module.Empty:
                return

    def quarantine(shard_index: int, reason: str) -> None:
        remaining = pending.pop(shard_index, None)
        if not remaining:
            return
        shard = shards_by_index[shard_index]
        for position, cell in shard.cells:
            if position in remaining:
                record(position, CellResult(
                    cell=cell,
                    degraded=limits.CRASHED,
                    error=reason,
                    notes=[reason],
                ))

    def retry_or_quarantine(shard_index: int, reason: str) -> None:
        remaining = pending.get(shard_index)
        if not remaining:
            pending.pop(shard_index, None)
            return
        shard = shards_by_index[shard_index]
        if shard.attempt >= max_attempts:
            quarantine(
                shard_index,
                f"{reason}; giving up after {shard.attempt} attempts",
            )
            return
        retry = _Shard(
            index=shard.index,
            key=shard.key,
            cells=[(p, c) for p, c in shard.cells if p in remaining],
            attempt=shard.attempt + 1,
        )
        shards_by_index[shard_index] = retry
        if backoff > 0:
            time.sleep(backoff * shard.attempt)
        task_queue.put(retry)
        # Replace the lost capacity (and guarantee at least one live
        # worker exists to pick the retry up).
        spawn_worker()

    try:
        for _ in range(jobs):
            spawn_worker()
        while pending:
            try:
                handle(result_queue.get(timeout=0.2))
                stalled_since = None
                continue
            except queue_module.Empty:
                pass
            drain()
            # Workers that died without saying goodbye.
            for worker_id, worker in list(workers.items()):
                if (
                    worker.is_alive()
                    or worker_id in finished_workers
                    or worker_id in crashed_workers
                ):
                    continue
                crashed_workers[worker_id] = worker.exitcode
                shard_index = in_flight.pop(worker_id, None)
                if shard_index is not None:
                    retry_or_quarantine(
                        shard_index,
                        f"worker {worker_id} crashed "
                        f"(exit code {worker.exitcode})",
                    )
            # Hung workers: an in-flight shard with no message for too
            # long.  Kill (terminate is not enough for a SIGTERM-ignoring
            # worker) and treat like a crash.
            if worker_timeout is not None:
                now = time.monotonic()
                for worker_id in list(in_flight):
                    if (
                        worker_id in finished_workers
                        or worker_id in crashed_workers
                    ):
                        continue
                    if now - last_heard.get(worker_id, now) <= worker_timeout:
                        continue
                    worker = workers[worker_id]
                    _stop_worker(worker)
                    crashed_workers[worker_id] = "hung"
                    shard_index = in_flight.pop(worker_id)
                    retry_or_quarantine(
                        shard_index,
                        f"worker {worker_id} hung (no progress for "
                        f"{worker_timeout:g}s)",
                    )
            if pending and not live_worker_ids():
                # Every worker is gone (e.g. crashes with no in-flight
                # shard consumed no retry): bring capacity back, or give
                # the remaining shards up if the spawn budget is gone.
                if not spawn_worker():
                    drain()
                    for shard_index in list(pending):
                        quarantine(
                            shard_index,
                            "no live workers left and respawn budget "
                            "exhausted",
                        )
                    task_queue.cancel_join_thread()
                    break
            # Stall detection: live workers, nothing in flight, nothing
            # arriving, but cells still pending — a shard was lost with
            # its "start" message (a crash can lose the queue tail).
            if pending and not in_flight and task_queue.empty():
                now = time.monotonic()
                if stalled_since is None:
                    stalled_since = now
                elif now - stalled_since > 5.0:
                    drain()
                    if pending and not in_flight and task_queue.empty():
                        for shard_index in list(pending):
                            quarantine(
                                shard_index,
                                "shard lost in transit (worker crashed "
                                "before reporting it)",
                            )
                    stalled_since = None
            else:
                stalled_since = None

        for worker_id in live_worker_ids():
            task_queue.put(None)
        for worker in workers.values():
            worker.join(timeout=5)
            if worker.is_alive():
                _stop_worker(worker)
        drain()  # trailing "shard"/"done" messages sent after the last cell
    except KeyboardInterrupt:
        # Ctrl-C (or the interrupt fault injection): tear the pool down
        # instead of leaving orphaned workers grinding on solver calls,
        # then re-raise so the caller (the CLI maps it to exit code 130)
        # still sees the interrupt.  _stop_worker escalates terminate →
        # kill, so even a SIGTERM-ignoring worker is reaped.
        for worker in workers.values():
            _stop_worker(worker)
        task_queue.cancel_join_thread()
        result_queue.cancel_join_thread()
        raise

    return finish(jobs, len(shards))
