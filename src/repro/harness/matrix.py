"""Parallel check matrix: multiprocess sharding across (test x model x impl).

CheckFence's workload is embarrassingly parallel: every (bounded test,
memory model, implementation) cell is an independent SAT instance, and the
paper's experiments (Fig. 8 catalog runs, Table 1, the Fig. 2 litmus matrix)
are exactly such matrices.  This module enumerates the cells, groups them
into *shards*, and runs the shards either serially or across a
``multiprocessing`` worker pool:

* a :class:`MatrixCell` names one check — a catalog cell
  (implementation, Fig. 8 test, memory model) or a litmus cell
  (litmus test, memory model);
* :func:`shard_cells` batches cells so that work is reused *inside* a
  shard: the default ``shard_by="test"`` groups by compiled-test key
  (implementation, test), so one :class:`~repro.core.session.CheckSession`
  compiles the test and mines its specification once and then sweeps the
  models;
* :func:`run_matrix` is the orchestrator.  With ``jobs=1`` it runs the
  shards in order in-process (the deterministic serial path).  With
  ``jobs>1`` it starts worker processes that pull shards from a task
  queue — each worker keeps warm ``CheckSession`` objects per
  implementation — and streams :class:`CellResult` messages back through a
  result queue, so progress is reported as cells finish and a crashed
  worker is detected (its in-flight cells are reported as errors instead
  of hanging the run).  Results are merged back into the original cell
  order, so serial and parallel runs produce the same sequence of
  verdicts.

The CLI surface is ``checkfence matrix`` (``--jobs``, ``--shard-by``,
``--solver``, ``--json``); ``checkfence litmus`` and
:func:`repro.harness.runner.model_sweep` are built on top of this module.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field, replace

from repro.core.results import CheckResult
from repro.core.session import CheckSession
from repro.datatypes.registry import category_of, get_implementation
from repro.harness.catalog import get_test, test_names
from repro.memorymodel.base import get_model

#: Kinds of matrix cells.
CATALOG_KIND = "catalog"
LITMUS_KIND = "litmus"
#: Differential-fuzzing cells: ``test`` is a replayable fuzz program spec
#: (see :mod:`repro.fuzz.generator`) and the verdict is "oracle and SAT
#: encoding agree on the outcome set".
FUZZ_KIND = "fuzz"
#: Engine-parameterized differential cells: like :data:`FUZZ_KIND`, but the
#: ``implementation`` column carries a comma-separated engine selection
#: (``enumerator``/``rfcheck``/``sat``) instead of the constant ``"fuzz"``,
#: so a non-default selection travels to pool workers inside the cell.
ENGINES_KIND = "engines"

#: Valid ``shard_by`` axes.
SHARD_AXES = ("test", "model", "impl")

#: Private fault-injection hook: a comma-separated list of cell keys
#: (:attr:`MatrixCell.key`); a worker handed a shard containing one of
#: them hard-exits instead of checking it.  Used by the test suite to
#: exercise the worker-crash reporting paths; harmless otherwise.
CRASH_ENV = "CHECKFENCE_MATRIX_CRASH"

#: Private fault-injection hook for the Ctrl-C paths: a comma-separated
#: list of cell keys; the *parent* raises :class:`KeyboardInterrupt` the
#: moment a matching cell's result is recorded, exactly as if the user hit
#: Ctrl-C then.  Lets the test suite exercise pool teardown and the CLI's
#: exit-code-130 path deterministically.
INTERRUPT_ENV = "CHECKFENCE_MATRIX_INTERRUPT"


def _crash_keys() -> set[str]:
    return {
        key for key in os.environ.get(CRASH_ENV, "").split(",") if key
    }


def _interrupt_keys() -> set[str]:
    return {
        key for key in os.environ.get(INTERRUPT_ENV, "").split(",") if key
    }


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given.

    Reads the ``CHECKFENCE_JOBS`` environment variable (so CI can run the
    whole suite through the pool with ``CHECKFENCE_JOBS=2``); defaults to 1
    (the deterministic serial path).
    """
    value = os.environ.get("CHECKFENCE_JOBS", "").strip()
    if not value:
        return 1
    try:
        return max(1, int(value))
    except ValueError as exc:
        raise ValueError(
            f"CHECKFENCE_JOBS must be an integer, got {value!r}"
        ) from exc


# --------------------------------------------------------------------- cells


@dataclass(frozen=True)
class MatrixCell:
    """One independent check: an (implementation, test, model) coordinate.

    ``kind`` selects the pipeline: :data:`CATALOG_KIND` cells run the full
    Fig. 1 check of a data type implementation against a Fig. 8 test;
    :data:`LITMUS_KIND` cells ask whether a litmus observation is reachable
    (``implementation`` is the constant ``"litmus"`` and ``test`` names the
    litmus shape); :data:`FUZZ_KIND` cells differentially compare the
    operational oracle against the SAT encoding on a generated program
    (``implementation`` is ``"fuzz"`` and ``test`` is the replayable spec).
    """

    implementation: str
    test: str
    model: str
    kind: str = CATALOG_KIND

    @property
    def key(self) -> str:
        """Human-readable (and crash-hook) identity of the cell."""
        return f"{self.implementation}/{self.test}@{self.model}"


def catalog_cells(
    implementations,
    models=("relaxed",),
    tests=None,
    size: str = "small",
) -> list[MatrixCell]:
    """Enumerate catalog cells: each implementation x its Fig. 8 tests x
    each memory model.

    ``tests=None`` selects the catalog tests of each implementation's
    category filtered by ``size`` ('small', 'medium', 'large', 'all');
    an explicit test list is used verbatim for every implementation (all
    implementations must then share one category, or :func:`run_matrix`
    reports per-cell errors for the mismatches).
    """
    model_names = [get_model(m).name for m in models]
    cells = []
    for implementation in implementations:
        names = tests
        if names is None:
            names = test_names(category_of(implementation), size)
        for test in names:
            for model in model_names:
                cells.append(MatrixCell(implementation, test, model))
    return cells


def litmus_cells(models) -> list[MatrixCell]:
    """Enumerate litmus cells: each litmus shape with an observation of
    interest x each memory model."""
    from repro.litmus.catalog import available_litmus_tests

    model_names = [get_model(m).name for m in models]
    cells = []
    for name, litmus in available_litmus_tests().items():
        if not litmus.observation:
            continue
        for model in model_names:
            cells.append(MatrixCell("litmus", name, model, kind=LITMUS_KIND))
    return cells


# ------------------------------------------------------------------- results


@dataclass
class CellResult:
    """Outcome of one matrix cell.

    Exactly one of the verdict fields is meaningful: ``passed`` for catalog
    cells, ``allowed`` for litmus cells; both are ``None`` when ``error``
    is set.  ``result`` carries the full :class:`CheckResult` for catalog
    cells; workers blank its ``specification`` before queue transport (the
    mined observation set is the heavy part and would be pickled once per
    model otherwise — on the serial path it survives intact, which
    ``model_sweep`` relies on).  ``stats`` is a JSON-safe subset for
    reporting.
    """

    cell: MatrixCell
    passed: bool | None = None
    allowed: bool | None = None
    seconds: float = 0.0
    worker: int = -1
    error: str = ""
    counterexample: str = ""
    notes: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    result: CheckResult | None = None

    @property
    def verdict(self) -> str:
        if self.error:
            return "ERROR"
        if self.cell.kind == LITMUS_KIND:
            return "allowed" if self.allowed else "forbidden"
        if self.cell.kind in (FUZZ_KIND, ENGINES_KIND):
            if self.notes:
                return "INCONCLUSIVE"
            return "agree" if self.passed else "DIVERGE"
        return "PASS" if self.passed else "FAIL"

    @property
    def ok(self) -> bool:
        """True unless the cell errored, a catalog check failed, or a fuzz
        cell found an oracle/SAT divergence."""
        if self.error:
            return False
        if self.cell.kind == LITMUS_KIND:
            return True
        return bool(self.passed)

    def as_dict(self) -> dict:
        """JSON-safe summary (drops the full ``result`` object)."""
        return {
            "implementation": self.cell.implementation,
            "test": self.cell.test,
            "model": self.cell.model,
            "kind": self.cell.kind,
            "verdict": self.verdict,
            "seconds": self.seconds,
            "worker": self.worker,
            "error": self.error,
            "counterexample": self.counterexample,
            "notes": list(self.notes),
            "stats": dict(self.stats),
        }


@dataclass
class MatrixResult:
    """Merged outcome of one matrix run, in original cell order."""

    results: list[CellResult]
    jobs: int
    shard_by: str
    shard_count: int
    elapsed_seconds: float
    shard_stats: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def errors(self) -> list[CellResult]:
        return [r for r in self.results if r.error]

    def cache_totals(self) -> dict:
        """Aggregate CheckSession cache counters over all shards (how often
        each stage ran vs was reused)."""
        totals: dict[str, int] = {}
        for stats in self.shard_stats:
            for key, value in stats.get("cache", {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def verdict_counts(self) -> dict[str, int]:
        """How many cells landed on each verdict.  INCONCLUSIVE cells are
        their own bucket — they compared nothing and must never read as
        silent agreement in aggregate reporting."""
        counts: dict[str, int] = {}
        for result in self.results:
            verdict = result.verdict
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "shard_by": self.shard_by,
            "shards": self.shard_count,
            "elapsed_seconds": self.elapsed_seconds,
            "ok": self.ok,
            "verdicts": self.verdict_counts(),
            "cache": self.cache_totals(),
            "cells": [r.as_dict() for r in self.results],
            "shard_stats": list(self.shard_stats),
        }

    def format_table(self) -> str:
        from repro.harness.reporting import format_seconds, format_table

        rows = []
        for r in self.results:
            rows.append((
                r.cell.implementation,
                r.cell.test,
                r.cell.model,
                r.verdict,
                r.stats.get("backend", ""),
                format_seconds(r.seconds),
            ))
        return format_table(
            ["implementation", "test", "model", "verdict", "backend", "time"],
            rows,
        )

    def summary(self) -> str:
        cache = self.cache_totals()
        reused = cache.get("compile_hits", 0) + cache.get("mine_hits", 0)
        line = (
            f"{len(self.results)} cells in {self.shard_count} shards "
            f"(shard-by {self.shard_by}), jobs={self.jobs}, "
            f"{self.elapsed_seconds:.2f}s elapsed; "
            f"compiled {cache.get('compile', 0)}x, "
            f"spec mined {cache.get('mine', 0)}x, "
            f"{reused} cache hits"
        )
        if self.errors:
            line += f"; {len(self.errors)} ERRORS"
        return line


# ------------------------------------------------------------------ sharding


@dataclass
class _Shard:
    """A batch of cells that share cacheable work, plus their original
    positions (so merged results keep the caller's cell order)."""

    index: int
    key: tuple
    cells: list[tuple[int, MatrixCell]]


def _shard_key(cell: MatrixCell, shard_by: str) -> tuple:
    if shard_by == "test":
        # The compiled-test key: one CheckSession compiles (impl, test)
        # once and mines its specification once for all models.
        return (cell.kind, cell.implementation, cell.test)
    if shard_by == "impl":
        return (cell.kind, cell.implementation)
    if shard_by == "model":
        return (cell.kind, cell.model)
    raise ValueError(
        f"unknown shard_by {shard_by!r} (expected one of {SHARD_AXES})"
    )


def shard_cells(cells, shard_by: str = "test") -> list[_Shard]:
    """Group cells into shards of reusable work, preserving first-seen
    order of both shards and cells."""
    grouped: dict[tuple, list[tuple[int, MatrixCell]]] = {}
    for position, cell in enumerate(cells):
        grouped.setdefault(_shard_key(cell, shard_by), []).append(
            (position, cell)
        )
    return [
        _Shard(index=index, key=key, cells=members)
        for index, (key, members) in enumerate(grouped.items())
    ]


# ------------------------------------------------------------ cell execution


def _run_cell(cell: MatrixCell, sessions: dict, options) -> CellResult:
    """Check one cell, reusing a warm session when one exists.

    Never raises: failures (unknown names, backend errors, ...) become
    ``error`` results so one bad cell cannot take down a shard.
    """
    started = time.perf_counter()
    try:
        if cell.kind in (FUZZ_KIND, ENGINES_KIND):
            from repro.fuzz.harness import run_fuzz_cell

            return run_fuzz_cell(cell, options)
        if cell.kind == LITMUS_KIND:
            from repro.litmus.catalog import (
                available_litmus_tests,
                observation_outcome,
            )

            litmus = available_litmus_tests()[cell.test]
            outcome = observation_outcome(
                litmus, cell.model, backend_spec=options.solver_backend,
                dense_order=getattr(options, "dense_order", None),
                simplify=getattr(options, "simplify", None),
            )
            return CellResult(
                cell=cell,
                allowed=outcome.allowed,
                seconds=time.perf_counter() - started,
                stats={"backend": outcome.backend, "order": outcome.order},
            )
        session = sessions.get(cell.implementation)
        if session is None:
            session = CheckSession(
                get_implementation(cell.implementation), options
            )
            sessions[cell.implementation] = session
        test = get_test(category_of(cell.implementation), cell.test)
        result = session.check(test, cell.model)
        return CellResult(
            cell=cell,
            passed=result.passed,
            seconds=time.perf_counter() - started,
            counterexample=(
                result.counterexample.format()
                if result.counterexample is not None
                else ""
            ),
            notes=list(result.notes),
            stats={
                "backend": result.stats.solver_backend,
                "cnf_clauses": result.stats.cnf_clauses,
                "cnf_variables": result.stats.cnf_variables,
                "observation_set_size": result.stats.observation_set_size,
                "solver_decisions": result.stats.solver_decisions,
                "solver_conflicts": result.stats.solver_conflicts,
                # Per-phase wall-clock breakdown (compile / mine / encode
                # split into skeleton+layer / simplify / solve), plus the
                # persistent-store hit marker.
                **result.stats.phase_dict(),
            },
            result=result,
        )
    except Exception as exc:
        detail = traceback.format_exc(limit=3)
        return CellResult(
            cell=cell,
            seconds=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}\n{detail}",
        )


def _cache_snapshot(sessions: dict) -> dict:
    return {name: dict(s.cache_stats) for name, s in sessions.items()}


def _cache_delta(sessions: dict, before: dict) -> dict:
    """How often each cacheable stage ran during one shard."""
    delta: dict[str, int] = {}
    for name, session in sessions.items():
        baseline = before.get(name, {})
        for key, value in session.cache_stats.items():
            delta[key] = delta.get(key, 0) + value - baseline.get(key, 0)
    return delta


def _run_shard(shard: _Shard, sessions: dict, options, emit) -> dict:
    """Run every cell of a shard, calling ``emit(position, result)`` as
    each finishes; returns the shard's cache-usage statistics."""
    before = _cache_snapshot(sessions)
    for position, cell in shard.cells:
        emit(position, _run_cell(cell, sessions, options))
    return {
        "shard": shard.index,
        "key": "/".join(str(part) for part in shard.key),
        "cells": len(shard.cells),
        "cache": _cache_delta(sessions, before),
    }


# ------------------------------------------------------------- orchestrator


def _worker_main(worker_id, task_queue, result_queue, options) -> None:
    """Worker process: pull shards until the ``None`` sentinel.

    Sessions stay warm across shards, so a worker that processes several
    shards of one implementation compiles its C source once.  Messages:
    ``("start", worker, shard)`` before a shard (so the parent knows what
    was in flight if this process dies), ``("cell", worker, shard,
    position, result)`` per cell, ``("shard", worker, stats)`` after, and
    ``("done", worker)`` on clean exit.
    """
    sessions: dict = {}
    crash_keys = _crash_keys()
    while True:
        shard = task_queue.get()
        if shard is None:
            result_queue.put(("done", worker_id))
            return
        result_queue.put(("start", worker_id, shard.index))
        if crash_keys and any(cell.key in crash_keys for _, cell in shard.cells):
            # Fault injection for the worker-crash tests: die mid-shard
            # without cleanup, like a segfaulting or OOM-killed solver
            # would.  Flush the queue first so the "start" message is on
            # the wire (a crash during the solve, not during the put); a
            # crash that loses even that is covered by the no-live-workers
            # fallback in run_matrix.
            result_queue.close()
            result_queue.join_thread()
            os._exit(3)

        def emit(position, result, _wid=worker_id, _shard=shard.index):
            result.worker = _wid
            if result.result is not None:
                # Don't pickle the shared observation set once per cell;
                # spec size and counterexample text are already in the
                # JSON-safe fields.
                result.result = replace(result.result, specification=None)
            result_queue.put(("cell", _wid, _shard, position, result))

        stats = _run_shard(shard, sessions, options, emit)
        result_queue.put(("shard", worker_id, stats))


def _mp_context():
    # fork is cheap and inherits the imported package; fall back to spawn
    # where fork is unavailable (it pickles cells/options/results fine).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def run_matrix(
    cells,
    jobs: int | None = None,
    shard_by: str = "test",
    options=None,
    progress=None,
) -> MatrixResult:
    """Run a check matrix, optionally across a multiprocessing pool.

    ``jobs=None`` reads ``CHECKFENCE_JOBS`` (default 1).  ``jobs=1`` is the
    deterministic serial path: shards run in order, in-process, sharing
    warm sessions exactly like one worker would.  ``jobs>1`` starts worker
    processes, streams results back as cells finish, and reports crashed
    workers' in-flight cells as errors instead of hanging.  ``progress``
    (if given) is called as ``progress(done, total, cell_result)`` from
    the parent process, in completion order.

    The returned :class:`MatrixResult` lists cell results in the original
    order of ``cells``, so a parallel run is directly comparable to a
    serial one.
    """
    from repro.core.checker import CheckOptions

    cells = list(cells)
    if jobs is None:
        jobs = default_jobs()
    options = options if options is not None else CheckOptions()
    shards = shard_cells(cells, shard_by)
    started = time.perf_counter()
    results: dict[int, CellResult] = {}
    shard_stats: list[dict] = []
    total = len(cells)

    interrupt_keys = _interrupt_keys()

    def record(position: int, result: CellResult) -> None:
        results[position] = result
        if progress is not None:
            progress(len(results), total, result)
        if interrupt_keys and result.cell.key in interrupt_keys:
            # Fault injection: behave exactly as if Ctrl-C arrived the
            # moment this cell's result was recorded.
            raise KeyboardInterrupt

    if jobs <= 1 or len(shards) <= 1 or total <= 1:
        sessions: dict = {}
        for shard in shards:
            shard_stats.append(_run_shard(shard, sessions, options, record))
        return MatrixResult(
            results=[results[i] for i in range(total)],
            jobs=1,
            shard_by=shard_by,
            shard_count=len(shards),
            elapsed_seconds=time.perf_counter() - started,
            shard_stats=shard_stats,
        )

    jobs = min(jobs, len(shards))
    ctx = _mp_context()
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    for shard in shards:
        task_queue.put(shard)
    for _ in range(jobs):
        task_queue.put(None)
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, options),
            daemon=True,
        )
        for worker_id in range(jobs)
    ]
    for worker in workers:
        worker.start()

    #: positions of each shard's cells not yet reported back.
    pending: dict[int, set[int]] = {
        shard.index: {position for position, _ in shard.cells}
        for shard in shards
    }
    shards_by_index = {shard.index: shard for shard in shards}
    in_flight: dict[int, int] = {}   # worker id -> shard index
    finished_workers: set[int] = set()
    crashed_workers: dict[int, int | None] = {}

    def handle(message) -> None:
        kind = message[0]
        if kind == "start":
            _, worker_id, shard_index = message
            in_flight[worker_id] = shard_index
        elif kind == "cell":
            _, worker_id, shard_index, position, result = message
            record(position, result)
            remaining = pending.get(shard_index)
            if remaining is not None:
                remaining.discard(position)
                if not remaining:
                    pending.pop(shard_index, None)
                    in_flight.pop(worker_id, None)
        elif kind == "shard":
            _, _worker_id, stats = message
            shard_stats.append(stats)
        elif kind == "done":
            _, worker_id = message
            finished_workers.add(worker_id)
            in_flight.pop(worker_id, None)

    def drain() -> None:
        while True:
            try:
                handle(result_queue.get_nowait())
            except queue_module.Empty:
                return

    def fail_shard(shard_index: int, reason: str) -> None:
        remaining = pending.pop(shard_index, None)
        if not remaining:
            return
        for position, cell in shards_by_index[shard_index].cells:
            if position in remaining:
                record(position, CellResult(cell=cell, error=reason))

    try:
        while pending:
            try:
                handle(result_queue.get(timeout=0.2))
                continue
            except queue_module.Empty:
                pass
            # No message: look for workers that died without saying goodbye.
            drain()
            for worker_id, worker in enumerate(workers):
                if (
                    worker.is_alive()
                    or worker_id in finished_workers
                    or worker_id in crashed_workers
                ):
                    continue
                crashed_workers[worker_id] = worker.exitcode
                shard_index = in_flight.pop(worker_id, None)
                if shard_index is not None:
                    fail_shard(
                        shard_index,
                        f"worker {worker_id} crashed "
                        f"(exit code {worker.exitcode})",
                    )
            if len(finished_workers) + len(crashed_workers) == len(workers):
                # Every worker is gone; nothing else will ever arrive.
                drain()
                for shard_index in list(pending):
                    fail_shard(
                        shard_index,
                        "no live workers left (pool crashed before this "
                        "shard)",
                    )
                task_queue.cancel_join_thread()

        for worker in workers:
            worker.join(timeout=5)
            if worker.is_alive():
                worker.terminate()
        drain()  # trailing "shard"/"done" messages sent after the last cell
    except KeyboardInterrupt:
        # Ctrl-C (or the INTERRUPT_ENV injection): tear the pool down
        # instead of leaving orphaned workers grinding on solver calls,
        # then re-raise so the caller (the CLI maps it to exit code 130)
        # still sees the interrupt.
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=5)
        task_queue.cancel_join_thread()
        result_queue.cancel_join_thread()
        raise

    return MatrixResult(
        results=[results[i] for i in range(total)],
        jobs=jobs,
        shard_by=shard_by,
        shard_count=len(shards),
        elapsed_seconds=time.perf_counter() - started,
        shard_stats=shard_stats,
    )
