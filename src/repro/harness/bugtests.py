"""Minimal tests that expose the Section 4.1 bugs.

The paper found the snark bugs on tests D0/Dq and the lazylist
initialization bug on its set tests; those tests leave all operation
arguments symbolic, which lets the nondeterministic arguments "explain away"
some wrong answers on the smallest tests.  The two tests below are the
minimal scenarios that pin each bug down (DESIGN.md discusses the
difference); they are used by the Section 4.1 experiment and benchmarks.
"""

from __future__ import annotations

from repro.lsl.program import Invocation, SymbolicTest


def deque_double_pop_test() -> SymbolicTest:
    """One element in the deque, then concurrent pops from both ends.

    The snark failure mode: with the buggy single-CAS pop both ends can
    return the same (single) element, an outcome no serial execution allows.
    """
    return SymbolicTest(
        name="D1",
        threads=[
            [Invocation("remove_right")],
            [Invocation("remove_left")],
        ],
        init=[Invocation("init"), Invocation("add_left", (None,))],
        description="al ( rr | rl )",
    )


def lazylist_missing_init_test() -> SymbolicTest:
    """An element is added during initialization, then looked up.

    With the missing ``marked`` initialization the lookup can report the
    element as absent even though no remove ever ran — the bug the paper
    found in the published lazy-list pseudocode.
    """
    return SymbolicTest(
        name="Sbug",
        threads=[[Invocation("contains", (None,))]],
        init=[Invocation("init"), Invocation("add", (None,))],
        description="a ( c )",
    )
