"""Registry of the studied implementations (Table 1) and their variants."""

from __future__ import annotations

from repro.datatypes import harris, lazylist, ms2, msn, snark
from repro.datatypes.spec import DataTypeImplementation

#: Category of each base implementation: which reference semantics and which
#: symbolic tests (Fig. 8) apply to it.
CATEGORIES = {
    "ms2": "queue",
    "msn": "queue",
    "lazylist": "set",
    "harris": "set",
    "snark": "deque",
}

#: Table 1 of the paper.
TABLE1 = [
    ("ms2", "Two-lock queue [33]",
     "Queue is represented as a linked list, with two independent locks for "
     "the head and tail."),
    ("msn", "Nonblocking queue [33]",
     "Similar, but uses compare-and-swap for synchronization instead of "
     "locks (Fig. 9)."),
    ("lazylist", "Lazy list-based set [6, 18]",
     "Set is represented as a sorted linked list. Per-node locks are used "
     "during insertion and deletion, but the list supports a lock-free "
     "membership test."),
    ("harris", "Nonblocking set [16]",
     "Set is represented as a sorted linked list. Compare-and-swap is used "
     "instead of locks."),
    ("snark", "Nonblocking deque [8, 10]",
     "Deque is represented as linked list. Uses double-compare-and-swap."),
]


def _builders() -> dict[str, callable]:
    return {
        "ms2": lambda: ms2.make(fenced=True),
        "ms2-unfenced": lambda: ms2.make(fenced=False),
        "msn": lambda: msn.make(fenced=True),
        "msn-unfenced": lambda: msn.make(fenced=False),
        "lazylist": lambda: lazylist.make("fenced"),
        "lazylist-unfenced": lambda: lazylist.make("unfenced"),
        "lazylist-buggy": lambda: lazylist.make("buggy"),
        "harris": lambda: harris.make(fenced=True),
        "harris-unfenced": lambda: harris.make(fenced=False),
        "snark": lambda: snark.make("fenced"),
        "snark-unfenced": lambda: snark.make("unfenced"),
        "snark-buggy": lambda: snark.make("buggy"),
    }


#: What a variant suffix means, for the one-line descriptions.
_VARIANT_NOTES = {
    "unfenced": "memory-ordering fences removed",
    "buggy": "with the seeded bug of Section 4.1",
}


def available_implementations() -> list[str]:
    """Names of every implementation variant that can be checked."""
    return sorted(_builders())


def describe_implementation(name: str) -> str:
    """One-line description of an implementation variant.

    Derived from the implementation's own ``description`` metadata
    (whitespace-collapsed), with the variant suffix spelled out — so
    ``checkfence list`` and ``table1`` never print a nameless row.
    """
    implementation = get_implementation(name)
    summary = " ".join(implementation.description.split())
    _base, _, suffix = name.partition("-")
    note = _VARIANT_NOTES.get(suffix)
    if note:
        summary += f" ({note})"
    return summary


def get_implementation(name: str) -> DataTypeImplementation:
    """Build an implementation (or variant) by name."""
    builders = _builders()
    try:
        return builders[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown implementation {name!r}; known: "
            + ", ".join(sorted(builders))
        ) from exc


def category_of(name: str) -> str:
    """The abstract data type category of an implementation (or variant)."""
    base = name.split("-")[0]
    try:
        return CATEGORIES[base]
    except KeyError as exc:
        raise KeyError(f"unknown implementation family {name!r}") from exc


def base_implementations() -> list[str]:
    """The five implementations of Table 1."""
    return [name for name, _, _ in TABLE1]
