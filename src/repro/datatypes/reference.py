"""Sequential reference implementations.

These are the "small, fast reference implementations" the paper recommends
for computing observation sets (Section 3.2, Fig. 11a "refset").  Each class
exposes one method per operation; methods return the observable results in
the same order the C-side harness observes them (C return value first, then
out-parameters).

Conventions shared with the C sources:

* values are drawn from {0, 1};
* a queue ``dequeue`` returns ``(ok, value)`` with ``value = 0`` when the
  queue is empty (the out-parameter cell is zero-initialized and not written
  in that case);
* a deque ``remove_*`` returns :data:`EMPTY` (2) when the deque is empty.
"""

from __future__ import annotations

from collections import deque

#: Value returned by deque removals when the deque is empty.
EMPTY = 2


class ReferenceQueue:
    """FIFO queue (reference for both ms2 and msn)."""

    def __init__(self) -> None:
        self._items: deque[int] = deque()

    def init(self) -> None:
        self._items.clear()

    def enqueue(self, value: int) -> None:
        self._items.append(value)

    def dequeue(self) -> tuple[int, int]:
        if not self._items:
            return (0, 0)
        return (1, self._items.popleft())


class ReferenceSet:
    """Sorted-set semantics (reference for lazylist and harris)."""

    def __init__(self) -> None:
        self._items: set[int] = set()

    def init(self) -> None:
        self._items.clear()

    def add(self, value: int) -> int:
        if value in self._items:
            return 0
        self._items.add(value)
        return 1

    def remove(self, value: int) -> int:
        if value in self._items:
            self._items.remove(value)
            return 1
        return 0

    def contains(self, value: int) -> int:
        return int(value in self._items)


class ReferenceDeque:
    """Double-ended queue (reference for the snark-style deque)."""

    def __init__(self) -> None:
        self._items: deque[int] = deque()

    def init(self) -> None:
        self._items.clear()

    def add_left(self, value: int) -> None:
        self._items.appendleft(value)

    def add_right(self, value: int) -> None:
        self._items.append(value)

    def remove_left(self) -> int:
        if not self._items:
            return EMPTY
        return self._items.popleft()

    def remove_right(self) -> int:
        if not self._items:
            return EMPTY
        return self._items.pop()
