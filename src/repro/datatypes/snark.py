"""``snark`` — a DCAS-based non-blocking deque (Table 1).

The original "snark" algorithm [Detlefs et al. 2000] implements a deque as a
doubly-linked list manipulated with double-compare-and-swap (DCAS); two bugs
were later found in it [Doherty et al. 2004].  The full snark algorithm is
long; this reproduction implements a compact DCAS deque with the same
structure (doubly-linked list between two sentinels, all updates performed
with DCAS on a pair of links) and ships a ``buggy`` variant whose pop
operations update only one of the two links with a single CAS.  The buggy
variant exhibits the snark failure mode on the paper's test D0: when the
deque holds a single element, concurrent pops from both ends can both return
that element — an observation no serial execution produces.  DESIGN.md
records this substitution.

``EMPTY`` (2) is returned by pops on an empty deque.  Retries are modeled
with ``assume(false)`` (the paper's primed-operation restriction).
"""

from __future__ import annotations

from repro.datatypes.reference import ReferenceDeque
from repro.datatypes.spec import DataTypeImplementation, OperationSpec

_HEADER = """
typedef struct node {
    struct node *left;
    struct node *right;
    int value;
} node_t;

typedef struct deque {
    node_t *left_sentinel;
    node_t *right_sentinel;
} deque_t;

deque_t dq;

extern node_t *new_node();
extern void delete_node(node_t *node);

void init_deque(deque_t *d)
{
    node_t *ls;
    node_t *rs;
    ls = new_node();
    rs = new_node();
    ls->left = 0;
    ls->right = rs;
    ls->value = 0;
    rs->left = ls;
    rs->right = 0;
    rs->value = 0;
    d->left_sentinel = ls;
    d->right_sentinel = rs;
}
"""


def _body(fenced: bool, correct_pops: bool) -> str:
    load_fence = 'fence("load-load");' if fenced else ""
    store_fence = 'fence("store-store");' if fenced else ""
    if correct_pops:
        pop_right_commit = """
    if (dcas(&rs->left, (unsigned) node, (unsigned) prev,
             &prev->right, (unsigned) node, (unsigned) rs)) {
        delete_node(node);
        return result;
    }
    assume(false);
    return 2;
"""
        pop_left_commit = """
    if (dcas(&ls->right, (unsigned) node, (unsigned) nxt,
             &nxt->left, (unsigned) node, (unsigned) ls)) {
        delete_node(node);
        return result;
    }
    assume(false);
    return 2;
"""
    else:
        # The buggy variant only swings the hat on its own side, so both ends
        # can claim the same last node (the snark double-pop bug).
        pop_right_commit = """
    if (cas(&rs->left, (unsigned) node, (unsigned) prev)) {
        prev->right = rs;
        delete_node(node);
        return result;
    }
    assume(false);
    return 2;
"""
        pop_left_commit = """
    if (cas(&ls->right, (unsigned) node, (unsigned) nxt)) {
        nxt->left = ls;
        delete_node(node);
        return result;
    }
    assume(false);
    return 2;
"""
    return f"""
void add_right(deque_t *d, int v)
{{
    node_t *rs;
    node_t *prev;
    node_t *n;
    rs = d->right_sentinel;
    {load_fence}
    prev = rs->left;
    {load_fence}
    n = new_node();
    n->value = v;
    n->right = rs;
    n->left = prev;
    {store_fence}
    if (dcas(&prev->right, (unsigned) rs, (unsigned) n,
             &rs->left, (unsigned) prev, (unsigned) n)) {{
        return;
    }}
    assume(false);
}}

void add_left(deque_t *d, int v)
{{
    node_t *ls;
    node_t *nxt;
    node_t *n;
    ls = d->left_sentinel;
    {load_fence}
    nxt = ls->right;
    {load_fence}
    n = new_node();
    n->value = v;
    n->left = ls;
    n->right = nxt;
    {store_fence}
    if (dcas(&nxt->left, (unsigned) ls, (unsigned) n,
             &ls->right, (unsigned) nxt, (unsigned) n)) {{
        return;
    }}
    assume(false);
}}

int remove_right(deque_t *d)
{{
    node_t *rs;
    node_t *ls;
    node_t *node;
    node_t *prev;
    int result;
    rs = d->right_sentinel;
    ls = d->left_sentinel;
    {load_fence}
    node = rs->left;
    {load_fence}
    if (node == ls) {{
        return 2;
    }}
    result = node->value;
    {load_fence}
    prev = node->left;
    {load_fence}
{pop_right_commit}
}}

int remove_left(deque_t *d)
{{
    node_t *rs;
    node_t *ls;
    node_t *node;
    node_t *nxt;
    int result;
    rs = d->right_sentinel;
    ls = d->left_sentinel;
    {load_fence}
    node = ls->right;
    {load_fence}
    if (node == rs) {{
        return 2;
    }}
    result = node->value;
    {load_fence}
    nxt = node->right;
    {load_fence}
{pop_left_commit}
}}
"""


FENCED_SOURCE = _HEADER + _body(fenced=True, correct_pops=True)
UNFENCED_SOURCE = _HEADER + _body(fenced=False, correct_pops=True)
BUGGY_SOURCE = _HEADER + _body(fenced=True, correct_pops=False)

_OPERATIONS = {
    "init": OperationSpec("init", "init_deque", shared_globals=("dq",)),
    "add_left": OperationSpec(
        "add_left", "add_left", shared_globals=("dq",), num_value_args=1
    ),
    "add_right": OperationSpec(
        "add_right", "add_right", shared_globals=("dq",), num_value_args=1
    ),
    "remove_left": OperationSpec(
        "remove_left", "remove_left", shared_globals=("dq",), has_return=True
    ),
    "remove_right": OperationSpec(
        "remove_right", "remove_right", shared_globals=("dq",), has_return=True
    ),
}


def make(variant: str = "fenced") -> DataTypeImplementation:
    """The DCAS deque: ``fenced``, ``unfenced``, or ``buggy``."""
    sources = {
        "fenced": ("snark", FENCED_SOURCE),
        "unfenced": ("snark-unfenced", UNFENCED_SOURCE),
        "buggy": ("snark-buggy", BUGGY_SOURCE),
    }
    try:
        name, source = sources[variant]
    except KeyError as exc:
        raise ValueError(f"unknown snark variant {variant!r}") from exc
    return DataTypeImplementation(
        name=name,
        description="Non-blocking deque using double-compare-and-swap "
        "(snark-style, simplified)",
        operations=dict(_OPERATIONS),
        source=source,
        init_operation="init",
        reference=ReferenceDeque,
        default_loop_bound=1,
        notes="the 'buggy' variant reproduces the snark double-pop failure "
        "mode with a single-CAS pop",
    )
