"""``lazylist`` — the lazy list-based set (Table 1, [Heller et al. 2005]).

The set is a sorted linked list with sentinel head/tail nodes.  ``add`` and
``remove`` lock the two affected nodes and re-validate; ``contains`` is a
lock-free (wait-free) traversal that checks the ``marked`` field.

Three variants are provided:

* ``lazylist`` (fenced) — with the store-store fence before publishing a new
  node and the load-load fences on traversals, as required on Relaxed;
* ``lazylist-unfenced`` — the same code without fences (correct only under
  sequential consistency);
* ``lazylist-buggy`` — reproduces the not-previously-known bug the paper
  found: the published pseudocode *fails to initialize the ``marked`` field*
  of a newly added node, so a concurrent ``contains`` may treat the new node
  as already deleted.

Keys are shifted by one internally (sentinel head key 0, real keys ``v+1``,
sentinel tail key 3) so that test values {0, 1} fit between the sentinels.

Validation failures (which would cause a retry in the original algorithm)
are modeled with ``assume(false)``, i.e. the check restricts itself to
executions without retries — the same restriction the paper applies to the
"primed" operations of Fig. 8.
"""

from __future__ import annotations

from repro.datatypes.reference import ReferenceSet
from repro.datatypes.spec import DataTypeImplementation, OperationSpec

_HEADER = """
typedef struct node {
    int key;
    struct node *next;
    int marked;
    int node_lock;
} node_t;

typedef struct set {
    node_t *head;
} set_t;

set_t lset;

extern node_t *new_node();

void init_set(set_t *s)
{
    node_t *h;
    node_t *t;
    t = new_node();
    t->key = 3;
    t->next = 0;
    t->marked = 0;
    t->node_lock = 0;
    h = new_node();
    h->key = 0;
    h->next = t;
    h->marked = 0;
    h->node_lock = 0;
    s->head = h;
}
"""


def _body(fenced: bool, initialize_marked: bool) -> str:
    load_fence = 'fence("load-load");' if fenced else ""
    store_fence = 'fence("store-store");' if fenced else ""
    marked_init = "n->marked = 0;" if initialize_marked else ""
    return f"""
bool add(set_t *s, int v)
{{
    int k;
    node_t *pred;
    node_t *curr;
    node_t *n;
    bool result;
    k = v + 1;
    pred = s->head;
    {load_fence}
    curr = pred->next;
    {load_fence}
    while (curr->key < k) {{
        pred = curr;
        curr = curr->next;
        {load_fence}
    }}
    lock(&pred->node_lock);
    lock(&curr->node_lock);
    if (pred->marked == 0 && curr->marked == 0 && pred->next == curr) {{
        if (curr->key == k) {{
            result = false;
        }} else {{
            n = new_node();
            n->key = k;
            {marked_init}
            n->node_lock = 0;
            n->next = curr;
            {store_fence}
            pred->next = n;
            result = true;
        }}
        unlock(&curr->node_lock);
        unlock(&pred->node_lock);
        return result;
    }}
    unlock(&curr->node_lock);
    unlock(&pred->node_lock);
    assume(false);
    return false;
}}

bool remove_key(set_t *s, int v)
{{
    int k;
    node_t *pred;
    node_t *curr;
    bool result;
    k = v + 1;
    pred = s->head;
    {load_fence}
    curr = pred->next;
    {load_fence}
    while (curr->key < k) {{
        pred = curr;
        curr = curr->next;
        {load_fence}
    }}
    lock(&pred->node_lock);
    lock(&curr->node_lock);
    if (pred->marked == 0 && curr->marked == 0 && pred->next == curr) {{
        if (curr->key == k) {{
            curr->marked = 1;
            {store_fence}
            pred->next = curr->next;
            result = true;
        }} else {{
            result = false;
        }}
        unlock(&curr->node_lock);
        unlock(&pred->node_lock);
        return result;
    }}
    unlock(&curr->node_lock);
    unlock(&pred->node_lock);
    assume(false);
    return false;
}}

bool contains(set_t *s, int v)
{{
    int k;
    node_t *curr;
    k = v + 1;
    curr = s->head;
    {load_fence}
    while (curr->key < k) {{
        curr = curr->next;
        {load_fence}
    }}
    return curr->key == k && curr->marked == 0;
}}
"""


FENCED_SOURCE = _HEADER + _body(fenced=True, initialize_marked=True)
UNFENCED_SOURCE = _HEADER + _body(fenced=False, initialize_marked=True)
BUGGY_SOURCE = _HEADER + _body(fenced=True, initialize_marked=False)

_OPERATIONS = {
    "init": OperationSpec("init", "init_set", shared_globals=("lset",)),
    "add": OperationSpec(
        "add", "add", shared_globals=("lset",), num_value_args=1, has_return=True
    ),
    "remove": OperationSpec(
        "remove", "remove_key", shared_globals=("lset",), num_value_args=1,
        has_return=True,
    ),
    "contains": OperationSpec(
        "contains", "contains", shared_globals=("lset",), num_value_args=1,
        has_return=True,
    ),
}


def make(variant: str = "fenced") -> DataTypeImplementation:
    """The lazy list set: ``fenced``, ``unfenced``, or ``buggy``."""
    sources = {
        "fenced": ("lazylist", FENCED_SOURCE),
        "unfenced": ("lazylist-unfenced", UNFENCED_SOURCE),
        "buggy": ("lazylist-buggy", BUGGY_SOURCE),
    }
    try:
        name, source = sources[variant]
    except KeyError as exc:
        raise ValueError(f"unknown lazylist variant {variant!r}") from exc
    return DataTypeImplementation(
        name=name,
        description="Lazy list-based set [Heller et al. 2005]: per-node locks, "
        "lock-free membership test",
        source=source,
        operations=dict(_OPERATIONS),
        init_operation="init",
        reference=ReferenceSet,
        default_loop_bound=3,
        notes="the 'buggy' variant omits initializing the marked field of a "
        "new node (the bug the paper found)",
    )
