"""``msn`` — Michael & Scott's non-blocking queue (Table 1, Fig. 9).

The fenced source follows Fig. 9 of the paper (which is, per the paper, the
first published version of this queue with memory ordering fences); the
unfenced source is the same code with every ``fence()`` call removed, i.e.
the algorithm as originally published assuming sequential consistency.

As in the paper, the code is slightly simplified: the original stores a
counter alongside each pointer, which is not required for the bounded tests.
"""

from __future__ import annotations

from repro.datatypes.reference import ReferenceQueue
from repro.datatypes.spec import DataTypeImplementation, OperationSpec

_HEADER = """
typedef int value_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
} queue_t;

queue_t queue;

extern node_t *new_node();
extern void delete_node(node_t *node);

void init_queue(queue_t *queue)
{
    node_t *node;
    node = new_node();
    node->next = 0;
    node->value = 0;
    queue->head = node;
    queue->tail = node;
}
"""

FENCED_SOURCE = _HEADER + """
void enqueue(queue_t *queue, value_t value)
{
    node_t *node;
    node_t *tail;
    node_t *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    while (true) {
        tail = queue->tail;
        fence("load-load");
        next = tail->next;
        fence("load-load");
        if (tail == queue->tail) {
            if (next == 0) {
                if (cas(&tail->next, (unsigned) next, (unsigned) node))
                    break;
            } else {
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            }
        }
    }
    fence("store-store");
    cas(&queue->tail, (unsigned) tail, (unsigned) node);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *head;
    node_t *tail;
    node_t *next;
    while (true) {
        head = queue->head;
        fence("load-load");
        tail = queue->tail;
        fence("load-load");
        next = head->next;
        fence("load-load");
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0)
                    return false;
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas(&queue->head, (unsigned) head, (unsigned) next))
                    break;
            }
        }
    }
    delete_node(head);
    return true;
}
"""

UNFENCED_SOURCE = _HEADER + """
void enqueue(queue_t *queue, value_t value)
{
    node_t *node;
    node_t *tail;
    node_t *next;
    node = new_node();
    node->value = value;
    node->next = 0;
    while (true) {
        tail = queue->tail;
        next = tail->next;
        if (tail == queue->tail) {
            if (next == 0) {
                if (cas(&tail->next, (unsigned) next, (unsigned) node))
                    break;
            } else {
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            }
        }
    }
    cas(&queue->tail, (unsigned) tail, (unsigned) node);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *head;
    node_t *tail;
    node_t *next;
    while (true) {
        head = queue->head;
        tail = queue->tail;
        next = head->next;
        if (head == queue->head) {
            if (head == tail) {
                if (next == 0)
                    return false;
                cas(&queue->tail, (unsigned) tail, (unsigned) next);
            } else {
                *pvalue = next->value;
                if (cas(&queue->head, (unsigned) head, (unsigned) next))
                    break;
            }
        }
    }
    delete_node(head);
    return true;
}
"""

_OPERATIONS = {
    "init": OperationSpec("init", "init_queue", shared_globals=("queue",)),
    "enqueue": OperationSpec(
        "enqueue", "enqueue", shared_globals=("queue",), num_value_args=1
    ),
    "dequeue": OperationSpec(
        "dequeue",
        "dequeue",
        shared_globals=("queue",),
        num_out_params=1,
        has_return=True,
    ),
}


def make(fenced: bool = True) -> DataTypeImplementation:
    """The non-blocking queue, with or without the memory ordering fences."""
    return DataTypeImplementation(
        name="msn" if fenced else "msn-unfenced",
        description="Non-blocking queue [Michael & Scott 1996], CAS-based",
        source=FENCED_SOURCE if fenced else UNFENCED_SOURCE,
        operations=dict(_OPERATIONS),
        init_operation="init",
        reference=ReferenceQueue,
        default_loop_bound=1,
        notes="Fig. 9 of the paper (fences included in the fenced variant)",
    )
