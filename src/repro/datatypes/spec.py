"""Metadata describing a concurrent data type implementation.

A :class:`DataTypeImplementation` bundles the C source of an implementation
(as studied in Table 1 of the paper) with enough calling-convention metadata
for the test harness to invoke its operations:

* which global object(s) must be passed by address (e.g. ``&queue``),
* how many value arguments an operation takes (chosen from {0, 1} when a
  symbolic test leaves them unspecified),
* whether it returns a value and/or writes through trailing out-parameters.

The ``reference`` factory builds a simple sequential Python object with the
same operations, used for the fast "refset" specification mining and as a
differential oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class OperationSpec:
    """Calling convention of one data type operation."""

    name: str                       # logical name used by symbolic tests
    proc: str                       # C function implementing it
    shared_globals: tuple[str, ...] = ()   # globals passed by address first
    num_value_args: int = 0         # integer arguments (observable)
    num_out_params: int = 0         # trailing out-parameters (observable)
    has_return: bool = False        # C return value (observable)

    @property
    def num_observables(self) -> int:
        return self.num_value_args + self.num_out_params + int(self.has_return)


@dataclass
class DataTypeImplementation:
    """A concurrent data type implementation under test."""

    name: str
    description: str
    source: str                              # C source text
    operations: dict[str, OperationSpec]
    init_operation: str | None = None        # operation run by the init thread
    #: Factory for a sequential reference implementation (see
    #: :mod:`repro.datatypes.reference`).
    reference: Callable[[], object] | None = None
    #: Default loop bound sufficient for the bounded tests.
    default_loop_bound: int = 1
    notes: str = ""

    def operation(self, name: str) -> OperationSpec:
        try:
            return self.operations[name]
        except KeyError as exc:
            raise KeyError(
                f"data type {self.name!r} has no operation {name!r}"
            ) from exc

    def with_source(self, source: str, suffix: str) -> "DataTypeImplementation":
        """A copy of this implementation with different C source (used for
        fenced vs. unfenced and buggy vs. fixed variants)."""
        return DataTypeImplementation(
            name=f"{self.name}-{suffix}",
            description=self.description,
            source=source,
            operations=dict(self.operations),
            init_operation=self.init_operation,
            reference=self.reference,
            default_loop_bound=self.default_loop_bound,
            notes=self.notes,
        )
