"""The concurrent data type implementations studied in the paper (Table 1)."""

from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.datatypes.reference import (
    EMPTY,
    ReferenceDeque,
    ReferenceQueue,
    ReferenceSet,
)
from repro.datatypes.registry import (
    CATEGORIES,
    TABLE1,
    available_implementations,
    base_implementations,
    category_of,
    get_implementation,
)

__all__ = [
    "DataTypeImplementation",
    "OperationSpec",
    "EMPTY",
    "ReferenceDeque",
    "ReferenceQueue",
    "ReferenceSet",
    "CATEGORIES",
    "TABLE1",
    "available_implementations",
    "base_implementations",
    "category_of",
    "get_implementation",
]
