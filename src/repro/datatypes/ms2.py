"""``ms2`` — Michael & Scott's two-lock queue (Table 1).

The queue is a linked list with a dummy node; enqueue and dequeue use two
independent locks for the tail and head.  The lock/unlock operations follow
Fig. 7 of the paper (spin-lock with partial fences); the front-end models
them with the paper's spin-loop reduction.

The fenced variant adds the store-store fence between initializing a new
node and publishing it, and the load-load fences on the dequeue side —
exactly the "incomplete initialization" and "value-dependent reordering"
fixes of Section 4.3.  Lock-based code needs no further fences because the
lock primitives already carry theirs.
"""

from __future__ import annotations

from repro.datatypes.reference import ReferenceQueue
from repro.datatypes.spec import DataTypeImplementation, OperationSpec

_HEADER = """
typedef int value_t;
typedef int lock_t;

typedef struct node {
    struct node *next;
    value_t value;
} node_t;

typedef struct queue {
    node_t *head;
    node_t *tail;
    lock_t head_lock;
    lock_t tail_lock;
} queue_t;

queue_t queue;

extern node_t *new_node();
extern void delete_node(node_t *node);

void init_queue(queue_t *queue)
{
    node_t *node;
    node = new_node();
    node->next = 0;
    node->value = 0;
    queue->head = node;
    queue->tail = node;
    queue->head_lock = 0;
    queue->tail_lock = 0;
}
"""

FENCED_SOURCE = _HEADER + """
void enqueue(queue_t *queue, value_t value)
{
    node_t *node;
    node_t *tail;
    node = new_node();
    node->value = value;
    node->next = 0;
    fence("store-store");
    lock(&queue->tail_lock);
    tail = queue->tail;
    tail->next = node;
    queue->tail = node;
    unlock(&queue->tail_lock);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *node;
    node_t *new_head;
    lock(&queue->head_lock);
    node = queue->head;
    fence("load-load");
    new_head = node->next;
    if (new_head == 0) {
        unlock(&queue->head_lock);
        return false;
    }
    fence("load-load");
    *pvalue = new_head->value;
    queue->head = new_head;
    unlock(&queue->head_lock);
    delete_node(node);
    return true;
}
"""

UNFENCED_SOURCE = _HEADER + """
void enqueue(queue_t *queue, value_t value)
{
    node_t *node;
    node_t *tail;
    node = new_node();
    node->value = value;
    node->next = 0;
    lock(&queue->tail_lock);
    tail = queue->tail;
    tail->next = node;
    queue->tail = node;
    unlock(&queue->tail_lock);
}

bool dequeue(queue_t *queue, value_t *pvalue)
{
    node_t *node;
    node_t *new_head;
    lock(&queue->head_lock);
    node = queue->head;
    new_head = node->next;
    if (new_head == 0) {
        unlock(&queue->head_lock);
        return false;
    }
    *pvalue = new_head->value;
    queue->head = new_head;
    unlock(&queue->head_lock);
    delete_node(node);
    return true;
}
"""

_OPERATIONS = {
    "init": OperationSpec("init", "init_queue", shared_globals=("queue",)),
    "enqueue": OperationSpec(
        "enqueue", "enqueue", shared_globals=("queue",), num_value_args=1
    ),
    "dequeue": OperationSpec(
        "dequeue",
        "dequeue",
        shared_globals=("queue",),
        num_out_params=1,
        has_return=True,
    ),
}


def make(fenced: bool = True) -> DataTypeImplementation:
    """The two-lock queue, with or without the extra fences."""
    return DataTypeImplementation(
        name="ms2" if fenced else "ms2-unfenced",
        description="Two-lock queue [Michael & Scott 1996], one lock per end",
        source=FENCED_SOURCE if fenced else UNFENCED_SOURCE,
        operations=dict(_OPERATIONS),
        init_operation="init",
        reference=ReferenceQueue,
        default_loop_bound=1,
        notes="locks follow Fig. 7 (modeled with the spin-loop reduction)",
    )
