"""``harris`` — a non-blocking (lock-free) list-based set (Table 1).

Harris's algorithm [Harris 2001] keeps a sorted linked list and deletes in
two steps: a node is first *logically* deleted by atomically setting a mark,
then *physically* unlinked with a compare-and-swap.  The published algorithm
packs the mark bit into the ``next`` pointer so that a single-word CAS
covers both; the paper notes that CheckFence supports such packed structures
by treating them as atomically accessed units.  We model the packed word as
two fields (``next``, ``marked``) updated inside an ``atomic`` block, which
has the same semantics as the single-word CAS (see DESIGN.md).

Traversals do not help/physically remove marked nodes (the bounded tests the
paper uses never need more than one unlink); remove performs the physical
unlink itself.  Retries are modeled with ``assume(false)`` as for lazylist.
"""

from __future__ import annotations

from repro.datatypes.reference import ReferenceSet
from repro.datatypes.spec import DataTypeImplementation, OperationSpec

_HEADER = """
typedef struct node {
    int key;
    struct node *next;
    int marked;
} node_t;

typedef struct set {
    node_t *head;
} set_t;

set_t hset;

extern node_t *new_node();

void init_set(set_t *s)
{
    node_t *h;
    node_t *t;
    t = new_node();
    t->key = 3;
    t->next = 0;
    t->marked = 0;
    h = new_node();
    h->key = 0;
    h->next = t;
    h->marked = 0;
    s->head = h;
}
"""


def _body(fenced: bool) -> str:
    load_fence = 'fence("load-load");' if fenced else ""
    store_fence = 'fence("store-store");' if fenced else ""
    return f"""
bool add(set_t *s, int v)
{{
    int k;
    node_t *pred;
    node_t *curr;
    node_t *n;
    k = v + 1;
    pred = s->head;
    {load_fence}
    curr = pred->next;
    {load_fence}
    while (curr->key < k) {{
        pred = curr;
        curr = curr->next;
        {load_fence}
    }}
    if (curr->key == k) {{
        if (curr->marked == 0) {{
            return false;
        }}
    }}
    n = new_node();
    n->key = k;
    n->marked = 0;
    n->next = curr;
    {store_fence}
    if (cas(&pred->next, (unsigned) curr, (unsigned) n)) {{
        return true;
    }}
    assume(false);
    return false;
}}

bool remove_key(set_t *s, int v)
{{
    int k;
    node_t *pred;
    node_t *curr;
    node_t *succ;
    int ok;
    k = v + 1;
    pred = s->head;
    {load_fence}
    curr = pred->next;
    {load_fence}
    while (curr->key < k) {{
        pred = curr;
        curr = curr->next;
        {load_fence}
    }}
    if (curr->key != k) {{
        return false;
    }}
    succ = curr->next;
    {load_fence}
    ok = 0;
    atomic {{
        if (curr->next == succ) {{
            if (curr->marked == 0) {{
                curr->marked = 1;
                ok = 1;
            }}
        }}
    }}
    if (ok == 0) {{
        return false;
    }}
    {store_fence}
    cas(&pred->next, (unsigned) curr, (unsigned) succ);
    return true;
}}

bool contains(set_t *s, int v)
{{
    int k;
    node_t *curr;
    k = v + 1;
    curr = s->head;
    {load_fence}
    while (curr->key < k) {{
        curr = curr->next;
        {load_fence}
    }}
    return curr->key == k && curr->marked == 0;
}}
"""


FENCED_SOURCE = _HEADER + _body(fenced=True)
UNFENCED_SOURCE = _HEADER + _body(fenced=False)

_OPERATIONS = {
    "init": OperationSpec("init", "init_set", shared_globals=("hset",)),
    "add": OperationSpec(
        "add", "add", shared_globals=("hset",), num_value_args=1, has_return=True
    ),
    "remove": OperationSpec(
        "remove", "remove_key", shared_globals=("hset",), num_value_args=1,
        has_return=True,
    ),
    "contains": OperationSpec(
        "contains", "contains", shared_globals=("hset",), num_value_args=1,
        has_return=True,
    ),
}


def make(fenced: bool = True) -> DataTypeImplementation:
    """The lock-free set, with or without fences."""
    return DataTypeImplementation(
        name="harris" if fenced else "harris-unfenced",
        description="Non-blocking sorted-list set [Harris 2001], CAS-based with "
        "logical deletion marks",
        source=FENCED_SOURCE if fenced else UNFENCED_SOURCE,
        operations=dict(_OPERATIONS),
        init_operation="init",
        reference=ReferenceSet,
        default_loop_bound=3,
        notes="mark bit modeled as a separate field updated atomically with "
        "the pointer (packed-word emulation)",
    )
