"""A CDCL SAT solver.

This module stands in for the zChaff solver used by the original CheckFence
tool.  It implements the standard conflict-driven clause-learning algorithm:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS activity-based decisions with phase saving, backed by a lazy
  indexed binary heap (variables are reinserted on backtrack and popped
  lazily, so no ordering work is proportional to the variable count),
* Luby restarts,
* LBD-aware deletion of learned clauses ("glue" clauses with literal
  block distance <= 2 are never deleted), and
* incremental solving under assumptions (used by the specification-mining
  loop, which repeatedly re-solves the same formula with extra blocking
  clauses).

The implementation is pure Python and therefore much slower than a native
solver, but it is complete and deterministic, which is what the checker
needs.

Internally literals are encoded as ``2*var`` (positive) and ``2*var + 1``
(negative); the public interface uses DIMACS-style signed integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Iterable, Sequence

from repro.sat.cnf import CNF

_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1


def _to_internal(literal: int) -> int:
    """Convert a DIMACS literal to the internal encoding."""
    var = literal if literal > 0 else -literal
    return 2 * var + (0 if literal > 0 else 1)


def _to_external(ilit: int) -> int:
    """Convert an internal literal back to DIMACS convention."""
    var = ilit >> 1
    return var if (ilit & 1) == 0 else -var


@dataclass
class SolverStats:
    """Counters reported after each :meth:`Solver.solve` call.

    The ``vars_eliminated`` / ``clauses_subsumed`` / ``equiv_merged`` /
    ``preprocess_seconds`` counters are zero for a bare solver; they are
    filled in by :class:`repro.sat.simplify.SimplifyingBackend` when
    in-process CNF preprocessing runs in front of the solver.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    vars_eliminated: int = 0
    clauses_subsumed: int = 0
    equiv_merged: int = 0
    preprocess_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.deleted_clauses += other.deleted_clauses
        self.max_decision_level = max(
            self.max_decision_level, other.max_decision_level
        )
        self.vars_eliminated += other.vars_eliminated
        self.clauses_subsumed += other.clauses_subsumed
        self.equiv_merged += other.equiv_merged
        self.preprocess_seconds += other.preprocess_seconds

    def copy(self) -> "SolverStats":
        return SolverStats(
            decisions=self.decisions,
            propagations=self.propagations,
            conflicts=self.conflicts,
            restarts=self.restarts,
            learned_clauses=self.learned_clauses,
            deleted_clauses=self.deleted_clauses,
            max_decision_level=self.max_decision_level,
            vars_eliminated=self.vars_eliminated,
            clauses_subsumed=self.clauses_subsumed,
            equiv_merged=self.equiv_merged,
            preprocess_seconds=self.preprocess_seconds,
        )

    def since(self, earlier: "SolverStats") -> "SolverStats":
        """Counter delta between two cumulative snapshots (for attributing
        solver work to one query when a backend is shared across queries)."""
        return SolverStats(
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            conflicts=self.conflicts - earlier.conflicts,
            restarts=self.restarts - earlier.restarts,
            learned_clauses=self.learned_clauses - earlier.learned_clauses,
            deleted_clauses=self.deleted_clauses - earlier.deleted_clauses,
            max_decision_level=self.max_decision_level,
            vars_eliminated=self.vars_eliminated - earlier.vars_eliminated,
            clauses_subsumed=self.clauses_subsumed - earlier.clauses_subsumed,
            equiv_merged=self.equiv_merged - earlier.equiv_merged,
            preprocess_seconds=(
                self.preprocess_seconds - earlier.preprocess_seconds
            ),
        )

    def as_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
            "vars_eliminated": self.vars_eliminated,
            "clauses_subsumed": self.clauses_subsumed,
            "equiv_merged": self.equiv_merged,
            "preprocess_seconds": self.preprocess_seconds,
        }


class SolverError(RuntimeError):
    """Raised on malformed solver input (e.g. literal 0)."""


class VarOrderHeap:
    """Lazy binary max-heap of variables keyed by VSIDS activity.

    Built on :mod:`heapq` (C-implemented push/pop) with lazy entries:

    * a variable stays in the heap while assigned and is skipped when
      popped, so backtracking can blindly reinsert;
    * :meth:`insert` is a no-op for variables already present;
    * bumping an *unassigned* variable pushes a fresh entry and lets the
      stale one die on pop (variables bumped during conflict analysis are
      assigned, so duplicates are rare in practice);
    * activity rescaling invalidates stored keys, so the owner must call
      :meth:`rebuild` then (rescales are rare — every ~1e100 of activity).

    Entries are ``(-activity, -var)`` so :func:`heapq.heappop` yields the
    most active variable, ties broken deterministically toward the highest
    variable number (matching the stable sort the heap replaced).
    """

    __slots__ = ("_activity", "_heap", "_present")

    def __init__(self, activity: list[float]) -> None:
        self._activity = activity
        self._heap: list[tuple[float, int]] = []
        self._present: list[bool] = [False]

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return self._present[var]

    def grow(self, num_vars: int) -> None:
        while len(self._present) <= num_vars:
            self._present.append(False)

    def insert(self, var: int) -> None:
        if self._present[var]:
            return
        self._present[var] = True
        heappush(self._heap, (-self._activity[var], -var))

    def bump(self, var: int) -> None:
        """Refresh ``var``'s key after its activity increased."""
        if self._present[var]:
            heappush(self._heap, (-self._activity[var], -var))

    def pop_max(self) -> int | None:
        heap = self._heap
        present = self._present
        while heap:
            var = -heappop(heap)[1]
            if present[var]:
                present[var] = False
                return var
        return None

    def rebuild(self) -> None:
        """Re-key every live entry (after an activity rescale)."""
        activity = self._activity
        self._heap = [
            (-activity[var], -var)
            for var in range(1, len(self._present))
            if self._present[var]
        ]
        heapify(self._heap)


def _luby(index: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    This follows the MiniSat formulation: find the finite subsequence that
    contains ``index`` and the position within it.
    """
    size = 1
    level = 0
    while size < index + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        level -= 1
        index = index % size
    return 1 << level


class Solver:
    """An incremental CDCL SAT solver.

    Typical use::

        solver = Solver()
        solver.add_cnf(cnf)
        if solver.solve():
            model = solver.model()        # dict var -> bool
        solver.add_clause([-3, 5])        # incremental strengthening
        solver.solve(assumptions=[7])
    """

    def __init__(self, cnf: CNF | None = None) -> None:
        self._num_vars = 0
        # Per-variable state, indexed by variable number (1-based, slot 0 unused).
        self._assign: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [True]
        # Watches indexed by internal literal.
        self._watches: list[list[list[int]]] = [[], []]
        self._clauses: list[list[int]] = []
        self._learned: list[list[int]] = []
        self._learned_activity: list[float] = []
        self._learned_lbd: list[int] = []
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._order = VarOrderHeap(self._activity)
        self.stats = SolverStats()
        self.total_stats = SolverStats()
        #: Assignment snapshot of the last SAT result (list indexed by
        #: variable; None before any SAT result).  The dict view is built
        #: lazily by :meth:`model`; :meth:`values_of` reads the snapshot
        #: directly, which the outcome-mining loops rely on.
        self._model_assign: list[int] | None = None
        self._model: dict[int, bool] | None = None
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ setup

    def ensure_vars(self, num_vars: int) -> None:
        """Grow internal structures to accommodate ``num_vars`` variables."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])
            self._order.grow(self._num_vars)
            self._order.insert(self._num_vars)

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses_trusted(cnf.clauses)

    def add_clauses_trusted(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-add clauses that are already free of duplicate literals and
        tautologies (as :class:`repro.sat.cnf.CNF` guarantees), skipping the
        per-clause normalization of :meth:`add_clause`.

        This is the clause-sync fast path used by
        :class:`repro.sat.backend.InternalBackend` when an encoded test
        streams its (pre-normalized) CNF into the solver.  Returns False if
        the solver became UNSAT.
        """
        self._backtrack(0)
        assign = self._assign
        level = self._level
        for clause in clauses:
            lits = []
            satisfied = False
            for lit in clause:
                if lit == 0:
                    raise SolverError("0 is not a valid literal")
                var = lit if lit > 0 else -lit
                if var > self._num_vars:
                    self.ensure_vars(var)
                    assign = self._assign
                    level = self._level
                ilit = (var << 1) | (lit < 0)
                value = assign[var]
                if value >= 0 and level[var] == 0:
                    if (value ^ (ilit & 1)) == 1:
                        satisfied = True
                        break
                    continue  # false at root level: drop the literal
                lits.append(ilit)
            if satisfied:
                continue
            if not lits:
                self._ok = False
                return False
            if len(lits) == 1:
                if not self._enqueue(lits[0], None):
                    self._ok = False
                    return False
                if self._propagate() is not None:
                    self._ok = False
                    return False
            else:
                self._clauses.append(lits)
                self._watch_clause(lits)
        return True

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the solver became trivially UNSAT."""
        lits = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise SolverError("0 is not a valid literal")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            lits.append(_to_internal(lit))
        # Adding clauses is only supported at decision level 0 (the
        # incremental interface backtracks fully before each solve()).
        self._backtrack(0)
        # Remove literals already false at level 0; satisfied clause -> skip.
        filtered = []
        for ilit in lits:
            value = self._lit_value(ilit)
            if value == _TRUE and self._level[ilit >> 1] == 0:
                return True
            if value == _FALSE and self._level[ilit >> 1] == 0:
                continue
            filtered.append(ilit)
        lits = filtered
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = lits
        self._clauses.append(clause)
        self._watch_clause(clause)
        return True

    def _watch_clause(self, clause: list[int]) -> None:
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)

    # --------------------------------------------------------------- querying

    def _lit_value(self, ilit: int) -> int:
        assigned = self._assign[ilit >> 1]
        if assigned == _UNASSIGNED:
            return _UNASSIGNED
        if ilit & 1:
            return _TRUE if assigned == _FALSE else _FALSE
        return assigned

    def value(self, var: int) -> bool | None:
        """Return the model value of ``var`` from the last SAT result."""
        assign = self._model_assign
        if assign is None or not 1 <= var < len(assign):
            return None
        return assign[var] == _TRUE

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last solve() call."""
        if self._model_assign is None:
            return {}
        if self._model is None:
            assign = self._model_assign
            self._model = {
                var: assign[var] == _TRUE for var in range(1, len(assign))
            }
        return dict(self._model)

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        """Model values of selected variables from the last SAT result,
        without materializing (or copying) the full model dict — the
        narrow accessor the outcome-enumeration hot path uses."""
        assign = self._model_assign
        if assign is None:
            return {}
        bound = len(assign)
        return {
            var: (assign[var] == _TRUE) if 0 < var < bound else False
            for var in variables
        }

    # ------------------------------------------------------------ assignments

    def _enqueue(self, ilit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(ilit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = ilit >> 1
        self._assign[var] = _FALSE if (ilit & 1) else _TRUE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = not (ilit & 1)
        self._trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        target = self._trail_lim[level]
        order = self._order
        for ilit in reversed(self._trail[target:]):
            var = ilit >> 1
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            order.insert(var)
        del self._trail[target:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------ propagation

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None.

        This is the solver's hottest loop; literal values are computed
        inline (``assign[var] ^ sign``: 1 = true, 0 = false, negative =
        unassigned) instead of through :meth:`_lit_value`.
        """
        watches = self._watches
        assign = self._assign
        trail = self._trail
        while self._qhead < len(trail):
            ilit = trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_lit = ilit ^ 1
            watch_list = watches[ilit]
            new_watch_list = []
            append_kept = new_watch_list.append
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Normalize so the false literal is in slot 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = assign[first >> 1]
                if value >= 0 and (value ^ (first & 1)) == 1:
                    append_kept(clause)
                    continue
                # Look for a replacement watch (any non-false literal).
                found = False
                for k in range(2, len(clause)):
                    q = clause[k]
                    value = assign[q >> 1]
                    if value < 0 or (value ^ (q & 1)) == 1:
                        clause[1], clause[k] = q, clause[1]
                        watches[q ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                append_kept(clause)
                if not self._enqueue(first, clause):
                    # Conflict: keep remaining watches and report.
                    new_watch_list.extend(watch_list[i:])
                    watches[ilit] = new_watch_list
                    return clause
            watches[ilit] = new_watch_list
        return None

    # ------------------------------------------------------- conflict analysis

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._order.rebuild()
        self._order.bump(var)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, index: int) -> None:
        self._learned_activity[index] += self._cla_inc
        if self._learned_activity[index] > 1e20:
            for i in range(len(self._learned_activity)):
                self._learned_activity[i] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (internal literals, asserting literal
        first) and the backtrack level.
        """
        learned: list[int] = [0]  # slot for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        ilit = -1
        reason: list[int] | None = conflict
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            assert reason is not None
            start = 0 if ilit == -1 else 1
            for k in range(start, len(reason)):
                q = reason[k]
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select the next literal on the trail to resolve on.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            ilit = self._trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learned[0] = ilit ^ 1

        # Clause minimization: drop a literal whose reason clause is entirely
        # covered by the other learned literals (or level-0 facts).
        member = {q >> 1 for q in learned}
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[q >> 1]
            if reason is not None and all(
                (r >> 1) in member or self._level[r >> 1] == 0
                for r in reason[1:]
            ):
                continue
            minimized.append(q)
        learned = minimized

        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the literal with the second-highest level and move it to
            # slot 1 (watched position).
            max_index = 1
            max_level = self._level[learned[1] >> 1]
            for k in range(2, len(learned)):
                lvl = self._level[learned[k] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_index = k
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backtrack_level = max_level
        return learned, backtrack_level

    # ---------------------------------------------------------------- deciding

    def _pick_branch_var(self) -> int | None:
        # Assigned variables are skipped lazily; every unassigned variable is
        # guaranteed to be in the heap (inserted on creation, reinserted on
        # backtrack), so an empty heap means a complete assignment.
        order = self._order
        assign = self._assign
        while True:
            var = order.pop_max()
            if var is None:
                return None
            if assign[var] == _UNASSIGNED:
                return var

    # ------------------------------------------------------- learned DB mgmt

    def _clause_lbd(self, clause: list[int]) -> int:
        """Literal block distance: number of distinct (non-root) decision
        levels among the clause's literals, computed while they are still
        assigned."""
        levels = {self._level[q >> 1] for q in clause}
        levels.discard(0)
        return max(1, len(levels))

    def _reduce_learned(self) -> None:
        if len(self._learned) < 2:
            return
        locked = set()
        for var in range(1, self._num_vars + 1):
            reason = self._reason[var]
            if reason is not None:
                locked.add(id(reason))
        # Deletion candidates: non-binary, non-glue, not currently a reason.
        candidates = [
            i for i, clause in enumerate(self._learned)
            if len(clause) > 2
            and self._learned_lbd[i] > 2
            and id(clause) not in locked
        ]
        if not candidates:
            return
        # Delete the worse half: high LBD first, ties broken by low activity.
        candidates.sort(
            key=lambda i: (-self._learned_lbd[i], self._learned_activity[i])
        )
        to_delete = set(candidates[: len(candidates) // 2])
        if not to_delete:
            return
        kept_clauses: list[list[int]] = []
        kept_activity: list[float] = []
        kept_lbd: list[int] = []
        deleted: set[int] = set()
        for i, clause in enumerate(self._learned):
            if i in to_delete:
                deleted.add(id(clause))
                self.stats.deleted_clauses += 1
            else:
                kept_clauses.append(clause)
                kept_activity.append(self._learned_activity[i])
                kept_lbd.append(self._learned_lbd[i])
        self._learned = kept_clauses
        self._learned_activity = kept_activity
        self._learned_lbd = kept_lbd
        for ilit in range(2, 2 * self._num_vars + 2):
            self._watches[ilit] = [
                c for c in self._watches[ilit] if id(c) not in deleted
            ]

    # ------------------------------------------------------------------ solve

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        """Solve the current formula.

        Returns True (SAT), False (UNSAT), or None if ``conflict_limit`` was
        exhausted before a result was reached.
        """
        self.stats = SolverStats()
        self._model_assign = None
        self._model = None
        self._backtrack(0)
        if not self._ok:
            self.total_stats.merge(self.stats)
            return False
        if self._propagate() is not None:
            self._ok = False
            self.total_stats.merge(self.stats)
            return False

        iassumptions = []
        for lit in assumptions:
            if lit == 0:
                raise SolverError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
            iassumptions.append(_to_internal(lit))

        restart_count = 0
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_since_restart = 0
        max_learned = max(1000, len(self._clauses) // 2)
        total_conflicts = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self.total_stats.merge(self.stats)
                    if not iassumptions:
                        self._ok = False
                    return False
                learned, backtrack_level = self._analyze(conflict)
                # LBD must be computed while the literals are still assigned.
                lbd = self._clause_lbd(learned)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.total_stats.merge(self.stats)
                        return False
                else:
                    self._learned.append(learned)
                    self._learned_activity.append(0.0)
                    self._learned_lbd.append(lbd)
                    self._bump_clause(len(self._learned) - 1)
                    self._watch_clause(learned)
                    self.stats.learned_clauses += 1
                    if not self._enqueue(learned[0], learned):
                        self.total_stats.merge(self.stats)
                        return False
                self._decay_var_activity()
                self._cla_inc /= self._cla_decay
                if conflict_limit is not None and total_conflicts >= conflict_limit:
                    self._backtrack(0)
                    self.total_stats.merge(self.stats)
                    return None
                if conflicts_since_restart >= conflicts_until_restart:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_until_restart = 32 * _luby(restart_count)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue

            # No conflict: apply pending assumptions, then decide.
            if self._decision_level() < len(iassumptions):
                ilit = iassumptions[self._decision_level()]
                value = self._lit_value(ilit)
                if value == _TRUE:
                    # Already satisfied; open an empty decision level so the
                    # indexing of assumption levels stays aligned.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == _FALSE:
                    self._backtrack(0)
                    self.total_stats.merge(self.stats)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(ilit, None)
                continue

            var = self._pick_branch_var()
            if var is None:
                # All variables assigned: SAT.  Snapshot the assignment
                # (C-level list copy); model() builds the dict view lazily.
                self._model_assign = self._assign[:]
                self._backtrack(0)
                self.total_stats.merge(self.stats)
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, self._decision_level()
            )
            phase = self._phase[var]
            ilit = 2 * var + (0 if phase else 1)
            self._enqueue(ilit, None)

    # ------------------------------------------------------------- utilities

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        return len(self._learned)


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
    """One-shot convenience wrapper: returns a model or None if UNSAT."""
    solver = Solver(cnf)
    if solver.solve(assumptions=assumptions):
        return solver.model()
    return None
