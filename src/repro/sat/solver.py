"""A CDCL SAT solver.

This module stands in for the zChaff solver used by the original CheckFence
tool.  It implements the standard conflict-driven clause-learning algorithm:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS activity-based decisions with phase saving, backed by a lazy
  indexed binary heap (variables are reinserted on backtrack and popped
  lazily, so no ordering work is proportional to the variable count),
* Luby restarts,
* LBD-aware deletion of learned clauses ("glue" clauses with literal
  block distance <= 2 are never deleted),
* incremental solving under assumptions (used by the specification-mining
  loop, which repeatedly re-solves the same formula with extra blocking
  clauses), and
* failed-assumption cores (:meth:`Solver.failed_assumptions`), computed
  MiniSat-style by tracing the implication graph from the failing
  assumption back to the assumption decisions it depends on.

The implementation is pure Python and therefore much slower than a native
solver, but it is complete and deterministic, which is what the checker
needs.

Internally literals are encoded as ``2*var`` (positive) and ``2*var + 1``
(negative); the public interface uses DIMACS-style signed integers.

Clause storage is a flat ``array('i')`` arena instead of lists-of-lists:
a clause handle ``off`` points at its first literal, the literals occupy
``arena[off:arena[off - 1]]`` (the header word before them holds the
exclusive end index), and the two watched literals always sit at ``off``
and ``off+1`` — so the hot keep-watch path reads ``arena[off]`` with no
offset arithmetic at all.
Watch lists hold plain int offsets into the arena, and binary clauses are
specialized out of the arena entirely: ``_bin_watches[l]`` lists the
literals directly implied when ``l`` becomes true, so two-literal clauses
(the bulk of a CheckFence encoding) propagate without touching clause
storage at all.  Reasons are packed into one int per variable: ``0`` for
decisions/assumptions, a positive arena offset for long clauses, and
``-other_literal`` for binary implications.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Iterable, Sequence

from repro.core import limits
from repro.sat.cnf import CNF

_UNASSIGNED = -1
_FALSE = 0
_TRUE = 1

#: Arena compaction thresholds: compact at a restart once deletions have
#: wasted this many ints *and* the waste is a third of the arena.
_COMPACT_MIN_WASTE = 65536


def _to_internal(literal: int) -> int:
    """Convert a DIMACS literal to the internal encoding."""
    var = literal if literal > 0 else -literal
    return 2 * var + (0 if literal > 0 else 1)


def _to_external(ilit: int) -> int:
    """Convert an internal literal back to DIMACS convention."""
    var = ilit >> 1
    return var if (ilit & 1) == 0 else -var


@dataclass
class SolverStats:
    """Counters reported after each :meth:`Solver.solve` call.

    The ``vars_eliminated`` / ``clauses_subsumed`` / ``equiv_merged`` /
    ``preprocess_seconds`` counters are zero for a bare solver; they are
    filled in by :class:`repro.sat.simplify.SimplifyingBackend` when
    in-process CNF preprocessing runs in front of the solver.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    vars_eliminated: int = 0
    clauses_subsumed: int = 0
    equiv_merged: int = 0
    preprocess_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.deleted_clauses += other.deleted_clauses
        self.max_decision_level = max(
            self.max_decision_level, other.max_decision_level
        )
        self.vars_eliminated += other.vars_eliminated
        self.clauses_subsumed += other.clauses_subsumed
        self.equiv_merged += other.equiv_merged
        self.preprocess_seconds += other.preprocess_seconds

    def copy(self) -> "SolverStats":
        return SolverStats(
            decisions=self.decisions,
            propagations=self.propagations,
            conflicts=self.conflicts,
            restarts=self.restarts,
            learned_clauses=self.learned_clauses,
            deleted_clauses=self.deleted_clauses,
            max_decision_level=self.max_decision_level,
            vars_eliminated=self.vars_eliminated,
            clauses_subsumed=self.clauses_subsumed,
            equiv_merged=self.equiv_merged,
            preprocess_seconds=self.preprocess_seconds,
        )

    def since(self, earlier: "SolverStats") -> "SolverStats":
        """Counter delta between two cumulative snapshots (for attributing
        solver work to one query when a backend is shared across queries)."""
        return SolverStats(
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            conflicts=self.conflicts - earlier.conflicts,
            restarts=self.restarts - earlier.restarts,
            learned_clauses=self.learned_clauses - earlier.learned_clauses,
            deleted_clauses=self.deleted_clauses - earlier.deleted_clauses,
            max_decision_level=self.max_decision_level,
            vars_eliminated=self.vars_eliminated - earlier.vars_eliminated,
            clauses_subsumed=self.clauses_subsumed - earlier.clauses_subsumed,
            equiv_merged=self.equiv_merged - earlier.equiv_merged,
            preprocess_seconds=(
                self.preprocess_seconds - earlier.preprocess_seconds
            ),
        )

    def as_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
            "vars_eliminated": self.vars_eliminated,
            "clauses_subsumed": self.clauses_subsumed,
            "equiv_merged": self.equiv_merged,
            "preprocess_seconds": self.preprocess_seconds,
        }


class SolverError(RuntimeError):
    """Raised on malformed solver input (e.g. literal 0)."""


class VarOrderHeap:
    """Lazy binary max-heap of variables keyed by VSIDS activity.

    Built on :mod:`heapq` (C-implemented push/pop) with lazy entries:

    * a variable stays in the heap while assigned and is skipped when
      popped, so backtracking can blindly reinsert;
    * :meth:`insert` is a no-op for variables already present;
    * bumping an *unassigned* variable pushes a fresh entry and lets the
      stale one die on pop (variables bumped during conflict analysis are
      assigned, so duplicates are rare in practice);
    * activity rescaling invalidates stored keys, so the owner must call
      :meth:`rebuild` then (rescales are rare — every ~1e100 of activity).

    Entries are ``(-activity, -var)`` so :func:`heapq.heappop` yields the
    most active variable, ties broken deterministically toward the highest
    variable number (matching the stable sort the heap replaced).
    """

    __slots__ = ("_activity", "_heap", "_present")

    def __init__(self, activity: list[float]) -> None:
        self._activity = activity
        self._heap: list[tuple[float, int]] = []
        self._present: list[bool] = [False]

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return self._present[var]

    def grow(self, num_vars: int) -> None:
        while len(self._present) <= num_vars:
            self._present.append(False)

    def insert(self, var: int) -> None:
        if self._present[var]:
            return
        self._present[var] = True
        heappush(self._heap, (-self._activity[var], -var))

    def bump(self, var: int) -> None:
        """Refresh ``var``'s key after its activity increased."""
        if self._present[var]:
            heappush(self._heap, (-self._activity[var], -var))

    def pop_max(self) -> int | None:
        heap = self._heap
        present = self._present
        while heap:
            var = -heappop(heap)[1]
            if present[var]:
                present[var] = False
                return var
        return None

    def rebuild(self) -> None:
        """Re-key every live entry (after an activity rescale)."""
        activity = self._activity
        self._heap = [
            (-activity[var], -var)
            for var in range(1, len(self._present))
            if self._present[var]
        ]
        heapify(self._heap)


def _luby(index: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    This follows the MiniSat formulation: find the finite subsequence that
    contains ``index`` and the position within it.
    """
    size = 1
    level = 0
    while size < index + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        level -= 1
        index = index % size
    return 1 << level


class Solver:
    """An incremental CDCL SAT solver.

    Typical use::

        solver = Solver()
        solver.add_cnf(cnf)
        if solver.solve():
            model = solver.model()        # dict var -> bool
        solver.add_clause([-3, 5])        # incremental strengthening
        solver.solve(assumptions=[7])
        solver.failed_assumptions()       # core after an UNSAT solve
    """

    def __init__(self, cnf: CNF | None = None) -> None:
        self._num_vars = 0
        # Per-variable state, indexed by variable number (1-based, slot 0 unused).
        self._assign: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        # Packed reason: 0 = decision/assumption/none, >0 = arena offset,
        # <0 = binary implication (the negated value is the other literal).
        self._reason: list[int] = [0]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [True]
        # Clause arena: [end, lit, lit, ...] records back to back; a clause
        # handle points at its first literal and the header word before it
        # holds the exclusive end index.  Index 0 holds a sentinel so real
        # handles are always positive (the reason encoding relies on that).
        # Watched literals live at off / off+1.
        self._arena: array = array("i", [0])
        #: Offsets of original / learned (size >= 3) clauses in the arena.
        self._clauses: list[int] = []
        self._learned: list[int] = []
        self._cla_activity: dict[int, float] = {}
        self._cla_lbd: dict[int, int] = {}
        #: Arena ints wasted by deleted learned clauses (compaction trigger).
        self._wasted = 0
        # Watch lists indexed by internal literal: arena offsets for long
        # clauses, directly-implied literals for binary clauses.
        self._watches: list[list[int]] = [[], []]
        self._bin_watches: list[list[int]] = [[], []]
        self._num_binary = 0
        self._learned_binary = 0
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._seen = bytearray(1)  # conflict-analysis scratch, per variable
        self._bin_conflict = (0, 0)  # literals of the last binary conflict
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self._order = VarOrderHeap(self._activity)
        self.stats = SolverStats()
        self.total_stats = SolverStats()
        #: Assignment snapshot of the last SAT result (list indexed by
        #: variable; None before any SAT result).  The dict view is built
        #: lazily by :meth:`model`; :meth:`values_of` reads the snapshot
        #: directly, which the outcome-mining loops rely on.
        self._model_assign: list[int] | None = None
        self._model: dict[int, bool] | None = None
        #: Failed-assumption core of the last UNSAT solve (external literals).
        self._conflict_core: list[int] = []
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ setup

    def ensure_vars(self, num_vars: int) -> None:
        """Grow internal structures to accommodate ``num_vars`` variables."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(0)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])
            self._watches.append([])
            self._bin_watches.append([])
            self._bin_watches.append([])
            self._seen.append(0)
            self._order.grow(self._num_vars)
            self._order.insert(self._num_vars)

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses_trusted(cnf.clauses)

    def add_clauses_trusted(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-add clauses that are already free of duplicate literals and
        tautologies (as :class:`repro.sat.cnf.CNF` guarantees), skipping the
        per-clause normalization of :meth:`add_clause`.

        This is the clause-sync fast path used by
        :class:`repro.sat.backend.InternalBackend` when an encoded test
        streams its (pre-normalized) CNF into the solver.  Returns False if
        the solver became UNSAT.
        """
        self._backtrack(0)
        assign = self._assign
        level = self._level
        for clause in clauses:
            lits = []
            satisfied = False
            for lit in clause:
                if lit == 0:
                    raise SolverError("0 is not a valid literal")
                var = lit if lit > 0 else -lit
                if var > self._num_vars:
                    self.ensure_vars(var)
                    assign = self._assign
                    level = self._level
                ilit = (var << 1) | (lit < 0)
                value = assign[var]
                if value >= 0 and level[var] == 0:
                    if (value ^ (ilit & 1)) == 1:
                        satisfied = True
                        break
                    continue  # false at root level: drop the literal
                lits.append(ilit)
            if satisfied:
                continue
            if not lits:
                self._ok = False
                return False
            if len(lits) == 1:
                if not self._enqueue(lits[0], 0):
                    self._ok = False
                    return False
                if self._propagate() != 0:
                    self._ok = False
                    return False
            else:
                self._attach_clause(lits)
        return True

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the solver became trivially UNSAT."""
        lits = []
        seen = set()
        for lit in literals:
            if lit == 0:
                raise SolverError("0 is not a valid literal")
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            lits.append(_to_internal(lit))
        # Adding clauses is only supported at decision level 0 (the
        # incremental interface backtracks fully before each solve()).
        self._backtrack(0)
        # Remove literals already false at level 0; satisfied clause -> skip.
        filtered = []
        for ilit in lits:
            value = self._lit_value(ilit)
            if value == _TRUE and self._level[ilit >> 1] == 0:
                return True
            if value == _FALSE and self._level[ilit >> 1] == 0:
                continue
            filtered.append(ilit)
        lits = filtered
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], 0):
                self._ok = False
                return False
            if self._propagate() != 0:
                self._ok = False
                return False
            return True
        self._attach_clause(lits)
        return True

    def _attach_clause(self, lits: list[int]) -> None:
        """Store an original clause (len >= 2) and hook up its watches."""
        if len(lits) == 2:
            a, b = lits
            self._bin_watches[a ^ 1].append(b)
            self._bin_watches[b ^ 1].append(a)
            self._num_binary += 1
            return
        arena = self._arena
        off = len(arena) + 1
        arena.append(off + len(lits))
        arena.extend(lits)
        self._clauses.append(off)
        self._watches[lits[0] ^ 1].append(off)
        self._watches[lits[1] ^ 1].append(off)

    # --------------------------------------------------------------- querying

    def _lit_value(self, ilit: int) -> int:
        assigned = self._assign[ilit >> 1]
        if assigned == _UNASSIGNED:
            return _UNASSIGNED
        if ilit & 1:
            return _TRUE if assigned == _FALSE else _FALSE
        return assigned

    def value(self, var: int) -> bool | None:
        """Return the model value of ``var`` from the last SAT result."""
        assign = self._model_assign
        if assign is None or not 1 <= var < len(assign):
            return None
        return assign[var] == _TRUE

    def model(self) -> dict[int, bool]:
        """Return the satisfying assignment found by the last solve() call."""
        if self._model_assign is None:
            return {}
        if self._model is None:
            assign = self._model_assign
            self._model = {
                var: assign[var] == _TRUE for var in range(1, len(assign))
            }
        return dict(self._model)

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        """Model values of selected variables from the last SAT result,
        without materializing (or copying) the full model dict — the
        narrow accessor the outcome-enumeration hot path uses."""
        assign = self._model_assign
        if assign is None:
            return {}
        bound = len(assign)
        return {
            var: (assign[var] == _TRUE) if 0 < var < bound else False
            for var in variables
        }

    def failed_assumptions(self) -> list[int]:
        """Failed-assumption core of the last :meth:`solve` call.

        After ``solve(assumptions=...)`` returned False, this is a subset of
        those assumptions (external literals, not necessarily minimal) whose
        conjunction with the formula is already unsatisfiable.  An empty
        list means the formula is unsatisfiable on its own.  After a SAT or
        indeterminate result the list is empty.
        """
        return list(self._conflict_core)

    # ------------------------------------------------------------ assignments

    def _enqueue(self, ilit: int, reason: int) -> bool:
        var = ilit >> 1
        value = self._assign[var]
        if value >= 0:
            return (value ^ (ilit & 1)) == 1
        self._assign[var] = (ilit & 1) ^ 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = not (ilit & 1)
        self._trail.append(ilit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        order = self._order
        assign = self._assign
        reason = self._reason
        for ilit in reversed(self._trail[target:]):
            var = ilit >> 1
            assign[var] = _UNASSIGNED
            reason[var] = 0
            order.insert(var)
        del self._trail[target:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------ propagation

    def _propagate(self) -> int:
        """Unit propagation; returns a conflict token or 0.

        The token is the arena offset of the conflicting clause, or -1 for
        a binary-clause conflict (its two literals are in
        ``self._bin_conflict``).  This is the solver's hottest loop: clause
        literals are read straight out of the int arena, literal values are
        computed inline (``assign[var] ^ sign``: 1 = true, 0 = false,
        negative = unassigned), and binary clauses propagate through plain
        implication lists without touching the arena.
        """
        watches = self._watches
        bin_watches = self._bin_watches
        arena = self._arena
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        trail = self._trail
        dl = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        while qhead < len(trail):
            ilit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = ilit ^ 1
            # Binary implications first: no watch maintenance at all.
            for other in bin_watches[ilit]:
                var = other >> 1
                value = assign[var]
                if value < 0:
                    assign[var] = (other & 1) ^ 1
                    level[var] = dl
                    reason[var] = -false_lit
                    phase[var] = not (other & 1)
                    trail.append(other)
                elif (value ^ (other & 1)) != 1:
                    self._bin_conflict = (other, false_lit)
                    self._qhead = qhead
                    self.stats.propagations += props
                    return -1
            watch_list = watches[ilit]
            if not watch_list:
                continue
            new_watch_list = []
            append_kept = new_watch_list.append
            conflict_off = 0
            for off in watch_list:
                if conflict_off:
                    # A conflict was found earlier in this list; the
                    # remaining entries are untouched watches — keep them.
                    append_kept(off)
                    continue
                # Normalize so the false literal sits in the second watch
                # slot (off+1); the other watch is `first`.
                first = arena[off]
                if first == false_lit:
                    first = arena[off + 1]
                    arena[off] = first
                    arena[off + 1] = false_lit
                value = assign[first >> 1]
                if value >= 0 and (value ^ (first & 1)) == 1:
                    append_kept(off)
                    continue
                # Look for a replacement watch (any non-false literal).
                # Iterating a slice keeps the loop counter a small int and
                # reads literals through the C-level array iterator (an
                # index-based range here would churn boxed large ints).
                scan = off + 2
                found = 0
                for q in arena[scan: arena[off - 1]]:
                    vq = assign[q >> 1]
                    if vq < 0 or (vq ^ (q & 1)) == 1:
                        arena[off + 1] = q
                        arena[scan + found] = false_lit
                        watches[q ^ 1].append(off)
                        found = -1
                        break
                    found += 1
                if found < 0:
                    continue
                append_kept(off)
                if value >= 0:
                    # `first` is false too: conflict.  Finish keeping the
                    # rest of the list, then report.
                    conflict_off = off
                    continue
                var = first >> 1
                assign[var] = (first & 1) ^ 1
                level[var] = dl
                reason[var] = off
                phase[var] = not (first & 1)
                trail.append(first)
            watches[ilit] = new_watch_list
            if conflict_off:
                self._qhead = qhead
                self.stats.propagations += props
                return conflict_off
        self._qhead = qhead
        self.stats.propagations += props
        return 0

    # ------------------------------------------------------- conflict analysis

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._order.rebuild()
        self._order.bump(var)

    def _decay_var_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, off: int) -> None:
        activity = self._cla_activity
        activity[off] = value = activity[off] + self._cla_inc
        if value > 1e20:
            for o in activity:
                activity[o] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        ``conflict`` is the token returned by :meth:`_propagate`.  Returns
        the learned clause (internal literals, asserting literal first) and
        the backtrack level.
        """
        arena = self._arena
        level = self._level
        trail = self._trail
        reason_of = self._reason
        seen = self._seen
        learned: list[int] = [0]  # slot for the asserting literal
        counter = 0
        index = len(trail) - 1
        current_level = len(self._trail_lim)

        if conflict > 0:
            lits = arena[conflict: arena[conflict - 1]]
        else:
            lits = self._bin_conflict
        while True:
            for q in lits:
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Select the next literal on the trail to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            ilit = trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = reason_of[var]
            if reason > 0:
                # Skip the asserted literal (always the first slot).
                lits = arena[reason + 1: arena[reason - 1]]
            else:
                lits = (-reason,)
        learned[0] = ilit ^ 1

        # Clause minimization: drop a literal whose reason clause is entirely
        # covered by the other learned literals (or level-0 facts).  The
        # `seen` flags of learned[1:] are still set from the loop above, so
        # they double as the membership test.
        seen[learned[0] >> 1] = 1
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = reason_of[q >> 1]
            if reason == 0:
                minimized.append(q)
                continue
            if reason < 0:
                var = (-reason) >> 1
                if seen[var] or level[var] == 0:
                    continue
                minimized.append(q)
                continue
            redundant = True
            for k in range(reason + 1, arena[reason - 1]):
                var = arena[k] >> 1
                if not seen[var] and level[var] != 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        for q in learned:
            seen[q >> 1] = 0
        learned = minimized

        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the literal with the second-highest level and move it to
            # slot 1 (watched position).
            max_index = 1
            max_level = level[learned[1] >> 1]
            for k in range(2, len(learned)):
                lvl = level[learned[k] >> 1]
                if lvl > max_level:
                    max_level = lvl
                    max_index = k
            learned[1], learned[max_index] = learned[max_index], learned[1]
            backtrack_level = max_level
        return learned, backtrack_level

    # ---------------------------------------------------------------- deciding

    def _pick_branch_var(self) -> int | None:
        # Assigned variables are skipped lazily; every unassigned variable is
        # guaranteed to be in the heap (inserted on creation, reinserted on
        # backtrack), so an empty heap means a complete assignment.
        order = self._order
        assign = self._assign
        while True:
            var = order.pop_max()
            if var is None:
                return None
            if assign[var] == _UNASSIGNED:
                return var

    # ------------------------------------------------------- learned DB mgmt

    def _clause_lbd(self, clause: list[int]) -> int:
        """Literal block distance: number of distinct (non-root) decision
        levels among the clause's literals, computed while they are still
        assigned."""
        level = self._level
        levels = {level[q >> 1] for q in clause}
        levels.discard(0)
        return max(1, len(levels))

    def _reduce_learned(self) -> None:
        if len(self._learned) < 2:
            return
        reason = self._reason
        locked = set()
        for var in range(1, self._num_vars + 1):
            r = reason[var]
            if r > 0:
                locked.add(r)
        lbd = self._cla_lbd
        activity = self._cla_activity
        # Deletion candidates: non-glue, not currently a reason (arena
        # learned clauses always have >= 3 literals; binaries never enter).
        candidates = [
            off for off in self._learned
            if lbd[off] > 2 and off not in locked
        ]
        if not candidates:
            return
        # Delete the worse half: high LBD first, ties broken by low activity.
        candidates.sort(key=lambda off: (-lbd[off], activity[off]))
        to_delete = set(candidates[: len(candidates) // 2])
        if not to_delete:
            return
        arena = self._arena
        kept: list[int] = []
        for off in self._learned:
            if off in to_delete:
                self.stats.deleted_clauses += 1
                self._wasted += arena[off - 1] - off + 1
                del lbd[off]
                del activity[off]
            else:
                kept.append(off)
        self._learned = kept
        watches = self._watches
        for ilit in range(2, 2 * self._num_vars + 2):
            watch_list = watches[ilit]
            if watch_list:
                watches[ilit] = [
                    off for off in watch_list if off not in to_delete
                ]

    def _compact_arena(self) -> None:
        """Rewrite the arena without the holes left by deleted learned
        clauses, remapping clause offsets everywhere they are stored
        (clause lists, learned metadata, reasons, watch lists).  Only
        called at decision level 0."""
        arena = self._arena
        new_arena = array("i", [0])
        remap: dict[int, int] = {}
        for off in self._clauses:
            end = arena[off - 1]
            new_off = len(new_arena) + 1
            remap[off] = new_off
            new_arena.append(new_off + (end - off))
            new_arena.extend(arena[off:end])
        for off in self._learned:
            end = arena[off - 1]
            new_off = len(new_arena) + 1
            remap[off] = new_off
            new_arena.append(new_off + (end - off))
            new_arena.extend(arena[off:end])
        self._arena = new_arena
        self._clauses = [remap[off] for off in self._clauses]
        self._learned = [remap[off] for off in self._learned]
        self._cla_activity = {
            remap[off]: value for off, value in self._cla_activity.items()
        }
        self._cla_lbd = {
            remap[off]: value for off, value in self._cla_lbd.items()
        }
        reason = self._reason
        for var in range(1, self._num_vars + 1):
            r = reason[var]
            if r > 0:
                reason[var] = remap[r]
        watches: list[list[int]] = [[] for _ in range(2 * self._num_vars + 2)]
        for off in self._clauses:
            watches[new_arena[off] ^ 1].append(off)
            watches[new_arena[off + 1] ^ 1].append(off)
        for off in self._learned:
            watches[new_arena[off] ^ 1].append(off)
            watches[new_arena[off + 1] ^ 1].append(off)
        self._watches = watches
        self._wasted = 0

    # -------------------------------------------------------- UNSAT core

    def _analyze_final(self, ilit: int) -> list[int]:
        """Core of assumptions implying the negation of assumption ``ilit``
        (which was found false while applying assumptions), as external
        literals including ``ilit`` itself.  MiniSat's ``analyzeFinal``:
        walk the trail backwards from the implication graph rooted at
        ``ilit``'s variable; decisions reached at level > 0 are assumption
        literals (assumption levels are the only open levels here)."""
        seen = self._seen
        trail = self._trail
        reason_of = self._reason
        level = self._level
        arena = self._arena
        core = [_to_external(ilit)]
        seen[ilit >> 1] = 1
        for i in range(len(trail) - 1, -1, -1):
            q = trail[i]
            var = q >> 1
            if not seen[var]:
                continue
            seen[var] = 0
            if level[var] == 0:
                continue
            reason = reason_of[var]
            if reason == 0:
                core.append(_to_external(q))
            elif reason < 0:
                other = (-reason) >> 1
                if level[other] > 0:
                    seen[other] = 1
            else:
                for k in range(reason + 1, arena[reason - 1]):
                    u = arena[k] >> 1
                    if level[u] > 0:
                        seen[u] = 1
        return core

    # ------------------------------------------------------------------ solve

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        """Solve the current formula.

        Returns True (SAT), False (UNSAT), or None if ``conflict_limit`` was
        exhausted before a result was reached.
        """
        self.stats = SolverStats()
        self._model_assign = None
        self._model = None
        self._conflict_core = []
        self._backtrack(0)
        if not self._ok:
            self.total_stats.merge(self.stats)
            return False
        if self._propagate() != 0:
            self._ok = False
            self.total_stats.merge(self.stats)
            return False

        iassumptions = []
        for lit in assumptions:
            if lit == 0:
                raise SolverError("0 is not a valid assumption literal")
            self.ensure_vars(abs(lit))
            iassumptions.append(_to_internal(lit))

        restart_count = 0
        conflicts_until_restart = 32 * _luby(restart_count)
        conflicts_since_restart = 0
        max_learned = max(1000, self.num_clauses // 2)
        total_conflicts = 0
        # Resolved once per solve: the active resource budget, polled on
        # conflict-limit slices (every 64 conflicts) and on long
        # conflict-free decision runs, so a blown-up instance surfaces as
        # TIMEOUT/OOM instead of an unbounded solve.
        deadline = limits.active_deadline()
        decisions_since_poll = 0

        while True:
            conflict = self._propagate()
            if conflict != 0:
                self.stats.conflicts += 1
                total_conflicts += 1
                conflicts_since_restart += 1
                if len(self._trail_lim) == 0:
                    self.total_stats.merge(self.stats)
                    if not iassumptions:
                        self._ok = False
                    return False
                learned, backtrack_level = self._analyze(conflict)
                # LBD must be computed while the literals are still assigned.
                lbd = self._clause_lbd(learned)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], 0):
                        self.total_stats.merge(self.stats)
                        return False
                elif len(learned) == 2:
                    first, second = learned
                    self._bin_watches[first ^ 1].append(second)
                    self._bin_watches[second ^ 1].append(first)
                    self._learned_binary += 1
                    self.stats.learned_clauses += 1
                    if not self._enqueue(first, -second):
                        self.total_stats.merge(self.stats)
                        return False
                else:
                    arena = self._arena
                    off = len(arena) + 1
                    arena.append(off + len(learned))
                    arena.extend(learned)
                    self._learned.append(off)
                    self._cla_activity[off] = 0.0
                    self._cla_lbd[off] = lbd
                    self._bump_clause(off)
                    self._watches[learned[0] ^ 1].append(off)
                    self._watches[learned[1] ^ 1].append(off)
                    self.stats.learned_clauses += 1
                    if not self._enqueue(learned[0], off):
                        self.total_stats.merge(self.stats)
                        return False
                self._decay_var_activity()
                self._cla_inc /= self._cla_decay
                if conflict_limit is not None and total_conflicts >= conflict_limit:
                    self._backtrack(0)
                    self.total_stats.merge(self.stats)
                    return None
                if deadline is not None and total_conflicts & 63 == 0:
                    self._poll_deadline(deadline)
                if conflicts_since_restart >= conflicts_until_restart:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_until_restart = 32 * _luby(restart_count)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                    if (
                        self._wasted > _COMPACT_MIN_WASTE
                        and self._wasted * 3 > len(self._arena)
                    ):
                        self._compact_arena()
                if self.num_learned > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue

            # No conflict: apply pending assumptions, then decide.
            if len(self._trail_lim) < len(iassumptions):
                ilit = iassumptions[len(self._trail_lim)]
                value = self._lit_value(ilit)
                if value == _TRUE:
                    # Already satisfied; open an empty decision level so the
                    # indexing of assumption levels stays aligned.
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == _FALSE:
                    self._conflict_core = self._analyze_final(ilit)
                    self._backtrack(0)
                    self.total_stats.merge(self.stats)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(ilit, 0)
                continue

            var = self._pick_branch_var()
            if var is None:
                # All variables assigned: SAT.  Snapshot the assignment
                # (C-level list copy); model() builds the dict view lazily.
                self._model_assign = self._assign[:]
                self._backtrack(0)
                self.total_stats.merge(self.stats)
                return True
            self.stats.decisions += 1
            if deadline is not None:
                decisions_since_poll += 1
                if decisions_since_poll >= 4096:
                    decisions_since_poll = 0
                    self._poll_deadline(deadline)
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > self.stats.max_decision_level:
                self.stats.max_decision_level = len(self._trail_lim)
            phase = self._phase[var]
            ilit = 2 * var + (0 if phase else 1)
            self._enqueue(ilit, 0)

    def _poll_deadline(self, deadline) -> None:
        """Raise out of the search loop on budget breach, leaving the
        solver at decision level 0 with its counters merged so it stays
        reusable (e.g. after a conservative retry without the budget)."""
        if deadline.expired() or deadline.memory_exceeded():
            self._backtrack(0)
            self.total_stats.merge(self.stats)
            self.stats = SolverStats()
            deadline.check()

    # ------------------------------------------------------------- utilities

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses) + self._num_binary

    @property
    def num_learned(self) -> int:
        return len(self._learned) + self._learned_binary


def solve_cnf(cnf: CNF, assumptions: Sequence[int] = ()) -> dict[int, bool] | None:
    """One-shot convenience wrapper: returns a model or None if UNSAT."""
    solver = Solver(cnf)
    if solver.solve(assumptions=assumptions):
        return solver.model()
    return None
