"""In-process CNF simplification (SatELite-style preprocessing).

The Tseitin lowering in :mod:`repro.sat.circuit` mints a fresh variable per
AND gate, so a large fraction of the variables that reach the solver are
*functionally defined*: they occur in exactly the clauses that define them
plus a handful of uses, which is the textbook target of the
SatELite/MiniSat preprocessing lineage.  This module implements that
preprocessing between lowering and solving:

* **unit propagation** to fixpoint (root-level facts are applied and
  removed from every clause);
* **pure-literal elimination** (a variable occurring with one polarity is
  assigned that polarity and its clauses dropped — handled as a variable
  elimination with an empty resolvent set, so reconstruction and
  reinstatement work uniformly);
* **equivalent-literal substitution**: strongly connected components of the
  binary implication graph are collapsed onto one representative;
* **subsumption** and **self-subsuming resolution**, driven by occurrence
  lists and 64-bit clause signatures;
* **bounded variable elimination** (clause distribution), accepted only
  when the resolvent set is no larger than the clauses it replaces.

Everything the simplifier removes is recorded on a **model-reconstruction
stack**, so a model of the simplified formula is rebuilt into a model of
the *original* formula before anything downstream decodes it.

Incrementality and the frozen-set contract
------------------------------------------

The checking pipeline keeps adding clauses after the first solve (blocking
clauses during outcome mining, guard definitions, lazily lowered
assumption terms).  Two mechanisms keep that sound:

* a **frozen set** of variables that outside code will mention again
  (observation-slot bits, memory-order variables needed for counterexample
  decoding, assumption/guard handles).  Frozen variables are never
  eliminated, never pure-literal assigned and never substituted away; they
  may still be *fixed* by unit propagation, which is a root-level
  consequence and therefore survives any future clause additions.
* **reinstatement**: if an incoming clause or assumption mentions an
  eliminated variable anyway, the clauses removed at its elimination are
  replayed back into the solver (recursively, since they may mention
  variables eliminated later), restoring full logical strength before the
  new clause lands.  The frozen set keeps the common paths cheap; the
  reinstatement path makes the exotic ones correct.

Incremental clauses and assumptions are *mapped through the live
simplified state* (substitutions and fixed values applied, satisfied
clauses dropped, new units recorded) rather than bypassing it, so the
solver never sees a literal the preprocessor already resolved.

:class:`SimplifyingBackend` wraps any :class:`repro.sat.backend`
backend with this machinery and additionally *compacts* the variable
space: surviving variables are renumbered densely for the inner solver,
which shrinks both the internal solver's per-variable structures and the
DIMACS files shipped to external solvers.

Economics: the pipeline is pure Python, so on small formulas it costs
more than the solver work it saves.  The backend therefore *engages* only
when the formula at first solve has at least
``CHECKFENCE_SIMPLIFY_MIN_CLAUSES`` clauses (default
:data:`_DEFAULT_MIN_CLAUSES`); below that it delegates to the inner
backend untouched.  Setting the variable to ``0`` forces preprocessing on
every formula — the differential tests and ``benchmarks/bench_simplify``
do exactly that.
"""

from __future__ import annotations

import os
import time
from array import array
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core import limits


def simplify_enabled(flag: bool | None = None) -> bool:
    """Resolve the simplification knob: an explicit flag wins, otherwise
    the ``CHECKFENCE_SIMPLIFY`` environment variable.  Unlike the other
    repo env flags this one is *default-on*: only the literal ``"0"``
    disables it (``--no-simplify`` / ``CHECKFENCE_SIMPLIFY=0``)."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("CHECKFENCE_SIMPLIFY", "1") != "0"


#: Below this many clauses the preprocessing pass costs more wall-clock
#: than the solver work it saves (the pipeline is pure Python while the
#: CDCL hot loop is already tuned), so :class:`SimplifyingBackend`
#: bypasses itself and delegates straight to the inner backend.  The
#: threshold was measured on the Fig. 10 catalog: 20-35k-clause instances
#: solve in ~0.1-0.5s, which a ~0.3s preprocessing pass cannot repay,
#: while the largest tests (lazylist/Saaarr, msn/Tpc6: 100k+ clauses)
#: gain more solving time than the pass costs.
_DEFAULT_MIN_CLAUSES = 50_000

#: Engagement threshold for formulas known to feed a solve/block
#: enumeration loop (outcome mining): one preprocessing pass amortizes
#: over every iteration, so it pays on much smaller formulas than a
#: one-or-two-query check does.  See
#: :meth:`repro.encoding.formula.EncodedTest.expect_enumeration`.
ENUMERATION_MIN_CLAUSES = 20_000


def simplify_min_clauses(value: int | None = None) -> int:
    """Resolve the engagement threshold: an explicit value wins, then the
    ``CHECKFENCE_SIMPLIFY_MIN_CLAUSES`` environment variable (``0`` forces
    preprocessing on every formula — what the equivalence tests and
    ``bench_simplify`` use), then the measured default."""
    if value is not None:
        return max(0, value)
    raw = os.environ.get("CHECKFENCE_SIMPLIFY_MIN_CLAUSES", "").strip()
    if not raw:
        return _DEFAULT_MIN_CLAUSES
    try:
        return max(0, int(raw))
    except ValueError as exc:
        raise ValueError(
            "CHECKFENCE_SIMPLIFY_MIN_CLAUSES must be an integer, "
            f"got {raw!r}"
        ) from exc


@dataclass
class SimplifyStats:
    """Counters produced by one preprocessing run (plus the incremental
    additions mapped through it afterwards)."""

    #: Variables removed by bounded variable elimination or pure literals.
    vars_eliminated: int = 0
    #: Clauses deleted by (self-)subsumption.
    clauses_subsumed: int = 0
    #: Variables substituted away by equivalent-literal merging.
    equiv_merged: int = 0
    #: Root-level facts discovered by unit propagation.
    units_fixed: int = 0
    #: Of ``vars_eliminated``, how many were pure literals.
    pure_literals: int = 0
    #: Literals removed from clauses by self-subsuming resolution.
    literals_strengthened: int = 0
    #: Eliminated variables replayed back in (frozen-set misses).
    vars_reinstated: int = 0
    clauses_before: int = 0
    clauses_after: int = 0
    vars_before: int = 0
    vars_after: int = 0
    preprocess_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "vars_eliminated": self.vars_eliminated,
            "clauses_subsumed": self.clauses_subsumed,
            "equiv_merged": self.equiv_merged,
            "units_fixed": self.units_fixed,
            "pure_literals": self.pure_literals,
            "literals_strengthened": self.literals_strengthened,
            "vars_reinstated": self.vars_reinstated,
            "clauses_before": self.clauses_before,
            "clauses_after": self.clauses_after,
            "vars_before": self.vars_before,
            "vars_after": self.vars_after,
            "preprocess_seconds": self.preprocess_seconds,
        }

    @property
    def clause_reduction(self) -> float:
        """Fraction of clauses removed by preprocessing (0.0 when it never
        ran or removed nothing)."""
        if self.clauses_before <= 0:
            return 0.0
        return 1.0 - self.clauses_after / self.clauses_before


class SimplifyError(RuntimeError):
    """Internal invariant violation in the simplifier."""


#: Bounded-variable-elimination limits: a variable is only considered when
#: its total occurrence count and the product of its polarity counts are
#: small (SatELite's "clause distribution" heuristic), and an elimination
#: is only committed when the non-tautological resolvents do not outnumber
#: the clauses they replace and none of them is longer than _BVE_MAX_LEN.
_BVE_MAX_OCCS = 20
_BVE_MAX_PRODUCT = 80
_BVE_MAX_LEN = 16
#: Self-subsuming resolution is only attempted from clauses this short
#: (Tseitin clauses are short; long clauses rarely strengthen anything)
#: and against occurrence lists this small (popular literals would make
#: the quadratic scan dominate the whole preprocessing run).
_SSR_MAX_LEN = 8
_SSR_MAX_OCCS = 30
#: Backward subsumption skips clauses whose least-common literal still
#: occurs more often than this (the scan would be near-linear in the
#: formula for no measurable reduction).
_SUBSUME_MAX_OCCS = 400


def _sig(lits: Iterable[int]) -> int:
    """64-bit Bloom signature of a clause (for subsumption filtering)."""
    signature = 0
    for lit in lits:
        signature |= 1 << (((lit << 1) ^ (lit >> 63)) & 63)
    return signature


class Simplifier:
    """The live preprocessing state shared by a :class:`SimplifyingBackend`.

    The lifecycle is: buffer clauses, :meth:`preprocess` once (everything
    before the first solve), then map every later clause through
    :meth:`map_clause` and every assumption through :meth:`map_literal`
    (as :meth:`SimplifyingBackend.solve` does).  Models of the simplified
    formula are rebuilt with :meth:`reconstruct`.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.frozen: set[int] = set()
        #: var -> root-level value (True/False).
        self.fixed: dict[int, bool] = {}
        #: var -> signed representative literal (fully resolved at the time
        #: of entry; map_literal chases chains that form later).
        self.subst: dict[int, int] = {}
        #: var -> clauses removed at its elimination (original literals,
        #: post-substitution), still needed for reconstruction/reinstatement.
        self.eliminated: dict[int, list[tuple[int, ...]]] = {}
        #: Chronological reconstruction stack: ("elim", var) / ("subst", var).
        self.stack: list[tuple[str, int]] = []
        self.unsat = False
        self.stats = SimplifyStats()
        self.preprocessed = False
        # Transient working state (only live during preprocess()).
        self._clauses: list[list[int] | None] = []
        self._occs: list[list[int]] = []
        #: Bumped whenever a clause becomes binary; the equivalence pass
        #: is skipped when no new implications appeared since it last ran.
        self._binary_epoch = 0
        self._equiv_seen_epoch = -1

    # ------------------------------------------------------------- plumbing

    def ensure_vars(self, num_vars: int) -> None:
        self.num_vars = max(self.num_vars, num_vars)

    def freeze(self, variables: Iterable[int]) -> None:
        self.frozen.update(variables)

    def is_eliminated(self, var: int) -> bool:
        return var in self.eliminated

    def map_literal(self, lit: int) -> int | bool:
        """Resolve a literal through substitutions and fixed values.

        Returns the mapped literal, or True/False when the literal is a
        root-level constant.  Eliminated variables are returned as-is —
        callers must reinstate them first (see SimplifyingBackend).
        """
        var = lit if lit > 0 else -lit
        sign = lit > 0
        while var in self.subst:
            rep = self.subst[var]
            sign = sign == (rep > 0)
            var = rep if rep > 0 else -rep
        value = self.fixed.get(var)
        if value is not None:
            return value == sign
        return var if sign else -var

    # ----------------------------------------------------------- preprocess

    def preprocess(self, clauses: Sequence[Sequence[int]]) -> list[tuple[int, ...]]:
        """Simplify ``clauses`` (the whole formula so far); returns the
        surviving clauses.  May be called once per Simplifier."""
        if self.preprocessed:
            raise SimplifyError("preprocess() may only run once")
        self.preprocessed = True
        start = time.perf_counter()
        # Clauses may have arrived through the bulk path without variable
        # accounting; re-derive the bound in one sweep.
        highest = max(
            (abs(lit) for clause in clauses for lit in clause), default=0
        )
        self.num_vars = max(self.num_vars, highest)
        self.stats.clauses_before = len(clauses)
        self.stats.vars_before = self.num_vars

        # Working clause store; None marks a deleted clause.
        self._clauses = [list(c) for c in clauses]
        units: list[int] = []
        for index, clause in enumerate(self._clauses):
            if not clause:
                self.unsat = True
            elif len(clause) == 1:
                units.append(clause[0])
        if not self.unsat:
            self._build_occs()
            self._propagate_units(units)
        # Fixed two-pass pipeline: the full (and costly) subsumption sweep
        # runs once; the second pass picks up the equivalences and
        # eliminations the first one cascaded into.  Each stage boundary
        # (and a masked poll inside the two heavy rounds) checks the
        # active resource budget, so a timeout can cut preprocessing
        # short instead of letting it overrun the whole cell budget.
        if not self.unsat:
            limits.check_deadline()
            self._substitute_equivalents()
        if not self.unsat:
            limits.check_deadline()
            self._subsume_round()
        if not self.unsat:
            limits.check_deadline()
            self._eliminate_round()
        if not self.unsat:
            limits.check_deadline()
            self._substitute_equivalents()
        if not self.unsat:
            limits.check_deadline()
            self._eliminate_round()

        survivors: list[tuple[int, ...]] = []
        if not self.unsat:
            for clause in self._clauses:
                if clause is not None:
                    survivors.append(tuple(clause))
        self._clauses = []
        self._occs = []
        self.stats.clauses_after = len(survivors)
        live = {abs(lit) for clause in survivors for lit in clause}
        self.stats.vars_after = len(live)
        self.stats.preprocess_seconds += time.perf_counter() - start
        return survivors

    # Occurrence lists are indexed by literal code 2*var | (lit < 0); they
    # may contain stale clause indices (deleted or rewritten clauses), so
    # every reader re-checks membership.

    def _code(self, lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit) << 1) | 1

    def _build_occs(self) -> None:
        occs: list[list[int]] = [[] for _ in range(2 * self.num_vars + 2)]
        for index, clause in enumerate(self._clauses):
            if clause is None:
                continue
            for lit in clause:
                occs[(lit << 1) if lit > 0 else ((-lit) << 1) | 1].append(index)
        self._occs = occs

    def _occ_list(self, lit: int) -> list[int]:
        """Live clause indices containing ``lit`` (compacts in place)."""
        code = self._code(lit)
        raw = self._occs[code]
        live = [
            i for i in raw
            if self._clauses[i] is not None and lit in self._clauses[i]
        ]
        self._occs[code] = live
        return live

    def _propagate_units(self, units: list[int]) -> None:
        """Apply root-level facts to fixpoint (queue-driven)."""
        queue = list(units)
        while queue and not self.unsat:
            lit = queue.pop()
            var = abs(lit)
            value = lit > 0
            seen = self.fixed.get(var)
            if seen is not None:
                if seen != value:
                    self.unsat = True
                continue
            self.fixed[var] = value
            self.stats.units_fixed += 1
            for index in self._occ_list(lit):
                self._clauses[index] = None  # satisfied
            for index in self._occ_list(-lit):
                clause = self._clauses[index]
                if clause is None:
                    continue
                clause.remove(-lit)
                if not clause:
                    self.unsat = True
                    return
                if len(clause) == 1:
                    queue.append(clause[0])
                elif len(clause) == 2:
                    self._binary_epoch += 1

    # --------------------------------------------- equivalent literals (SCC)

    def _substitute_equivalents(self) -> bool:
        """Collapse SCCs of the binary implication graph.

        Returns True when at least one variable was substituted away."""
        if self._binary_epoch == self._equiv_seen_epoch:
            return False  # no new implications since the last pass
        self._equiv_seen_epoch = self._binary_epoch
        # Adjacency over literal codes: binary clause (a, b) gives the
        # implications !a -> b and !b -> a.
        size = 2 * self.num_vars + 2
        adj: list[list[int]] = [[] for _ in range(size)]
        any_binary = False
        for clause in self._clauses:
            if clause is None or len(clause) != 2:
                continue
            a, b = clause
            adj[self._code(-a)].append(self._code(b))
            adj[self._code(-b)].append(self._code(a))
            any_binary = True
        if not any_binary:
            return False

        # Iterative Tarjan SCC over the literal graph.
        index_of = [0] * size
        low = [0] * size
        on_stack = bytearray(size)
        scc_of = [-1] * size
        tarjan_stack: list[int] = []
        counter = 1
        scc_count = 0
        scc_members: list[list[int]] = []
        for root in range(2, size):
            # Every node of a nontrivial SCC has an outgoing edge, so
            # edge-less roots need no visit at all.
            if (
                not adj[root]
                or index_of[root]
                or self.fixed.get(root >> 1) is not None
            ):
                continue
            work = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    tarjan_stack.append(node)
                    on_stack[node] = 1
                advanced = False
                neighbors = adj[node]
                while child_index < len(neighbors):
                    succ = neighbors[child_index]
                    child_index += 1
                    if not index_of[succ]:
                        work[-1] = (node, child_index)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack[succ]:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index_of[node]:
                    members = []
                    while True:
                        member = tarjan_stack.pop()
                        on_stack[member] = 0
                        scc_of[member] = scc_count
                        members.append(member)
                        if member == node:
                            break
                    scc_members.append(members)
                    scc_count += 1
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        changed = False
        new_units: list[int] = []
        for members in scc_members:
            if len(members) < 2:
                continue
            variables = {code >> 1 for code in members}
            if len(variables) < len(members):
                # Some variable appears with both polarities: x <-> !x.
                self.unsat = True
                return True
            signs = {code >> 1: (code & 1) == 0 for code in members}
            fixed_member = next(
                (v for v in variables if v in self.fixed), None
            )
            if fixed_member is not None:
                # The whole class collapses to a constant.
                base = self.fixed[fixed_member] == signs[fixed_member]
                for var in variables:
                    if var not in self.fixed:
                        new_units.append(var if signs[var] == base else -var)
                continue
            # Representative: prefer a frozen variable (frozen variables
            # are never substituted away), then the lowest number.
            frozen_members = sorted(v for v in variables if v in self.frozen)
            rep = frozen_members[0] if frozen_members else min(variables)
            rep_sign = signs[rep]
            for var in sorted(variables):
                # Each class appears twice (once mirrored); the subst
                # guard makes the second visit a no-op.
                if var == rep or var in self.frozen or var in self.subst:
                    continue
                # var-literal == rep-literal; express var in terms of rep.
                target = rep if signs[var] == rep_sign else -rep
                self.subst[var] = target
                self.stack.append(("subst", var))
                self.stats.equiv_merged += 1
                changed = True
        if not changed:
            # No substitutions: occurrence lists are still valid, so any
            # constant-collapsed classes propagate directly.
            if new_units:
                self._propagate_units(new_units)
            return bool(new_units)

        # Rewrite the clauses that mention a substituted variable (their
        # indices are exactly the occurrence lists of those variables).
        affected: set[int] = set()
        for var in self.subst:
            affected.update(self._occs[var << 1])
            affected.update(self._occs[(var << 1) | 1])
        rewritten_units: list[int] = list(new_units)
        for index in sorted(affected):
            clause = self._clauses[index]
            if clause is None:
                continue
            out: list[int] = []
            satisfied = False
            touched = False
            for lit in clause:
                var = abs(lit)
                if var not in self.subst and self.fixed.get(var) is None:
                    if -lit in out:
                        satisfied = True  # tautology after an earlier merge
                        break
                    if lit not in out:
                        out.append(lit)
                    continue
                touched = True
                mapped = self.map_literal(lit)
                if mapped is True:
                    satisfied = True
                    break
                if mapped is False:
                    continue
                if -mapped in out:
                    satisfied = True  # tautology after merging
                    break
                if mapped not in out:
                    out.append(mapped)
            if not touched and not satisfied:
                continue
            if satisfied:
                self._clauses[index] = None
                continue
            if not out:
                self.unsat = True
                return True
            self._clauses[index] = out
            if len(out) == 1:
                rewritten_units.append(out[0])
        self._build_occs()
        if rewritten_units:
            self._propagate_units(rewritten_units)
        return True

    # --------------------------------------------------- subsumption and SSR

    def _subsume_round(self) -> bool:
        """One pass of subsumption + self-subsuming resolution.

        Stale occurrence entries (clauses deleted or strengthened since
        the lists were built) are harmless: the exact frozenset checks
        reject them, so no compaction pass is needed in this hot loop.
        """
        clauses = self._clauses
        occs = self._occs
        count = len(clauses)
        # One flat 64-bit signature per clause slot: the subsumption scan
        # reads these by index millions of times, so a packed array('Q')
        # (one contiguous buffer, unboxed stores) beats a list of ints.
        sigs = array("Q", bytes(8 * count))
        csets: list[frozenset | None] = [None] * count
        live: list[int] = []
        for index, clause in enumerate(clauses):
            if clause is None:
                continue
            live.append(index)
            signature = 0
            for lit in clause:
                signature |= 1 << (((lit << 1) ^ (lit >> 63)) & 63)
            sigs[index] = signature
            csets[index] = frozenset(clause)
        live.sort(key=lambda i: len(clauses[i]))
        changed = False
        new_units: list[int] = []
        scanned = 0
        for index in live:
            clause = clauses[index]
            if clause is None:
                continue
            scanned += 1
            if scanned & 2047 == 0:
                limits.check_deadline()
            c_sig = sigs[index]
            c_set = csets[index]
            c_len = len(clause)
            # Subsumption: kill every live clause that is a superset of C,
            # scanning the occurrence list of C's least-common literal.
            best_list = None
            best_len = _SUBSUME_MAX_OCCS + 1
            for lit in clause:
                olist = occs[(lit << 1) if lit > 0 else ((-lit) << 1) | 1]
                if len(olist) < best_len:
                    best_list = olist
                    best_len = len(olist)
            if best_list is not None:
                for other in best_list:
                    if other == index or other >= count:
                        continue
                    d_clause = clauses[other]
                    if d_clause is None or len(d_clause) < c_len:
                        continue
                    if c_sig & ~sigs[other]:
                        continue
                    if not (c_set <= csets[other]):
                        continue
                    clauses[other] = None
                    self.stats.clauses_subsumed += 1
                    changed = True
            # Self-subsuming resolution: C = C0 | l, D = D0 | !l with
            # C0 <= D0 lets us drop !l from D.
            if c_len > _SSR_MAX_LEN or c_len < 2:
                continue
            for lit in clause:
                olist = occs[(lit << 1) | 1 if lit > 0 else ((-lit) << 1)]
                if not olist or len(olist) > _SSR_MAX_OCCS:
                    continue
                # Approximate signature of C \ {l}: clearing l's bit may
                # also clear a colliding literal's bit, which only lets
                # more candidates through to the exact check below.
                rest_sig = c_sig & ~(
                    1 << (((lit << 1) ^ (lit >> 63)) & 63)
                )
                rest = None
                for other in olist:
                    if other == index or other >= count:
                        continue
                    d_clause = clauses[other]
                    if d_clause is None or len(d_clause) < c_len:
                        continue
                    if rest_sig & ~sigs[other]:
                        continue
                    d_set = csets[other]
                    if -lit not in d_set:
                        continue  # stale: the literal was already removed
                    if rest is None:
                        rest = c_set - {lit}
                    if not (rest <= d_set):
                        continue
                    d_clause.remove(-lit)
                    self.stats.literals_strengthened += 1
                    changed = True
                    if not d_clause:
                        self.unsat = True
                        return True
                    sigs[other] = _sig(d_clause)
                    csets[other] = frozenset(d_clause)
                    if len(d_clause) == 1:
                        new_units.append(d_clause[0])
                    elif len(d_clause) == 2:
                        self._binary_epoch += 1
        if new_units:
            self._propagate_units(new_units)
        return changed

    # --------------------------------------------- bounded variable elim

    def _eliminate_round(self) -> bool:
        """Pure literals plus bounded variable elimination."""
        changed = False
        order = sorted(
            (
                var for var in range(1, self.num_vars + 1)
                if var not in self.frozen
                and var not in self.fixed
                and var not in self.subst
                and var not in self.eliminated
            ),
            key=lambda var: (
                len(self._occs[var << 1]) + len(self._occs[(var << 1) | 1])
            ),
        )
        new_units: list[int] = []
        scanned = 0
        for var in order:
            if self.unsat:
                return True
            scanned += 1
            if scanned & 2047 == 0:
                limits.check_deadline()
            if self.fixed.get(var) is not None:
                continue
            pos = self._occ_list(var)
            neg = self._occ_list(-var)
            if not pos and not neg:
                continue  # variable no longer occurs; leave it free
            if not pos or not neg:
                # Pure literal: elimination with an empty resolvent set.
                removed = pos or neg
                self.eliminated[var] = [
                    tuple(self._clauses[i]) for i in removed
                ]
                self.stack.append(("elim", var))
                for i in removed:
                    self._clauses[i] = None
                self.stats.vars_eliminated += 1
                self.stats.pure_literals += 1
                changed = True
                continue
            if (
                len(pos) + len(neg) > _BVE_MAX_OCCS
                or len(pos) * len(neg) > _BVE_MAX_PRODUCT
            ):
                continue
            resolvents = self._distribute(pos, neg, var)
            if resolvents is None:
                continue
            # Commit: record removed clauses, delete them, add resolvents.
            self.eliminated[var] = [
                tuple(self._clauses[i]) for i in pos + neg
            ]
            self.stack.append(("elim", var))
            for i in pos + neg:
                self._clauses[i] = None
            for resolvent in resolvents:
                index = len(self._clauses)
                self._clauses.append(resolvent)
                for lit in resolvent:
                    self._occs[self._code(lit)].append(index)
                if len(resolvent) == 1:
                    new_units.append(resolvent[0])
                elif len(resolvent) == 2:
                    self._binary_epoch += 1
            self.stats.vars_eliminated += 1
            changed = True
        if new_units and not self.unsat:
            self._propagate_units(new_units)
        return changed

    def _distribute(
        self, pos: list[int], neg: list[int], var: int
    ) -> list[list[int]] | None:
        """Non-tautological resolvents of pos x neg on ``var``, or None when
        the elimination would grow the formula (the distribution limit)."""
        limit = len(pos) + len(neg)
        out: list[list[int]] = []
        for pi in pos:
            p_clause = self._clauses[pi]
            p_rest = [lit for lit in p_clause if lit != var]
            p_set = set(p_rest)
            for ni in neg:
                n_clause = self._clauses[ni]
                tautology = False
                resolvent = list(p_rest)
                for lit in n_clause:
                    if lit == -var:
                        continue
                    if -lit in p_set:
                        tautology = True
                        break
                    if lit not in p_set:
                        resolvent.append(lit)
                if tautology:
                    continue
                if len(resolvent) > _BVE_MAX_LEN:
                    return None
                out.append(resolvent)
                if len(out) > limit:
                    return None
        return out

    # --------------------------------------------------------- incremental

    def map_clause(self, literals: Sequence[int]) -> list[int] | bool:
        """Map an incoming clause through the simplified state.

        Returns the mapped clause, True when it is already satisfied at
        root level, or False when it is empty (the formula became UNSAT).
        Callers must reinstate eliminated variables first."""
        out: list[int] = []
        seen: set[int] = set()
        for lit in literals:
            mapped = self.map_literal(lit)
            if mapped is True:
                return True
            if mapped is False:
                continue
            if -mapped in seen:
                return True  # tautology
            if mapped not in seen:
                seen.add(mapped)
                out.append(mapped)
        if not out:
            return False
        return out

    def record_unit(self, lit: int) -> None:
        """Remember a root-level fact learned after preprocessing (a unit
        blocking clause), so future mappings constant-fold it."""
        var = abs(lit)
        value = lit > 0
        seen = self.fixed.get(var)
        if seen is not None:
            if seen != value:
                self.unsat = True
            return
        self.fixed[var] = value

    def reinstatement_clauses(self, var: int) -> list[tuple[int, ...]]:
        """Remove ``var`` from the eliminated set and return the clauses
        that must be replayed into the solver.  The caller re-adds them
        through the normal mapping path (they may mention variables
        eliminated later, which then reinstate recursively)."""
        clauses = self.eliminated.pop(var)
        self.stack = [
            entry for entry in self.stack if entry != ("elim", var)
        ]
        self.stats.vars_reinstated += 1
        return clauses

    # ------------------------------------------------------- reconstruction

    def reconstruct(self, model: dict[int, bool]) -> dict[int, bool]:
        """Extend a model of the simplified formula to the original
        variables (in place and returned).

        Replays the reconstruction stack in reverse chronological order:
        an entry's dependencies were removed *later* (or survived), so they
        are already valued when the entry is replayed."""
        for var, value in self.fixed.items():
            model[var] = value
        for kind, var in reversed(self.stack):
            if kind == "subst":
                rep = self.subst[var]
                value = model.get(abs(rep), False)
                model[var] = value if rep > 0 else not value
                continue
            # Eliminated: choose the polarity that satisfies every stored
            # clause (the resolvents guarantee one exists).
            value = None
            for clause in self.eliminated.get(var, ()):
                own = None
                satisfied = False
                for lit in clause:
                    lit_var = abs(lit)
                    if lit_var == var:
                        own = lit > 0
                        continue
                    lit_value = model.get(lit_var, False)
                    if lit_value == (lit > 0):
                        satisfied = True
                        break
                if satisfied or own is None:
                    continue
                if value is None:
                    value = own
                elif value != own:  # pragma: no cover - BVE invariant
                    raise SimplifyError(
                        f"inconsistent reconstruction for variable {var}"
                    )
            model[var] = value if value is not None else False
        for var in range(1, self.num_vars + 1):
            if var not in model:
                model[var] = False
        return model


class SimplifyingBackend:
    """A :class:`repro.sat.backend.SolverBackend` that preprocesses the
    formula before handing it to an inner backend.

    The first :meth:`solve` runs the full SatELite-style pipeline on every
    clause buffered so far; later clause additions and assumptions are
    mapped through the live simplified state (with reinstatement when they
    mention an eliminated variable).  Surviving variables are renumbered
    densely for the inner solver; models are reconstructed back onto the
    original variable space.
    """

    def __init__(self, inner, min_clauses: int | None = None) -> None:
        self.inner = inner
        self.simplifier = Simplifier()
        #: Engagement threshold: formulas smaller than this at first solve
        #: are delegated to the inner backend untouched (see
        #: :data:`_DEFAULT_MIN_CLAUSES` for the economics).
        self.min_clauses = simplify_min_clauses(min_clauses)
        self._bypass = False
        self._pending: list[tuple[int, ...]] = []
        #: Original var -> inner (dense) var, and its inverse.
        self._to_inner: dict[int, int] = {}
        self._from_inner: list[int] = [0]
        self._unsat = False
        #: Inner assumption literal -> original literal (last solve), and
        #: an override core for UNSAT verdicts decided before the inner
        #: solver ran (constant-false assumption).
        self._assumption_origin: dict[int, int] = {}
        self._forced_core: list[int] | None = None

    # ------------------------------------------------------------ clause I/O

    @property
    def name(self) -> str:
        """``simplify+<inner>`` while preprocessing is (or may yet be)
        active; the bare inner name once the backend has bypassed itself
        (it then behaves exactly like the inner backend)."""
        if self._bypass:
            return self.inner.name
        return f"simplify+{self.inner.name}"

    @property
    def simplify_stats(self) -> SimplifyStats:
        return self.simplifier.stats

    def freeze(self, variables: Iterable[int]) -> None:
        """Protect variables that outside code will mention again."""
        self.simplifier.freeze(variables)

    def ensure_vars(self, num_vars: int) -> None:
        self.simplifier.ensure_vars(num_vars)
        if self._bypass:
            self.inner.ensure_vars(num_vars)

    def add_clause(self, literals: Iterable[int]) -> bool:
        if self._bypass:
            return self.inner.add_clause(literals)
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self.simplifier.ensure_vars(abs(lit))
        if not self.simplifier.preprocessed:
            self._pending.append(clause)
            if not clause:
                self._unsat = True
            return not self._unsat
        return self._add_mapped(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        if self._bypass:
            return self.inner.add_clauses(clauses)
        if not self.simplifier.preprocessed:
            # Bulk buffering fast path: clauses from a CNF database are
            # already normalized; variable bounds are re-derived in
            # preprocess(), so no per-literal scan is needed here.
            pending = self._pending
            for clause in clauses:
                clause = tuple(clause)
                pending.append(clause)
                if not clause:
                    self._unsat = True
            return not self._unsat
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def add_cnf(self, cnf) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses(cnf.clauses)

    # -------------------------------------------------------- inner mapping

    def _inner_var(self, var: int) -> int:
        inner = self._to_inner.get(var)
        if inner is None:
            inner = len(self._from_inner)
            self._to_inner[var] = inner
            self._from_inner.append(var)
            self.inner.ensure_vars(inner)
        return inner

    def _inner_lit(self, lit: int) -> int:
        inner = self._inner_var(abs(lit))
        return inner if lit > 0 else -inner

    def _reinstate(self, var: int) -> None:
        """Replay the elimination of ``var`` (recursively) so new clauses
        mentioning it regain full logical strength."""
        for clause in self.simplifier.reinstatement_clauses(var):
            self._add_mapped(clause)

    def _add_mapped(self, clause: Sequence[int]) -> bool:
        """Map one clause through the live state and push it to the inner
        solver (the post-preprocessing incremental path)."""
        simplifier = self.simplifier
        for lit in clause:
            var = abs(lit)
            while var in simplifier.subst:
                rep = simplifier.subst[var]
                var = abs(rep)
            if simplifier.is_eliminated(var):
                self._reinstate(var)
        mapped = simplifier.map_clause(clause)
        if mapped is True:
            return True
        if mapped is False:
            self._unsat = True
            return False
        if len(mapped) == 1:
            simplifier.record_unit(mapped[0])
            if simplifier.unsat:
                self._unsat = True
                return False
        return self.inner.add_clause([self._inner_lit(l) for l in mapped])

    # --------------------------------------------------------------- solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        simplifier = self.simplifier
        if self._bypass:
            return self.inner.solve(
                assumptions=assumptions, conflict_limit=conflict_limit
            )
        if not simplifier.preprocessed:
            if not self._unsat and len(self._pending) < self.min_clauses:
                # Too small to repay a preprocessing pass: delegate the
                # buffered formula (and everything after it) untouched.
                self._bypass = True
                self.inner.ensure_vars(simplifier.num_vars)
                if not self.inner.add_clauses(self._pending):
                    self._unsat = True
                self._pending = []
                return self.inner.solve(
                    assumptions=assumptions, conflict_limit=conflict_limit
                )
            # Assumption variables behave like frozen ones: they must
            # survive preprocessing to be assumable (and re-assumable).
            simplifier.freeze(abs(lit) for lit in assumptions)
            survivors = simplifier.preprocess(self._pending)
            self._pending = []
            if simplifier.unsat:
                self._unsat = True
            else:
                load_start = time.perf_counter()
                mapped_clauses = [
                    [self._inner_lit(l) for l in clause]
                    for clause in survivors
                ]
                # Survivors carry no duplicate literals or tautologies, so
                # the inner backend's trusted bulk path applies.
                if not self.inner.add_clauses(mapped_clauses):
                    self._unsat = True
                simplifier.stats.preprocess_seconds += (
                    time.perf_counter() - load_start
                )
        self._assumption_origin = {}
        self._forced_core = None
        if self._unsat:
            return False
        inner_assumptions: list[int] = []
        for lit in assumptions:
            var = abs(lit)
            while var in simplifier.subst:
                var = abs(simplifier.subst[var])
            if simplifier.is_eliminated(var):
                self._reinstate(var)
                if self._unsat:
                    return False
            mapped = simplifier.map_literal(lit)
            if mapped is True:
                continue
            if mapped is False:
                # The assumption contradicts a root-level fact: it alone is
                # a failed-assumption core.
                self._forced_core = [lit]
                return False
            inner_lit = self._inner_lit(mapped)
            self._assumption_origin.setdefault(inner_lit, lit)
            inner_assumptions.append(inner_lit)
        return self.inner.solve(
            assumptions=inner_assumptions, conflict_limit=conflict_limit
        )

    def failed_assumptions(self) -> list[int]:
        """The inner solver's failed-assumption core mapped back onto the
        original assumption literals of the last solve; ``[lit]`` when an
        assumption contradicted a root-level fact before the inner solver
        ran, ``[]`` when the formula alone is unsatisfiable."""
        if self._bypass:
            return self.inner.failed_assumptions()
        if self._forced_core is not None:
            return list(self._forced_core)
        origin = self._assumption_origin
        return [
            origin[lit] for lit in self.inner.failed_assumptions()
            if lit in origin
        ]

    # ---------------------------------------------------------------- models

    def model(self) -> dict[int, bool]:
        """A model over the *original* variable space (reconstructed)."""
        if self._bypass:
            return self.inner.model()
        inner_model = self.inner.model()
        model = {
            self._from_inner[inner]: value
            for inner, value in inner_model.items()
            if inner < len(self._from_inner)
        }
        return self.simplifier.reconstruct(model)

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        """Values of selected original variables, without reconstructing
        the full model.  Falls back to full reconstruction when one of
        them was eliminated (frozen variables never are)."""
        if self._bypass:
            return self.inner.values_of(variables)
        simplifier = self.simplifier
        wanted = list(variables)
        inner_wanted: dict[int, int] = {}
        out: dict[int, bool] = {}
        for var in wanted:
            mapped = simplifier.map_literal(var)
            if isinstance(mapped, bool):
                out[var] = mapped
                continue
            rep = abs(mapped)
            if simplifier.is_eliminated(rep):
                full = self.model()
                return {v: full.get(v, False) for v in wanted}
            inner = self._to_inner.get(rep)
            if inner is None:
                out[var] = False  # never reached the solver: free variable
                continue
            inner_wanted[var] = inner if mapped > 0 else -inner
        if inner_wanted:
            inner_values = self.inner.values_of(
                abs(lit) for lit in inner_wanted.values()
            )
            for var, lit in inner_wanted.items():
                value = inner_values.get(abs(lit), False)
                out[var] = value if lit > 0 else not value
        return out

    def stats(self):
        """Inner solver counters with the preprocessing counters merged in
        (None when the inner backend cannot report counters)."""
        inner_stats = self.inner.stats()
        if self._bypass or inner_stats is None:
            return inner_stats
        merged = inner_stats.copy()
        stats = self.simplifier.stats
        merged.vars_eliminated = stats.vars_eliminated
        merged.clauses_subsumed = stats.clauses_subsumed
        merged.equiv_merged = stats.equiv_merged
        merged.preprocess_seconds = stats.preprocess_seconds
        return merged


def simplify_cnf(
    cnf, frozen: Iterable[int] = ()
) -> tuple[list[tuple[int, ...]], Simplifier]:
    """One-shot convenience: preprocess a :class:`repro.sat.cnf.CNF` and
    return ``(surviving_clauses, simplifier)`` (the simplifier carries the
    statistics and the reconstruction state)."""
    simplifier = Simplifier()
    simplifier.ensure_vars(cnf.num_vars)
    simplifier.freeze(frozen)
    survivors = simplifier.preprocess(list(cnf.clauses))
    return survivors, simplifier
