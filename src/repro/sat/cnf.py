"""Propositional CNF formulas.

Literals follow the DIMACS convention: a variable is a positive integer
``v >= 1`` and a literal is ``+v`` (the variable itself) or ``-v`` (its
negation).  :class:`CNF` is the clause database that the rest of the system
builds and that :class:`repro.sat.solver.Solver` consumes.

Clauses are stored in two flat ``array`` buffers — one holding every
literal back to back and one holding the cumulative end offset of each
clause — rather than a list of tuples.  That keeps the per-clause overhead
at a few machine words and, more importantly, makes :meth:`CNF.copy` an
``array``-level memcpy, which is what lets the encoder snapshot a shared
formula skeleton once per memory model at negligible cost.  The
:attr:`CNF.clauses` attribute is preserved as a sequence view that yields
tuples, so existing consumers (``for clause in cnf.clauses``,
``cnf.clauses[n:]``, ``len(cnf.clauses)``) keep working unchanged.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence


def neg(literal: int) -> int:
    """Return the negation of a literal."""
    return -literal


def var_of(literal: int) -> int:
    """Return the variable of a literal (a positive integer)."""
    return literal if literal > 0 else -literal


def sign_of(literal: int) -> bool:
    """Return True if the literal is positive."""
    return literal > 0


class ClauseView(Sequence):
    """Read-only sequence of clauses over the flat literal buffers.

    Indexing and iteration materialize tuples on demand, so the view is
    interchangeable with the ``list[tuple[int, ...]]`` the clause store
    used to be.  The view is *live*: clauses added to the owning
    :class:`CNF` after the view was obtained are visible through it.
    """

    __slots__ = ("_lits", "_ends")

    def __init__(self, lits: array, ends: array) -> None:
        self._lits = lits
        self._ends = ends

    def __len__(self) -> int:
        return len(self._ends)

    def _clause(self, index: int) -> tuple[int, ...]:
        start = self._ends[index - 1] if index else 0
        return tuple(self._lits[start:self._ends[index]])

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._clause(i)
                for i in range(*index.indices(len(self._ends)))
            ]
        n = len(self._ends)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("clause index out of range")
        return self._clause(index)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        lits = self._lits
        start = 0
        for end in self._ends:
            yield tuple(lits[start:end])
            start = end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClauseView({len(self)} clauses)"


class CNF:
    """A growable CNF formula (clause database plus variable allocator)."""

    __slots__ = ("num_vars", "_lits", "_ends", "names")

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        #: Flat literal buffer: every clause's literals back to back.
        self._lits: array = array("i")
        #: Cumulative end offset of clause ``i`` within ``_lits``.
        self._ends: array = array("q")
        #: Optional human-readable names for variables (for trace decoding).
        self.names: dict[int, str] = {}

    @property
    def clauses(self) -> ClauseView:
        """The clauses as a live, tuple-yielding sequence view."""
        return ClauseView(self._lits, self._ends)

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable and return it (a positive integer)."""
        self.num_vars += 1
        if name is not None:
            self.names[self.num_vars] = name
        return self.num_vars

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables."""
        out = []
        for i in range(count):
            name = f"{prefix}[{i}]" if prefix is not None else None
            out.append(self.new_var(name))
        return out

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals).

        Tautological clauses (containing both ``l`` and ``-l``) are dropped
        and duplicate literals are removed, which keeps the solver input
        clean without changing satisfiability.
        """
        seen: set[int] = set()
        out: list[int] = []
        num_vars = self.num_vars
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = lit if lit > 0 else -lit
            if var > num_vars:
                # Allow callers to use variables they allocated elsewhere,
                # but keep num_vars consistent.
                num_vars = var
            if -lit in seen:
                self.num_vars = num_vars
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self.num_vars = num_vars
        self._lits.extend(out)
        self._ends.append(len(self._lits))

    def add_clause_trusted(self, literals) -> None:
        """Append a clause known to be normalized already.

        The caller guarantees: no zero literal, no duplicate literals, not
        a tautology, and every variable already allocated.  Hot emitters
        (Tseitin lowering, the transitivity triangles) satisfy all four by
        construction, and skipping the per-literal checks roughly halves
        their clause-emission cost.
        """
        self._lits.extend(literals)
        self._ends.append(len(self._lits))

    def add_clauses_trusted_flat(
        self, literals: Sequence[int], lengths: Sequence[int]
    ) -> None:
        """Bulk form of :meth:`add_clause_trusted`: ``literals`` holds the
        clauses back to back, ``lengths`` the literal count of each.  One
        array-level extend installs every literal; only the clause-boundary
        bookkeeping runs per clause."""
        self._lits.extend(literals)
        end = len(self._lits) - len(literals)
        ends = self._ends
        for n in lengths:
            end += n
            ends.append(end)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variables must already be shared)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        offset = len(self._lits)
        self._lits.extend(other._lits)
        self._ends.extend(end + offset for end in other._ends)
        self.names.update(other.names)

    # -- convenience constraint builders ------------------------------------

    def add_unit(self, literal: int) -> None:
        self.add_clause([literal])

    def add_implies(self, antecedent: int, consequent: int) -> None:
        """Add ``antecedent -> consequent``."""
        self.add_clause([-antecedent, consequent])

    def add_iff(self, a: int, b: int) -> None:
        """Add ``a <-> b``."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def add_at_most_one(self, literals: Sequence[int]) -> None:
        """Pairwise at-most-one constraint."""
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add_clause([-literals[i], -literals[j]])

    def add_exactly_one(self, literals: Sequence[int]) -> None:
        self.add_clause(list(literals))
        self.add_at_most_one(literals)

    # -- statistics ----------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self._ends)

    def num_literals(self) -> int:
        return len(self._lits)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self._ends)

    def copy(self) -> "CNF":
        """A cheap snapshot: the literal buffers copy at memcpy speed."""
        out = CNF(num_vars=self.num_vars)
        out._lits = self._lits[:]
        out._ends = self._ends[:]
        out.names = dict(self.names)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"
