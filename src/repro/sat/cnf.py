"""Propositional CNF formulas.

Literals follow the DIMACS convention: a variable is a positive integer
``v >= 1`` and a literal is ``+v`` (the variable itself) or ``-v`` (its
negation).  :class:`CNF` is the clause database that the rest of the system
builds and that :class:`repro.sat.solver.Solver` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


def neg(literal: int) -> int:
    """Return the negation of a literal."""
    return -literal


def var_of(literal: int) -> int:
    """Return the variable of a literal (a positive integer)."""
    return literal if literal > 0 else -literal


def sign_of(literal: int) -> bool:
    """Return True if the literal is positive."""
    return literal > 0


@dataclass
class CNF:
    """A growable CNF formula (clause database plus variable allocator)."""

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)
    #: Optional human-readable names for variables (for trace decoding).
    names: dict[int, str] = field(default_factory=dict)

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable and return it (a positive integer)."""
        self.num_vars += 1
        if name is not None:
            self.names[self.num_vars] = name
        return self.num_vars

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables."""
        out = []
        for i in range(count):
            name = f"{prefix}[{i}]" if prefix is not None else None
            out.append(self.new_var(name))
        return out

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals).

        Tautological clauses (containing both ``l`` and ``-l``) are dropped
        and duplicate literals are removed, which keeps the solver input
        clean without changing satisfiability.
        """
        seen: set[int] = set()
        out: list[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if var_of(lit) > self.num_vars:
                # Allow callers to use variables they allocated elsewhere,
                # but keep num_vars consistent.
                self.num_vars = var_of(lit)
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self.clauses.append(tuple(out))

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variables must already be shared)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)
        self.names.update(other.names)

    # -- convenience constraint builders ------------------------------------

    def add_unit(self, literal: int) -> None:
        self.add_clause([literal])

    def add_implies(self, antecedent: int, consequent: int) -> None:
        """Add ``antecedent -> consequent``."""
        self.add_clause([-antecedent, consequent])

    def add_iff(self, a: int, b: int) -> None:
        """Add ``a <-> b``."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def add_at_most_one(self, literals: Sequence[int]) -> None:
        """Pairwise at-most-one constraint."""
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add_clause([-literals[i], -literals[j]])

    def add_exactly_one(self, literals: Sequence[int]) -> None:
        self.add_clause(list(literals))
        self.add_at_most_one(literals)

    # -- statistics ----------------------------------------------------------

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def num_literals(self) -> int:
        return sum(len(c) for c in self.clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def copy(self) -> "CNF":
        out = CNF(num_vars=self.num_vars)
        out.clauses = list(self.clauses)
        out.names = dict(self.names)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(vars={self.num_vars}, clauses={self.num_clauses})"
