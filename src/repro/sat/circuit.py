"""Boolean circuits with structural hashing and Tseitin CNF conversion.

The encoder (``repro.encoding``) builds the formula ``Phi`` as a circuit of
AND/NOT gates (an AIG) plus named input variables, and then lowers it to CNF
for the CDCL solver.  Nodes are referenced by signed integer *handles*: a
positive handle names a node, a negative handle names its complement, and
the special handles :data:`Circuit.TRUE` / :data:`Circuit.FALSE` are the
constants.

Keeping the circuit layer separate from the CNF layer mirrors the structure
of the original tool, where the formula is assembled symbolically and only
then flattened for the SAT solver, and it lets us share common subterms
(structural hashing) before any clauses are emitted.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import CNF

_CONST_INDEX = 1  # node index reserved for the constant TRUE

# Nested positive AND children are deliberately *not* flattened into the
# parent conjunction: inlining ``and_(and_(a, b), c)`` to ``and_(a, b, c)``
# looks like a canonicalization win, but the wide n-ary nodes it produces
# lower to wide Tseitin clauses whose resolvents blow past the
# preprocessor's bounded-variable-elimination limits — on the largest
# catalog tests flattening was measured to cut the post-preprocessing
# clause reduction from ~65% to ~15%.  Keeping gates narrow (and letting
# the structural hash share the intermediate nodes) is what the SAT side
# actually wants.


class Circuit:
    """An and-inverter graph with named inputs.

    Handles returned by the construction methods are plain ints; negate a
    handle with unary minus (or :meth:`not_`).
    """

    TRUE = _CONST_INDEX
    FALSE = -_CONST_INDEX

    def __init__(self) -> None:
        # Node storage. Index 0 is unused, index 1 is the TRUE constant.
        # Each node is either ("const",), ("var", name) or ("and", children).
        self._nodes: list[tuple] = [None, ("const",)]
        self._and_cache: dict[tuple[int, ...], int] = {}
        self._input_names: dict[int, str] = {}

    # --------------------------------------------------------------- inputs

    def var(self, name: str | None = None) -> int:
        """Create a fresh input variable and return its handle."""
        index = len(self._nodes)
        self._nodes.append(("var", name))
        if name is not None:
            self._input_names[index] = name
        return index

    def vars(self, count: int, prefix: str = "v") -> list[int]:
        return [self.var(f"{prefix}[{i}]") for i in range(count)]

    def name_of(self, handle: int) -> str | None:
        return self._input_names.get(abs(handle))

    # ---------------------------------------------------------- construction

    def not_(self, a: int) -> int:
        return -a

    def and_(self, *args: int) -> int:
        if len(args) == 2:
            # Fast path for the binary case (the bulk of all calls): the
            # generic worklist only matters when a child must be flattened.
            a, b = args
            if a == -_CONST_INDEX or b == -_CONST_INDEX:
                return self.FALSE
            if a == _CONST_INDEX:
                return b
            if b == _CONST_INDEX:
                return a
            if a == b:
                return a
            if a == -b:
                return self.FALSE
            nodes = self._nodes
            key = (a, b) if a < b else (b, a)
            cached = self._and_cache.get(key)
            if cached is not None:
                return cached
            index = len(nodes)
            nodes.append(("and", key))
            self._and_cache[key] = index
            return index
        return self.and_many(args)

    def and_many(self, args: Iterable[int]) -> int:
        """N-ary conjunction with local simplifications.

        Constants and duplicates fold away and complementary literals
        collapse the whole conjunction to FALSE.  Children are kept as
        given (no flattening of nested ANDs — see the module comment);
        the sorted cache key still makes the node order-insensitive.
        Via De Morgan :meth:`or_many` is the complement of this method.
        """
        children: list[int] = []
        seen: set[int] = set()
        for a in args:
            if a == self.FALSE:
                return self.FALSE
            if a == self.TRUE:
                continue
            if -a in seen:
                return self.FALSE
            if a in seen:
                continue
            seen.add(a)
            children.append(a)
        if not children:
            return self.TRUE
        if len(children) == 1:
            return children[0]
        key = tuple(sorted(children))
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        index = len(self._nodes)
        self._nodes.append(("and", key))
        self._and_cache[key] = index
        return index

    def or_(self, *args: int) -> int:
        if len(args) == 2:
            return -self.and_(-args[0], -args[1])
        return self.or_many(args)

    def or_many(self, args: Iterable[int]) -> int:
        return -self.and_many(-a for a in args)

    def implies(self, a: int, b: int) -> int:
        return self.or_(-a, b)

    def xor(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, -b), self.and_(-a, b))

    def iff(self, a: int, b: int) -> int:
        return -self.xor(a, b)

    def ite(self, cond: int, then_branch: int, else_branch: int) -> int:
        """If-then-else (multiplexer) on single bits."""
        if cond == self.TRUE:
            return then_branch
        if cond == self.FALSE:
            return else_branch
        if then_branch == else_branch:
            return then_branch
        return self.or_(
            self.and_(cond, then_branch), self.and_(-cond, else_branch)
        )

    # ------------------------------------------------------------- snapshot

    def copy(self) -> "Circuit":
        """A shallow structural snapshot.

        Node tuples are immutable, so copying the node list and caches is
        enough; handles minted in the original remain valid (same indexes)
        in the copy.  This is what lets a per-model encoding layer grow on
        top of a shared model-independent skeleton without disturbing it.
        """
        out = Circuit.__new__(Circuit)
        out._nodes = list(self._nodes)
        out._and_cache = dict(self._and_cache)
        out._input_names = dict(self._input_names)
        return out

    # ------------------------------------------------------------ statistics

    @property
    def num_nodes(self) -> int:
        return len(self._nodes) - 1

    def is_input(self, handle: int) -> bool:
        return self._nodes[abs(handle)][0] == "var"

    # -------------------------------------------------------------- lowering

    def node(self, handle: int) -> tuple:
        return self._nodes[abs(handle)]


class CnfLowering:
    """Incremental Tseitin transformation of a :class:`Circuit` into CNF.

    The lowering keeps a mapping from circuit nodes to SAT variables so the
    same circuit can be lowered incrementally (e.g. as blocking clauses are
    added during specification mining) without re-encoding shared subterms.
    """

    def __init__(self, circuit: Circuit, cnf: CNF | None = None) -> None:
        self.circuit = circuit
        self.cnf = cnf if cnf is not None else CNF()
        self._node_to_var: dict[int, int] = {}
        # The constant TRUE node gets a dedicated SAT variable forced to 1 so
        # that handles can always be mapped uniformly to literals.
        true_var = self.cnf.new_var("const_true")
        self.cnf.add_unit(true_var)
        self._node_to_var[Circuit.TRUE] = true_var

    def fork(self, circuit: Circuit) -> "CnfLowering":
        """An independent continuation of this lowering over ``circuit``.

        ``circuit`` must be a :meth:`Circuit.copy` of the circuit this
        lowering was built on (handles must agree).  The CNF snapshot is an
        array-level memcpy and the node-to-variable map a dict copy, so a
        fork costs far less than re-lowering the shared prefix.
        """
        out = CnfLowering.__new__(CnfLowering)
        out.circuit = circuit
        out.cnf = self.cnf.copy()
        out._node_to_var = dict(self._node_to_var)
        return out

    def literal(self, handle: int) -> int:
        """Return the SAT literal representing ``handle``, emitting clauses
        for any node not lowered yet."""
        index = abs(handle)
        var = self._node_to_var.get(index)
        if var is None:
            var = self._lower_node(index)
        return var if handle > 0 else -var

    def var_literals(self, handles: Iterable[int]) -> list[int]:
        """Map positive *input-variable* handles to SAT literals in bulk.

        A variable node lowers to a fresh SAT variable and no clauses, so
        this skips the generic cone walk of :meth:`literal` — the per-model
        layer mints thousands of order variables and resolves each exactly
        once here."""
        n2v = self._node_to_var
        cnf = self.cnf
        out = []
        for handle in handles:
            var = n2v.get(handle)
            if var is None:
                var = cnf.new_var(self.circuit.node(handle)[1])
                n2v[handle] = var
            out.append(var)
        return out

    def lowered_var(self, handle: int) -> int | None:
        """The SAT variable of ``handle`` if the node was already lowered,
        ``None`` otherwise — a non-forcing peek (no clauses are emitted),
        used to compute the preprocessor's frozen set without growing the
        formula."""
        return self._node_to_var.get(abs(handle))

    def _lower_node(self, index: int) -> int:
        # Iterative DFS to avoid recursion limits on deep circuits.  The
        # Tseitin clauses are normalized by construction (fresh output
        # variable, canonicalized children), so they are batched into flat
        # buffers and installed through the trusted bulk path in one go —
        # lowering a large cone is a hot step of every per-model encoding
        # layer, and per-clause calls were measured to dominate it.
        n2v = self._node_to_var
        cnf = self.cnf
        node_of = self.circuit.node
        buf: list[int] = []
        lengths: list[int] = []
        push = buf.append
        push_len = lengths.append
        stack = [index]
        while stack:
            node_index = stack[-1]
            if node_index in n2v:
                stack.pop()
                continue
            kind = node_of(node_index)
            if kind[0] == "var":
                n2v[node_index] = cnf.new_var(kind[1])
                stack.pop()
                continue
            if kind[0] == "const":
                stack.pop()
                continue
            # AND node: make sure all children are lowered first.
            children = kind[1]
            pending = [abs(c) for c in children if abs(c) not in n2v]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            cnf.num_vars += 1
            out_var = cnf.num_vars
            n2v[node_index] = out_var
            child_lits = [
                n2v[c] if c > 0 else -n2v[-c] for c in children
            ]
            # out -> child_i
            for lit in child_lits:
                push(-out_var)
                push(lit)
                push_len(2)
            # (AND children) -> out
            push(out_var)
            for lit in child_lits:
                push(-lit)
            push_len(len(child_lits) + 1)
        if buf:
            cnf.add_clauses_trusted_flat(buf, lengths)
        return n2v[index]

    def assert_true(self, handle: int) -> None:
        """Constrain the formula so that ``handle`` is true."""
        self.cnf.add_unit(self.literal(handle))

    def assert_clause(self, handles: Sequence[int]) -> None:
        """Constrain the disjunction of the given handles to be true."""
        self.cnf.add_clause([self.literal(h) for h in handles])

    def evaluate(self, handle: int, model: dict[int, bool]) -> bool:
        """Evaluate a handle under a SAT model (for decoding solutions)."""
        if abs(handle) == Circuit.TRUE:
            return handle > 0
        lit = self._node_to_var.get(abs(handle))
        if lit is not None:
            value = model.get(lit, False)
            return value if handle > 0 else not value
        # Node was never lowered; evaluate structurally.
        kind = self.circuit.node(handle)
        if kind[0] == "const":
            value = True
        elif kind[0] == "var":
            raise KeyError(f"input node {handle} has no SAT variable")
        else:
            value = all(self.evaluate(c, model) for c in kind[1])
        return value if handle > 0 else not value
