"""Pluggable SAT solver backends.

The checker never talks to :class:`repro.sat.solver.Solver` directly any
more; it goes through the :class:`SolverBackend` protocol, which captures
the small solving surface the pipeline needs (grow variables, add clauses,
solve under assumptions, read the model and statistics).  Two
implementations are provided:

* :class:`InternalBackend` — wraps the in-tree incremental CDCL solver;
* :class:`DimacsBackend` — shells out to an external DIMACS solver found on
  PATH (kissat, cadical, minisat, ...), re-exporting the clause database per
  call; when no external solver is installed it falls back to the internal
  solver (the fallback is visible in :attr:`DimacsBackend.name`).

Backend choice is a string *spec* threaded through
:class:`repro.core.checker.CheckOptions`, the CLI (``--solver``) and the
``CHECKFENCE_SOLVER`` environment variable:

* ``auto`` / ``internal`` — the internal CDCL solver (deterministic default);
* ``dimacs`` — the first external DIMACS solver found on PATH, internal
  fallback when none is installed;
* ``dimacs:<command>`` — a specific solver command, e.g.
  ``dimacs:kissat -q`` or
  ``dimacs:python -m repro.sat.dimacs_cli`` (the in-tree solver behind a
  subprocess/DIMACS pipe, useful for differential testing);
* ``ipasir`` — a persistent incremental external solver loaded as an
  IPASIR shared library (:mod:`repro.sat.ipasir`), auto-discovered via
  ``CHECKFENCE_IPASIR_LIB`` / known sonames, internal fallback when none
  is installed;
* ``ipasir:cli`` — the in-tree solver behind a persistent incremental
  subprocess pipe (``python -m repro.sat.dimacs_cli --incremental``);
* ``ipasir:<path>`` — a specific IPASIR shared library file.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import tempfile
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.core import faults, limits
from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolverStats

BackendFactory = Callable[[], "SolverBackend"]

SAT_EXIT_CODE = 10
UNSAT_EXIT_CODE = 20


class BackendError(RuntimeError):
    """An external solver failed or produced unparseable output."""


@runtime_checkable
class SolverBackend(Protocol):
    """The solving surface the checking pipeline relies on."""

    name: str

    def ensure_vars(self, num_vars: int) -> None: ...

    def add_clause(self, literals: Iterable[int]) -> bool: ...

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool: ...

    def add_cnf(self, cnf: CNF) -> None: ...

    def freeze(self, variables: Iterable[int]) -> None: ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None: ...

    def failed_assumptions(self) -> list[int]:
        """Subset of the last solve's assumptions already unsatisfiable
        together with the formula.  Uniform contract across backends:
        non-empty only when the most recent :meth:`solve` returned
        ``False`` — after a SAT or UNKNOWN result, or before any solve,
        this is ``[]`` (core-guided searches rely on that to distinguish
        "no core" from a stale one)."""
        ...

    def model(self) -> dict[int, bool]: ...

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]: ...

    def stats(self) -> SolverStats | None: ...


class InternalBackend:
    """The in-tree incremental CDCL solver behind the backend protocol."""

    name = "internal"

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver if solver is not None else Solver()

    def ensure_vars(self, num_vars: int) -> None:
        self.solver.ensure_vars(num_vars)

    def add_clause(self, literals: Iterable[int]) -> bool:
        return self.solver.add_clause(literals)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-add pre-normalized clauses (no duplicate literals or
        tautologies), e.g. straight from a :class:`CNF` database."""
        return self.solver.add_clauses_trusted(clauses)

    def add_cnf(self, cnf: CNF) -> None:
        self.solver.add_cnf(cnf)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: the plain solver never removes variables.  Preprocessing
        backends (:class:`repro.sat.simplify.SimplifyingBackend`) use the
        frozen set to protect variables the caller will mention again."""

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        return self.solver.solve(
            assumptions=assumptions, conflict_limit=conflict_limit
        )

    def failed_assumptions(self) -> list[int]:
        """Subset of the last solve's assumptions that is already
        unsatisfiable together with the formula; empty when the formula
        alone is unsatisfiable or the last result was SAT."""
        return self.solver.failed_assumptions()

    def model(self) -> dict[int, bool]:
        return self.solver.model()

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        return self.solver.values_of(variables)

    def stats(self) -> SolverStats:
        return self.solver.total_stats


#: External solvers probed on PATH, in order of preference, with their
#: output style: "stdout" solvers print ``s``/``v`` lines, "minisat" style
#: solvers write the result into an output file given as a second argument.
_KNOWN_SOLVERS: tuple[tuple[str, str], ...] = (
    ("kissat", "stdout"),
    ("cadical", "stdout"),
    ("cryptominisat5", "stdout"),
    ("picosat", "stdout"),
    ("minisat", "minisat"),
)


def find_dimacs_solver() -> tuple[list[str], str] | None:
    """Locate an external DIMACS solver on PATH; ``(command, style)``."""
    for name, style in _KNOWN_SOLVERS:
        path = shutil.which(name)
        if path is not None:
            return [path], style
    return None


class DimacsBackend:
    """Solve by exporting DIMACS to an external solver process.

    The external process is stateless, so every :meth:`solve` re-exports the
    clause database (assumptions become temporary unit clauses).  When no
    command is given and nothing suitable is on PATH, the backend degrades
    to :class:`InternalBackend` so callers never have to special-case
    missing solvers; the degradation is visible in :attr:`name`.
    """

    def __init__(
        self,
        command: Sequence[str] | None = None,
        style: str | None = None,
        fallback: bool = True,
    ) -> None:
        self._fallback: InternalBackend | None = None
        if command is None:
            found = find_dimacs_solver()
            if found is None:
                if not fallback:
                    raise BackendError(
                        "no external DIMACS solver found on PATH "
                        f"(tried {', '.join(n for n, _ in _KNOWN_SOLVERS)})"
                    )
                self._fallback = InternalBackend()
                self.name = "dimacs(fallback:internal)"
                return
            command, detected_style = found
            style = style or detected_style
        self._command = list(command)
        self._style = style or "stdout"
        self.name = f"dimacs({os.path.basename(self._command[0])})"
        self._num_vars = 0
        self._clauses: list[tuple[int, ...]] = []
        self._unsat = False
        self._model: dict[int, bool] = {}
        self._failed: list[int] = []
        self._last_result: bool | None = None

    # ----------------------------------------------------------- clause I/O

    def ensure_vars(self, num_vars: int) -> None:
        if self._fallback is not None:
            self._fallback.ensure_vars(num_vars)
            return
        self._num_vars = max(self._num_vars, num_vars)

    def add_clause(self, literals: Iterable[int]) -> bool:
        if self._fallback is not None:
            return self._fallback.add_clause(literals)
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise BackendError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
        if not clause:
            self._unsat = True
            return False
        self._clauses.append(clause)
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        if self._fallback is not None:
            return self._fallback.add_clauses(clauses)
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses(cnf.clauses)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: the DIMACS export keeps every variable (see
        :meth:`InternalBackend.freeze`)."""
        if self._fallback is not None:
            self._fallback.freeze(variables)

    # -------------------------------------------------------------- solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        if self._fallback is not None:
            return self._fallback.solve(
                assumptions=assumptions, conflict_limit=conflict_limit
            )
        # conflict_limit is a budget hint for the internal solver; external
        # solvers run to completion — unless a deadline is in scope, in
        # which case the subprocess gets the remaining wall-clock as its
        # timeout and is killed on expiry.
        self._model = {}
        self._failed = []
        self._last_result = None
        if self._unsat:
            self._last_result = False
            return False
        deadline = limits.active_deadline()
        remaining = None
        if deadline is not None:
            deadline.check()
            remaining = deadline.remaining()
        with tempfile.TemporaryDirectory(prefix="checkfence-dimacs-") as tmp:
            problem = os.path.join(tmp, "problem.cnf")
            self._write_problem(problem, assumptions)
            command = self._command + [problem]
            result_file = None
            if self._style == "minisat":
                result_file = os.path.join(tmp, "result.txt")
                command.append(result_file)
            try:
                proc = subprocess.run(
                    command, capture_output=True, text=True, check=False,
                    timeout=remaining,
                )
            except subprocess.TimeoutExpired as exc:
                # subprocess.run has already killed the solver process.
                raise limits.TimeoutExceeded(
                    f"external solver {self._command[0]!r} killed after "
                    f"{exc.timeout:.1f}s (deadline expired)"
                ) from exc
            except FileNotFoundError as exc:
                raise BackendError(
                    f"solver binary {self._command[0]!r} not found "
                    f"(searched PATH: {os.environ.get('PATH', '')!r}); "
                    "install it, use --solver dimacs:<command> with a "
                    "command that exists, or fall back to --solver internal"
                ) from exc
            except OSError as exc:
                raise BackendError(
                    f"failed to run {self._command[0]!r}: {exc}"
                ) from exc
            output = proc.stdout
            from_result_file = False
            if result_file is not None and os.path.exists(result_file):
                with open(result_file, "r", encoding="utf-8") as handle:
                    output = handle.read()
                from_result_file = True
            result = self._parse_result(
                proc.returncode, output, proc.stderr, from_result_file
            )
            if result is False:
                # The DIMACS interchange carries no failed-assumption
                # information, so the whole assumption set is the
                # (conservative but sound) core.
                self._failed = list(assumptions)
            self._last_result = result
            return result

    def _write_problem(self, path: str, assumptions: Sequence[int]) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                f"p cnf {self._num_vars} "
                f"{len(self._clauses) + len(assumptions)}\n"
            )
            for clause in self._clauses:
                handle.write(" ".join(str(lit) for lit in clause) + " 0\n")
            for lit in assumptions:
                handle.write(f"{lit} 0\n")

    def _parse_result(
        self,
        returncode: int,
        output: str,
        stderr: str,
        from_result_file: bool = False,
    ) -> bool:
        status: bool | None = None
        literals: list[int] = []
        for line in output.splitlines():
            line = line.strip()
            if line.startswith("s "):
                verdict = line[2:].strip().upper()
                if verdict == "SATISFIABLE":
                    status = True
                elif verdict == "UNSATISFIABLE":
                    status = False
            elif line == "SAT":  # minisat result-file format
                status = True
            elif line == "UNSAT":
                status = False
            elif line.startswith("v "):
                literals.extend(int(tok) for tok in line[2:].split())
            elif (
                from_result_file
                and status is True
                and line
                and line[0] in "-0123456789"
            ):
                # Only minisat result files put the model on a bare line;
                # stdout solvers may print digit-leading stats lines that
                # must not be mistaken for a model.
                literals.extend(int(tok) for tok in line.split())
        if status is None:
            if returncode == SAT_EXIT_CODE:
                status = True
            elif returncode == UNSAT_EXIT_CODE:
                status = False
            else:
                raise BackendError(
                    f"solver {self._command[0]!r} produced no verdict "
                    f"(exit code {returncode}): {stderr.strip() or output.strip()!r}"
                )
        if status:
            model = {var: False for var in range(1, self._num_vars + 1)}
            for lit in literals:
                if lit != 0:
                    model[abs(lit)] = lit > 0
            self._model = model
        return status

    def failed_assumptions(self) -> list[int]:
        """Conservative core: the DIMACS interchange format carries no
        failed-assumption information, so after an UNSAT solve this is the
        full assumption set of that solve (a sound over-approximation).
        The internal fallback reports its real (smaller) core.  Empty
        unless the most recent solve actually returned UNSAT — guarded by
        the recorded result, not just the reset-on-solve, so a solver-error
        path can never leak a stale core."""
        if self._fallback is not None:
            return self._fallback.failed_assumptions()
        if self._last_result is not False:
            return []
        return list(self._failed)

    def model(self) -> dict[int, bool]:
        if self._fallback is not None:
            return self._fallback.model()
        return dict(self._model)

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        if self._fallback is not None:
            return self._fallback.values_of(variables)
        model = self._model
        return {var: model.get(var, False) for var in variables}

    def stats(self) -> SolverStats | None:
        """External solvers do not report counters in a common format, so
        this is None (counters unavailable) unless the internal fallback is
        active, which reports its real numbers."""
        if self._fallback is not None:
            return self._fallback.stats()
        return None


# ----------------------------------------------------------- spec resolution


def default_backend_spec() -> str:
    """The backend spec used when none is given (``CHECKFENCE_SOLVER``)."""
    return os.environ.get("CHECKFENCE_SOLVER", "auto")


def make_backend_factory(spec: str | None = None) -> BackendFactory:
    """Turn a backend spec string into a factory of fresh backends.

    When the ``solver-raise`` fault (:mod:`repro.core.faults`) is armed,
    every produced backend is wrapped in a counting proxy that raises on
    the injected solve calls; the hot path pays nothing otherwise.
    """
    factory = _resolve_backend_factory(spec)
    if faults.solver_raise_counts():
        return lambda: faults.FaultySolverProxy(factory())
    return factory


def _resolve_backend_factory(spec: str | None = None) -> BackendFactory:
    spec = spec if spec is not None else default_backend_spec()
    spec = spec.strip()
    if spec in ("", "auto", "internal"):
        return InternalBackend
    if spec == "dimacs":
        return DimacsBackend
    if spec.startswith("dimacs:"):
        command = shlex.split(spec[len("dimacs:"):])
        if not command:
            raise ValueError(f"empty solver command in spec {spec!r}")
        return lambda: DimacsBackend(command=command)
    if spec == "ipasir" or spec.startswith("ipasir:"):
        # Imported lazily: repro.sat.ipasir imports from this module's
        # sibling (solver stats) and is only needed for these specs.
        from repro.sat import ipasir as ipasir_module

        if spec == "ipasir":
            def factory() -> SolverBackend:
                library = ipasir_module.find_ipasir_library()
                if library is None:
                    backend = InternalBackend()
                    backend.name = "ipasir(fallback:internal)"
                    return backend
                return ipasir_module.IpasirBackend(library)
            return factory
        argument = spec[len("ipasir:"):].strip()
        if not argument:
            raise ValueError(f"empty IPASIR library path in spec {spec!r}")
        if argument == "cli":
            return ipasir_module.IncrementalPipeBackend
        return lambda: ipasir_module.IpasirBackend(argument)
    raise ValueError(
        f"unknown solver backend spec {spec!r} "
        "(expected auto, internal, dimacs, dimacs:<command>, "
        "ipasir, ipasir:cli, or ipasir:<path>)"
    )
