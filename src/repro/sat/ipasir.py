"""Incremental external solving through the IPASIR C API.

IPASIR ("Reentrant Incremental Sat solver API", the standard interface of
the SAT competition incremental track) is the lingua franca of incremental
SAT solvers: cadical, picosat, cryptominisat, lingeling and friends all
ship a shared library exporting

* ``ipasir_init`` / ``ipasir_release`` — solver lifecycle,
* ``ipasir_add`` — push clause literals (0-terminated),
* ``ipasir_assume`` — add a one-shot assumption for the next solve,
* ``ipasir_solve`` — returns 10 (SAT), 20 (UNSAT) or 0 (interrupted),
* ``ipasir_val`` — model value of a literal after SAT,
* ``ipasir_failed`` — failed-assumption membership after UNSAT.

Where the paper's toolchain exported one monolithic CNF per query and
restarted zChaff from scratch, an IPASIR solver *persists* across the
hundreds of solve/block iterations the specification miner and the fence
inference loop issue, so learned clauses from one query prune the next.

Two backends are provided:

* :class:`IpasirBackend` — loads an IPASIR shared library via
  :mod:`ctypes` (``CHECKFENCE_IPASIR_LIB``, or auto-discovery of
  ``libcadical``/``libcryptominisat5``/``libpicosat``/``liblingeling``);
* :class:`IncrementalPipeBackend` — the same persistent-solver protocol
  over a line-based pipe to ``python -m repro.sat.dimacs_cli
  --incremental``, so the incremental subprocess path stays testable on
  machines with no system SAT library at all.

Both register under the ``ipasir`` backend spec (see
:func:`repro.sat.backend.make_backend_factory`): ``ipasir`` auto-discovers
a library and falls back to the internal solver, ``ipasir:cli`` forces the
pipe backend, and ``ipasir:<path>`` loads a specific shared library.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os
import subprocess
import sys
import threading
from typing import IO, Iterable, Sequence

from repro.core import limits
from repro.sat.cnf import CNF
from repro.sat.solver import SolverStats

IPASIR_SAT = 10
IPASIR_UNSAT = 20
IPASIR_INTERRUPTED = 0

#: C type of the optional ``ipasir_set_terminate`` callback: called
#: periodically by the solver; a non-zero return aborts the solve.
TERMINATE_CALLBACK = ctypes.CFUNCTYPE(ctypes.c_int, ctypes.c_void_p)

#: Environment variable naming the shared library to load for ``ipasir``.
IPASIR_LIB_ENV = "CHECKFENCE_IPASIR_LIB"

#: Library base names probed (via ctypes.util.find_library and common
#: soname spellings) when no explicit path is configured.
_KNOWN_LIBRARIES: tuple[str, ...] = (
    "cadical",
    "cryptominisat5",
    "picosat",
    "lingeling",
)

#: The symbols every IPASIR implementation must export.
_REQUIRED_SYMBOLS = (
    "ipasir_init",
    "ipasir_release",
    "ipasir_add",
    "ipasir_assume",
    "ipasir_solve",
    "ipasir_val",
    "ipasir_failed",
)


class IpasirError(RuntimeError):
    """An IPASIR library could not be loaded or misbehaved."""


class IpasirLibrary:
    """A loaded IPASIR shared library with typed entry points."""

    def __init__(self, path: str) -> None:
        try:
            cdll = ctypes.CDLL(path)
        except OSError as exc:
            raise IpasirError(f"cannot load IPASIR library {path!r}: {exc}")
        missing = [
            symbol for symbol in _REQUIRED_SYMBOLS
            if not hasattr(cdll, symbol)
        ]
        if missing:
            raise IpasirError(
                f"{path!r} is not an IPASIR library "
                f"(missing symbols: {', '.join(missing)})"
            )
        self.path = path
        self._cdll = cdll
        cdll.ipasir_init.restype = ctypes.c_void_p
        cdll.ipasir_init.argtypes = []
        cdll.ipasir_release.restype = None
        cdll.ipasir_release.argtypes = [ctypes.c_void_p]
        cdll.ipasir_add.restype = None
        cdll.ipasir_add.argtypes = [ctypes.c_void_p, ctypes.c_int32]
        cdll.ipasir_assume.restype = None
        cdll.ipasir_assume.argtypes = [ctypes.c_void_p, ctypes.c_int32]
        cdll.ipasir_solve.restype = ctypes.c_int
        cdll.ipasir_solve.argtypes = [ctypes.c_void_p]
        cdll.ipasir_val.restype = ctypes.c_int32
        cdll.ipasir_val.argtypes = [ctypes.c_void_p, ctypes.c_int32]
        cdll.ipasir_failed.restype = ctypes.c_int
        cdll.ipasir_failed.argtypes = [ctypes.c_void_p, ctypes.c_int32]
        if hasattr(cdll, "ipasir_signature"):
            cdll.ipasir_signature.restype = ctypes.c_char_p
            cdll.ipasir_signature.argtypes = []
        self.supports_terminate = hasattr(cdll, "ipasir_set_terminate")
        if self.supports_terminate:
            cdll.ipasir_set_terminate.restype = None
            cdll.ipasir_set_terminate.argtypes = [
                ctypes.c_void_p, ctypes.c_void_p, TERMINATE_CALLBACK
            ]

    def signature(self) -> str:
        if hasattr(self._cdll, "ipasir_signature"):
            raw = self._cdll.ipasir_signature()
            if raw:
                return raw.decode("utf-8", "replace")
        return os.path.basename(self.path)

    def init(self) -> int:
        handle = self._cdll.ipasir_init()
        if not handle:
            raise IpasirError(f"ipasir_init() of {self.path!r} returned NULL")
        return handle

    def release(self, handle: int) -> None:
        self._cdll.ipasir_release(handle)

    def add(self, handle: int, literal: int) -> None:
        self._cdll.ipasir_add(handle, literal)

    def assume(self, handle: int, literal: int) -> None:
        self._cdll.ipasir_assume(handle, literal)

    def solve(self, handle: int) -> int:
        return self._cdll.ipasir_solve(handle)

    def val(self, handle: int, literal: int) -> int:
        return self._cdll.ipasir_val(handle, literal)

    def failed(self, handle: int, literal: int) -> bool:
        return bool(self._cdll.ipasir_failed(handle, literal))

    def set_terminate(self, handle: int, callback) -> None:
        """Install (or with ``callback=None`` clear) the terminate hook;
        no-op when the library does not export ``ipasir_set_terminate``."""
        if self.supports_terminate:
            self._cdll.ipasir_set_terminate(
                handle, None,
                callback if callback is not None else TERMINATE_CALLBACK(),
            )


def find_ipasir_library() -> str | None:
    """Locate an IPASIR shared library: ``CHECKFENCE_IPASIR_LIB`` first,
    then :func:`ctypes.util.find_library` and common soname spellings of
    the known solvers.  Returns a loadable path/soname or None."""
    configured = os.environ.get(IPASIR_LIB_ENV)
    if configured:
        return configured
    candidates: list[str] = []
    for base in _KNOWN_LIBRARIES:
        found = ctypes.util.find_library(base)
        if found:
            candidates.append(found)
        candidates.append(f"lib{base}.so")
    for candidate in candidates:
        try:
            IpasirLibrary(candidate)
        except IpasirError:
            continue
        return candidate
    return None


class IpasirBackend:
    """A persistent incremental solver behind the SolverBackend protocol.

    The underlying IPASIR solver object lives for the whole backend
    lifetime: clauses accumulate, assumptions are one-shot (exactly the
    protocol :class:`repro.encoding.formula.EncodedTest` expects), and the
    solver's learned clauses carry over between the solve/block iterations
    of the mining loops.
    """

    def __init__(self, library: IpasirLibrary | str | None = None) -> None:
        if library is None:
            found = find_ipasir_library()
            if found is None:
                raise IpasirError(
                    "no IPASIR shared library found (set "
                    f"{IPASIR_LIB_ENV} or install one of: "
                    + ", ".join(f"lib{b}.so" for b in _KNOWN_LIBRARIES)
                    + ")"
                )
            library = found
        if isinstance(library, str):
            library = IpasirLibrary(library)
        self._library = library
        self._handle = library.init()
        self.name = f"ipasir({library.signature()})"
        self._num_vars = 0
        self._unsat = False
        self._last_result: bool | None = None
        self._failed: list[int] = []
        self._solves = 0
        self._terminate_thunk = None

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        handle = getattr(self, "_handle", None)
        if handle:
            try:
                self._library.release(handle)
            except Exception:
                pass
            self._handle = None

    # ----------------------------------------------------------- clause I/O

    def ensure_vars(self, num_vars: int) -> None:
        if num_vars > self._num_vars:
            self._num_vars = num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        add = self._library.add
        handle = self._handle
        count = 0
        num_vars = self._num_vars
        for lit in literals:
            if lit == 0:
                raise IpasirError("0 is not a valid literal")
            var = lit if lit > 0 else -lit
            if var > num_vars:
                num_vars = var
            add(handle, lit)
            count += 1
        add(handle, 0)
        self._num_vars = num_vars
        if count == 0:
            self._unsat = True
            return False
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        add = self._library.add
        handle = self._handle
        num_vars = self._num_vars
        ok = True
        for clause in clauses:
            count = 0
            for lit in clause:
                if lit == 0:
                    raise IpasirError("0 is not a valid literal")
                var = lit if lit > 0 else -lit
                if var > num_vars:
                    num_vars = var
                add(handle, lit)
                count += 1
            add(handle, 0)
            if count == 0:
                self._unsat = True
                ok = False
        self._num_vars = num_vars
        return ok

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses(cnf.clauses)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: IPASIR solvers manage frozen/melted state internally
        (assumption and value queries keep variables alive)."""

    # -------------------------------------------------------------- solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        # conflict_limit is a budget hint for the internal solver; IPASIR
        # solvers run to completion — unless a deadline is in scope, in
        # which case the optional ipasir_set_terminate hook aborts the
        # solve on expiry (libraries without the hook are still checked
        # between solves).
        self._failed = []
        self._last_result = None
        library = self._library
        handle = self._handle
        deadline = limits.active_deadline()
        terminate_installed = False
        if deadline is not None:
            deadline.check()
            if library.supports_terminate:
                def _should_stop(_data: object) -> int:
                    return 1 if (
                        deadline.expired() or deadline.memory_exceeded()
                    ) else 0
                # Keep the ctypes thunk alive for the duration of the
                # solve; the solver calls it from C.
                self._terminate_thunk = TERMINATE_CALLBACK(_should_stop)
                library.set_terminate(handle, self._terminate_thunk)
                terminate_installed = True
        try:
            for lit in assumptions:
                library.assume(handle, lit)
            result = library.solve(handle)
        finally:
            if terminate_installed:
                library.set_terminate(handle, None)
                self._terminate_thunk = None
        self._solves += 1
        if result == IPASIR_INTERRUPTED and deadline is not None:
            deadline.check()
        if result == IPASIR_SAT:
            self._last_result = True
            return True
        if result == IPASIR_UNSAT:
            self._last_result = False
            self._failed = [
                lit for lit in assumptions if library.failed(handle, lit)
            ]
            return False
        raise IpasirError(
            f"{self.name} returned unexpected solve status {result}"
        )

    def failed_assumptions(self) -> list[int]:
        """Subset of the last solve's assumptions already unsatisfiable
        together with the formula (``ipasir_failed``); empty when the
        formula alone is unsatisfiable or the last result was SAT (guarded
        by the recorded result, so an error path never leaks a core)."""
        if self._last_result is not False:
            return []
        return list(self._failed)

    def model(self) -> dict[int, bool]:
        if not self._last_result:
            return {}
        library = self._library
        handle = self._handle
        return {
            var: library.val(handle, var) > 0
            for var in range(1, self._num_vars + 1)
        }

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        if not self._last_result:
            return {}
        library = self._library
        handle = self._handle
        num_vars = self._num_vars
        return {
            var: (library.val(handle, var) > 0) if 0 < var <= num_vars
            else False
            for var in variables
        }

    def stats(self) -> SolverStats | None:
        """IPASIR exposes no counter API; None means unavailable."""
        return None


class IncrementalPipeBackend:
    """Persistent incremental solving over a line-based subprocess pipe.

    Speaks the ``--incremental`` protocol of :mod:`repro.sat.dimacs_cli`
    (``a``/``s`` command lines in, ``s``/``v``/``f`` result lines out) to a
    single long-lived solver process, so the subprocess path gets the same
    learned-clause persistence as a real IPASIR library — with no system
    solver installed.  Clause lines are buffered and flushed right before
    each solve to keep pipe round-trips off the add_clause hot path.
    """

    def __init__(self, command: Sequence[str] | None = None) -> None:
        if command is None:
            command = [sys.executable, "-m", "repro.sat.dimacs_cli",
                       "--incremental"]
        self._command = list(command)
        self.name = f"ipasir(cli:{os.path.basename(self._command[0])})"
        self._process: subprocess.Popen[str] | None = None
        self._pending: list[str] = []
        self._num_vars = 0
        self._unsat = False
        self._model: dict[int, bool] = {}
        self._failed: list[int] = []
        self._last_result: bool | None = None

    # ------------------------------------------------------------- process

    def _ensure_process(self) -> subprocess.Popen:
        if self._process is None or self._process.poll() is not None:
            if self._process is not None:
                raise IpasirError(
                    f"incremental solver process {self._command!r} exited "
                    f"with status {self._process.returncode}"
                )
            try:
                self._process = subprocess.Popen(
                    self._command,
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    text=True,
                )
            except OSError as exc:
                raise IpasirError(
                    f"failed to start incremental solver "
                    f"{self._command!r}: {exc}"
                ) from exc
        return self._process

    def close(self) -> None:
        """Shut the solver process down (idempotent).

        Escalates: ask nicely (the ``q`` command), then SIGTERM, then
        SIGKILL — a solver stuck in a long propagation (or a misbehaving
        one that ignores SIGTERM) must never be leaked, only the final
        kill is unconditional.
        """
        process = self._process
        self._process = None
        if process is None or process.poll() is not None:
            return
        try:
            if process.stdin is not None:
                process.stdin.write("q\n")
                process.stdin.flush()
                process.stdin.close()
        except OSError:
            pass
        try:
            process.wait(timeout=2)
            return
        except subprocess.TimeoutExpired:
            pass
        process.terminate()
        try:
            process.wait(timeout=2)
            return
        except subprocess.TimeoutExpired:
            pass
        process.kill()
        process.wait()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ----------------------------------------------------------- clause I/O

    def ensure_vars(self, num_vars: int) -> None:
        if num_vars > self._num_vars:
            self._num_vars = num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        clause = list(literals)
        for lit in clause:
            if lit == 0:
                raise IpasirError("0 is not a valid literal")
            var = lit if lit > 0 else -lit
            if var > self._num_vars:
                self._num_vars = var
        self._pending.append(
            "a " + " ".join(str(lit) for lit in clause) + " 0\n"
        )
        if not clause:
            self._unsat = True
            return False
        return True

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def add_cnf(self, cnf: CNF) -> None:
        self.ensure_vars(cnf.num_vars)
        self.add_clauses(cnf.clauses)

    def freeze(self, variables: Iterable[int]) -> None:
        """No-op: the pipe solver keeps every variable."""

    # -------------------------------------------------------------- solving

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> bool | None:
        self._model = {}
        self._failed = []
        self._last_result = None
        process = self._ensure_process()
        assert process.stdin is not None and process.stdout is not None
        # A deadline in scope arms a watchdog that kills the solver
        # process on expiry; the resulting EOF on stdout is then reported
        # as TimeoutExceeded rather than a protocol error.
        deadline = limits.active_deadline()
        watchdog: threading.Timer | None = None
        if deadline is not None:
            deadline.check()
            remaining = deadline.remaining()
            if remaining is not None:
                watchdog = threading.Timer(remaining, process.kill)
                watchdog.daemon = True
                watchdog.start()
        try:
            return self._solve_over_pipe(process, assumptions, deadline)
        finally:
            if watchdog is not None:
                watchdog.cancel()

    def _solve_over_pipe(
        self,
        process: subprocess.Popen,
        assumptions: Sequence[int],
        deadline,
    ) -> bool | None:
        def _gone(exc: Exception | None = None) -> Exception:
            if deadline is not None and (
                deadline.expired() or deadline.memory_exceeded()
            ):
                process.wait()  # the watchdog killed it; reap
                deadline.check()
            error = IpasirError(
                f"incremental solver process {self._command!r} went away"
                + (f": {exc}" if exc is not None else " mid-query")
            )
            if exc is not None:
                error.__cause__ = exc
            return error

        try:
            if self._pending:
                process.stdin.writelines(self._pending)
                self._pending.clear()
            process.stdin.write(
                "s " + " ".join(str(lit) for lit in assumptions) + " 0\n"
            )
            process.stdin.flush()
        except OSError as exc:
            raise _gone(exc)
        status: bool | None = None
        literals: list[int] = []
        while True:
            line = process.stdout.readline()
            if not line:
                raise _gone()
            line = line.strip()
            if line.startswith("s "):
                verdict = line[2:].strip().upper()
                if verdict == "SATISFIABLE":
                    status = True
                elif verdict == "UNSATISFIABLE":
                    status = False
                else:
                    raise IpasirError(f"unexpected status line {line!r}")
            elif line.startswith("v "):
                chunk = [int(token) for token in line[2:].split()]
                if chunk and chunk[-1] == 0:
                    literals.extend(chunk[:-1])
                    break
                literals.extend(chunk)
            elif line.startswith("f "):
                chunk = [int(token) for token in line[2:].split()]
                if chunk and chunk[-1] == 0:
                    chunk.pop()
                self._failed = chunk
                break
            # other lines (comments) are ignored
        if status is None:
            raise IpasirError(
                f"incremental solver process {self._command!r} "
                "produced no verdict"
            )
        if status:
            model = {var: False for var in range(1, self._num_vars + 1)}
            for lit in literals:
                model[abs(lit)] = lit > 0
            self._model = model
        self._last_result = status
        return status

    def failed_assumptions(self) -> list[int]:
        """Failed-assumption core reported by the subprocess (``f`` line);
        empty unless the most recent solve returned UNSAT (guarded by the
        recorded result, so an error path never leaks a core)."""
        if self._last_result is not False:
            return []
        return list(self._failed)

    def model(self) -> dict[int, bool]:
        return dict(self._model)

    def values_of(self, variables: Iterable[int]) -> dict[int, bool]:
        model = self._model
        return {var: model.get(var, False) for var in variables}

    def stats(self) -> SolverStats | None:
        """The pipe protocol does not carry counters; None (unavailable)."""
        return None
