"""DIMACS CNF reading and writing.

The original CheckFence handed its formula to zChaff in DIMACS format; we
provide the same interchange so that formulas produced by this reproduction
can be exported to (or imported from) external SAT solvers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.sat.cnf import CNF


def write_dimacs(cnf: CNF, target: TextIO | str | Path, comments: Iterable[str] = ()) -> None:
    """Write ``cnf`` in DIMACS format to a file path or text stream."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(cnf, handle, comments)
    else:
        _write(cnf, target, comments)


def _write(cnf: CNF, handle: TextIO, comments: Iterable[str]) -> None:
    for comment in comments:
        handle.write(f"c {comment}\n")
    handle.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        handle.write(" ".join(str(lit) for lit in clause) + " 0\n")


def read_dimacs(source: TextIO | str | Path) -> CNF:
    """Parse a DIMACS file into a :class:`CNF`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: TextIO) -> CNF:
    cnf = CNF()
    declared_vars = 0
    current: list[int] = []
    for raw_line in handle:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(lit)
    if current:
        cnf.add_clause(current)
    cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf
