"""SAT solving substrate (stands in for the zChaff solver used by the paper).

Public surface:

* :class:`repro.sat.cnf.CNF` — clause database.
* :class:`repro.sat.solver.Solver` — incremental CDCL solver.
* :class:`repro.sat.backend.SolverBackend` — pluggable solving backends
  (:class:`repro.sat.backend.InternalBackend`,
  :class:`repro.sat.backend.DimacsBackend`) plus the spec resolver
  :func:`repro.sat.backend.make_backend_factory`.
* :class:`repro.sat.circuit.Circuit` / :class:`repro.sat.circuit.CnfLowering`
  — boolean circuits with Tseitin conversion.
* :mod:`repro.sat.simplify` — in-process SatELite-style CNF preprocessing
  (:class:`repro.sat.simplify.SimplifyingBackend`) between lowering and
  solving, with model reconstruction and a frozen-variable contract.
* :class:`repro.sat.bitvec.BitVecBuilder` — fixed-width bit-vector terms.
* :mod:`repro.sat.dimacs` — DIMACS import/export (and
  :mod:`repro.sat.dimacs_cli`, a competition-style CLI around the internal
  solver).
"""

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SolverStats, solve_cnf
from repro.sat.backend import (
    BackendError,
    BackendFactory,
    DimacsBackend,
    InternalBackend,
    SolverBackend,
    default_backend_spec,
    find_dimacs_solver,
    make_backend_factory,
)
from repro.sat.circuit import Circuit, CnfLowering
from repro.sat.bitvec import BitVec, BitVecBuilder, width_for
from repro.sat.dimacs import read_dimacs, write_dimacs
from repro.sat.simplify import (
    Simplifier,
    SimplifyingBackend,
    SimplifyStats,
    simplify_cnf,
    simplify_enabled,
    simplify_min_clauses,
)

__all__ = [
    "CNF",
    "Solver",
    "SolverStats",
    "solve_cnf",
    "BackendError",
    "BackendFactory",
    "DimacsBackend",
    "InternalBackend",
    "SolverBackend",
    "default_backend_spec",
    "find_dimacs_solver",
    "make_backend_factory",
    "Circuit",
    "CnfLowering",
    "BitVec",
    "BitVecBuilder",
    "width_for",
    "read_dimacs",
    "write_dimacs",
    "Simplifier",
    "SimplifyingBackend",
    "SimplifyStats",
    "simplify_cnf",
    "simplify_enabled",
    "simplify_min_clauses",
]
