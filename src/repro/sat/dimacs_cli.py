"""A DIMACS competition-style command line around the internal solver.

``python -m repro.sat.dimacs_cli FILE.cnf`` reads a DIMACS file, solves it
with :class:`repro.sat.solver.Solver`, and reports the result in the SAT
competition output format: an ``s SATISFIABLE`` / ``s UNSATISFIABLE`` status
line, ``v`` lines with the model, and exit code 10 (SAT) or 20 (UNSAT).

``python -m repro.sat.dimacs_cli --incremental`` instead speaks a
line-based incremental protocol on stdin/stdout, keeping one persistent
solver (and therefore its learned clauses) across queries:

* ``a <lit> ... 0`` — add a clause;
* ``s <lit> ... 0`` — solve under the given assumptions; answers with an
  ``s`` status line followed by ``v`` lines + ``v 0`` (SAT) or an
  ``f <lit> ... 0`` failed-assumption core line (UNSAT);
* ``q`` — quit.

This gives :class:`repro.sat.backend.DimacsBackend` a solver process that is
always available, so the subprocess/DIMACS interchange path can be exercised
(and differentially tested) even on machines without minisat/kissat/cadical —
and gives :class:`repro.sat.ipasir.IncrementalPipeBackend` an incremental
subprocess solver that works without any system SAT library installed.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.sat.dimacs import read_dimacs
from repro.sat.solver import Solver

SAT_EXIT_CODE = 10
UNSAT_EXIT_CODE = 20

_LITERALS_PER_LINE = 16


def _write_model(out: IO[str], solver: Solver) -> None:
    model = solver.model()
    literals = [
        var if model.get(var, False) else -var
        for var in range(1, solver.num_vars + 1)
    ]
    for start in range(0, len(literals), _LITERALS_PER_LINE):
        chunk = literals[start:start + _LITERALS_PER_LINE]
        out.write("v " + " ".join(str(lit) for lit in chunk) + "\n")
    out.write("v 0\n")


def _parse_literals(tokens: list[str], line: str) -> list[int]:
    literals = [int(token) for token in tokens]
    if not literals or literals[-1] != 0:
        raise ValueError(f"incremental command not 0-terminated: {line!r}")
    literals.pop()
    return literals


def run_incremental(source: IO[str], out: IO[str]) -> int:
    """The ``--incremental`` protocol loop (one persistent solver)."""
    solver = Solver()
    for line in source:
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line == "q":
            break
        command, *tokens = line.split()
        if command == "a":
            literals = _parse_literals(tokens, line)
            for lit in literals:
                solver.ensure_vars(abs(lit))
            solver.add_clause(literals)
        elif command == "s":
            assumptions = _parse_literals(tokens, line)
            for lit in assumptions:
                solver.ensure_vars(abs(lit))
            if solver.solve(assumptions=assumptions):
                out.write("s SATISFIABLE\n")
                _write_model(out, solver)
            else:
                out.write("s UNSATISFIABLE\n")
                core = solver.failed_assumptions()
                out.write("f " + " ".join(str(lit) for lit in core) + " 0\n")
            out.flush()
        else:
            print(f"c ignoring unknown command line: {line!r}",
                  file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv == ["--incremental"]:
        return run_incremental(sys.stdin, sys.stdout)
    if len(argv) != 1:
        print(
            "usage: python -m repro.sat.dimacs_cli (FILE.cnf | --incremental)",
            file=sys.stderr,
        )
        return 2
    cnf = read_dimacs(argv[0])
    solver = Solver(cnf)
    if not solver.solve():
        print("s UNSATISFIABLE")
        return UNSAT_EXIT_CODE
    print("s SATISFIABLE")
    _write_model(sys.stdout, solver)
    return SAT_EXIT_CODE


if __name__ == "__main__":
    sys.exit(main())
