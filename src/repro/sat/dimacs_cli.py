"""A DIMACS competition-style command line around the internal solver.

``python -m repro.sat.dimacs_cli FILE.cnf`` reads a DIMACS file, solves it
with :class:`repro.sat.solver.Solver`, and reports the result in the SAT
competition output format: an ``s SATISFIABLE`` / ``s UNSATISFIABLE`` status
line, ``v`` lines with the model, and exit code 10 (SAT) or 20 (UNSAT).

This gives :class:`repro.sat.backend.DimacsBackend` a solver process that is
always available, so the subprocess/DIMACS interchange path can be exercised
(and differentially tested) even on machines without minisat/kissat/cadical.
"""

from __future__ import annotations

import sys

from repro.sat.dimacs import read_dimacs
from repro.sat.solver import Solver

SAT_EXIT_CODE = 10
UNSAT_EXIT_CODE = 20

_LITERALS_PER_LINE = 16


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.sat.dimacs_cli FILE.cnf", file=sys.stderr)
        return 2
    cnf = read_dimacs(argv[0])
    solver = Solver(cnf)
    if not solver.solve():
        print("s UNSATISFIABLE")
        return UNSAT_EXIT_CODE
    model = solver.model()
    print("s SATISFIABLE")
    literals = [
        var if model.get(var, False) else -var
        for var in range(1, cnf.num_vars + 1)
    ]
    for start in range(0, len(literals), _LITERALS_PER_LINE):
        chunk = literals[start:start + _LITERALS_PER_LINE]
        print("v " + " ".join(str(lit) for lit in chunk))
    print("v 0")
    return SAT_EXIT_CODE


if __name__ == "__main__":
    sys.exit(main())
