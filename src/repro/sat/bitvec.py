"""Fixed-width bit-vectors over :class:`repro.sat.circuit.Circuit`.

The back-end encodes every LSL value as an unsigned bit-vector whose width is
chosen by the range analysis (Section 3.4 of the paper).  This module
provides the small arithmetic vocabulary the encoder needs: constants, fresh
symbolic vectors, equality, multiplexers, addition/subtraction by constants,
and unsigned comparisons.

Bit order is least-significant-bit first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sat.circuit import Circuit


@dataclass(frozen=True)
class BitVec:
    """A vector of circuit handles, LSB first."""

    bits: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> int:
        return self.bits[index]


class BitVecBuilder:
    """Constructs bit-vector terms in a given circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit

    # ------------------------------------------------------------- creation

    def const(self, value: int, width: int) -> BitVec:
        if value < 0:
            raise ValueError("bit-vectors are unsigned")
        if width > 0 and value >= (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")
        bits = tuple(
            self.circuit.TRUE if (value >> i) & 1 else self.circuit.FALSE
            for i in range(width)
        )
        return BitVec(bits)

    def fresh(self, width: int, name: str = "bv") -> BitVec:
        bits = tuple(self.circuit.var(f"{name}.{i}") for i in range(width))
        return BitVec(bits)

    def from_bits(self, bits: Sequence[int]) -> BitVec:
        return BitVec(tuple(bits))

    def from_bool(self, handle: int, width: int = 1) -> BitVec:
        """Embed a single boolean as a bit-vector (zero-extended)."""
        bits = [handle] + [self.circuit.FALSE] * (width - 1)
        return BitVec(tuple(bits))

    # ------------------------------------------------------------ structure

    def zero_extend(self, vec: BitVec, width: int) -> BitVec:
        if vec.width >= width:
            return BitVec(vec.bits[:width])
        return BitVec(vec.bits + (self.circuit.FALSE,) * (width - vec.width))

    def match_widths(self, a: BitVec, b: BitVec) -> tuple[BitVec, BitVec]:
        width = max(a.width, b.width)
        return self.zero_extend(a, width), self.zero_extend(b, width)

    # ------------------------------------------------------------ predicates

    def eq(self, a: BitVec, b: BitVec) -> int:
        a, b = self.match_widths(a, b)
        return self.circuit.and_many(
            self.circuit.iff(x, y) for x, y in zip(a.bits, b.bits)
        )

    def ne(self, a: BitVec, b: BitVec) -> int:
        return -self.eq(a, b)

    def eq_const(self, a: BitVec, value: int) -> int:
        return self.eq(a, self.const(value, a.width))

    def is_zero(self, a: BitVec) -> int:
        return self.circuit.and_many(-bit for bit in a.bits)

    def ult(self, a: BitVec, b: BitVec) -> int:
        """Unsigned a < b."""
        a, b = self.match_widths(a, b)
        result = self.circuit.FALSE
        for x, y in zip(a.bits, b.bits):  # LSB to MSB
            bit_lt = self.circuit.and_(-x, y)
            bit_eq = self.circuit.iff(x, y)
            result = self.circuit.or_(bit_lt, self.circuit.and_(bit_eq, result))
        return result

    def ule(self, a: BitVec, b: BitVec) -> int:
        return self.circuit.or_(self.ult(a, b), self.eq(a, b))

    def ugt(self, a: BitVec, b: BitVec) -> int:
        return self.ult(b, a)

    def uge(self, a: BitVec, b: BitVec) -> int:
        return self.ule(b, a)

    # ------------------------------------------------------------ arithmetic

    def add(self, a: BitVec, b: BitVec) -> BitVec:
        """Ripple-carry addition, truncated to max(width(a), width(b))."""
        a, b = self.match_widths(a, b)
        circuit = self.circuit
        carry = circuit.FALSE
        out = []
        for x, y in zip(a.bits, b.bits):
            s = circuit.xor(circuit.xor(x, y), carry)
            carry = circuit.or_(
                circuit.and_(x, y),
                circuit.and_(carry, circuit.xor(x, y)),
            )
            out.append(s)
        return BitVec(tuple(out))

    def add_const(self, a: BitVec, value: int) -> BitVec:
        if value == 0:
            return a
        return self.add(a, self.const(value % (1 << a.width), a.width))

    def negate(self, a: BitVec) -> BitVec:
        """Two's complement negation (modulo 2^width)."""
        inverted = BitVec(tuple(-bit for bit in a.bits))
        return self.add_const(inverted, 1)

    def sub(self, a: BitVec, b: BitVec) -> BitVec:
        a, b = self.match_widths(a, b)
        return self.add(a, self.negate(b))

    # -------------------------------------------------------------- logical

    def ite(self, cond: int, then_vec: BitVec, else_vec: BitVec) -> BitVec:
        then_vec, else_vec = self.match_widths(then_vec, else_vec)
        bits = tuple(
            self.circuit.ite(cond, t, e)
            for t, e in zip(then_vec.bits, else_vec.bits)
        )
        return BitVec(bits)

    def bitwise_and(self, a: BitVec, b: BitVec) -> BitVec:
        a, b = self.match_widths(a, b)
        return BitVec(tuple(self.circuit.and_(x, y) for x, y in zip(a, b)))

    def bitwise_or(self, a: BitVec, b: BitVec) -> BitVec:
        a, b = self.match_widths(a, b)
        return BitVec(tuple(self.circuit.or_(x, y) for x, y in zip(a, b)))

    def bitwise_xor(self, a: BitVec, b: BitVec) -> BitVec:
        a, b = self.match_widths(a, b)
        return BitVec(tuple(self.circuit.xor(x, y) for x, y in zip(a, b)))

    def bitwise_not(self, a: BitVec) -> BitVec:
        return BitVec(tuple(-bit for bit in a.bits))

    # ------------------------------------------------------------- decoding

    def select(self, index: BitVec, table: Sequence[BitVec], default: BitVec) -> BitVec:
        """Multiplex ``table[index]`` with a fallback for out-of-range values."""
        result = default
        for i, entry in enumerate(table):
            result = self.ite(self.eq_const(index, i), entry, result)
        return result

    @staticmethod
    def decode(vec: BitVec, evaluate) -> int:
        """Decode a bit-vector to an int given a bit-evaluation function."""
        value = 0
        for i, bit in enumerate(vec.bits):
            if evaluate(bit):
                value |= 1 << i
        return value


def width_for(max_value: int) -> int:
    """Smallest width able to represent ``max_value`` (at least 1 bit)."""
    if max_value <= 0:
        return 1
    return max(1, max_value.bit_length())
