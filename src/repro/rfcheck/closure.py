"""Incremental order closure: the polynomial core of the rf engine.

An :class:`OrderClosure` maintains a strict partial order over a small set
of nodes as reachability bitmasks (one ``succ``/``pred`` integer per node),
so edge insertion updates the transitive closure in ``O(n)`` word
operations and cycle detection is a single bit test.  On top of the plain
edges it tracks *coherence clauses* — binary disjunctions of order literals
of the shape "either s' precedes s, or the load precedes s'" that the value
axiom produces for every potentially intervening store.  Clauses are
unit-propagated: as soon as one disjunct becomes cyclic the other is forced
as an edge, which may cascade.

Saturation alone is not a decision procedure — checking a reads-from
assignment against a sequentially consistent order is NP-complete in
general (Gibbons & Korach 1997), and the hardness lives exactly in the
residual disjunctions.  :meth:`OrderClosure.consistent` therefore finishes
with a backtracking split over whatever clauses survive propagation.  On
the litmus-shaped programs this engine targets the residue is almost always
empty, so the engine is polynomial in practice; the split keeps it *exact*
rather than merely sound, which the three-way differential harness
requires.  All work is metered through a :class:`Gas` budget so a
pathological program degrades to an INCONCLUSIVE verdict, never a hang.
"""

from __future__ import annotations

from repro.core import limits


class ClosureBudgetExceeded(Exception):
    """The closure/mining work budget ran out (surfaces as INCONCLUSIVE)."""


class Gas:
    """A shared work meter: candidate applications, clause splits and value
    completions all draw from one budget."""

    __slots__ = ("limit", "spent")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def spend(self, amount: int = 1) -> None:
        self.spent += amount
        if self.spent & 255 < amount:
            limits.check_deadline()
        if self.spent > self.limit:
            raise ClosureBudgetExceeded(
                f"exceeded {self.limit} rf consistency checks"
            )


#: An order literal: ``(u, v)`` asserts ``u <M v`` at the node level.
Lit = tuple[int, int]


class OrderClosure:
    """A transitively closed strict order plus pending coherence clauses."""

    __slots__ = ("n", "succ", "pred", "clauses")

    def __init__(self, n: int) -> None:
        self.n = n
        self.succ: list[int] = [0] * n
        self.pred: list[int] = [0] * n
        self.clauses: list[tuple[Lit, Lit]] = []

    def clone(self) -> "OrderClosure":
        copy = OrderClosure.__new__(OrderClosure)
        copy.n = self.n
        copy.succ = self.succ[:]
        copy.pred = self.pred[:]
        copy.clauses = self.clauses[:]
        return copy

    def holds(self, u: int, v: int) -> bool:
        """Is ``u <M v`` already implied?"""
        return bool((self.succ[u] >> v) & 1)

    # ----------------------------------------------------------- insertion

    def _insert(self, u: int, v: int) -> bool:
        """Add ``u <M v`` and re-close; False iff it would create a cycle."""
        if u == v or (self.succ[v] >> u) & 1:
            return False
        if (self.succ[u] >> v) & 1:
            return True
        sources = self.pred[u] | (1 << u)
        targets = self.succ[v] | (1 << v)
        succ = self.succ
        pred = self.pred
        mask = sources
        while mask:
            low = mask & -mask
            succ[low.bit_length() - 1] |= targets
            mask ^= low
        mask = targets
        while mask:
            low = mask & -mask
            pred[low.bit_length() - 1] |= sources
            mask ^= low
        return True

    def add_edge(self, u: int, v: int) -> bool:
        """Insert an edge and propagate clause consequences."""
        return self._insert(u, v) and self.propagate()

    def add_clause(self, first: Lit, second: Lit) -> bool:
        """Add the disjunction ``first OR second`` (each a ``u <M v``)."""
        for u, v in (first, second):
            if self.holds(u, v):
                return True  # already satisfied
        first_open = first[0] != first[1] and not self.holds(first[1], first[0])
        second_open = (
            second[0] != second[1] and not self.holds(second[1], second[0])
        )
        if first_open and second_open:
            self.clauses.append((first, second))
            return True
        if first_open:
            return self._insert(*first) and self.propagate()
        if second_open:
            return self._insert(*second) and self.propagate()
        return False

    # --------------------------------------------------------- propagation

    def propagate(self) -> bool:
        """Unit-propagate the pending clauses to fixpoint.

        Satisfied clauses are dropped; a clause whose two disjuncts are both
        cyclic refutes the state; one cyclic disjunct forces the other as an
        edge (which may cascade).  False iff the state became inconsistent.
        """
        changed = True
        while changed:
            changed = False
            remaining: list[tuple[Lit, Lit]] = []
            for clause in self.clauses:
                first, second = clause
                if self.holds(*first) or self.holds(*second):
                    changed = True  # dropped: cheap, no re-scan needed, but
                    continue        # an insert below still triggers one
                first_open = not self.holds(first[1], first[0])
                second_open = not self.holds(second[1], second[0])
                if first_open and second_open:
                    remaining.append(clause)
                    continue
                if not first_open and not second_open:
                    return False
                forced = first if first_open else second
                if not self._insert(*forced):
                    return False
                changed = True
            self.clauses = remaining
        return True

    # ------------------------------------------------------------ decision

    def consistent(self, gas: Gas) -> bool:
        """Can every pending clause be honoured by one acyclic order?

        Assumes :meth:`propagate` already ran.  Splits on the first pending
        clause and recurses; each split charges ``gas``.
        """
        if not self.clauses:
            return True
        first, second = self.clauses[0]
        for lit in (first, second):
            gas.spend()
            trial = self.clone()
            del trial.clauses[0]
            if (
                trial._insert(*lit)
                and trial.propagate()
                and trial.consistent(gas)
            ):
                return True
        return False
