"""Model rules: the static Section 2.3 axiom relations, as event pairs.

This is the third implementation of the paper's axioms (after the SAT
constraints of :mod:`repro.encoding.memory` and the scheduling rules of
:mod:`repro.oracle.enumerator`): given one extracted trace and one
:class:`~repro.memorymodel.base.MemoryModel`, produce the *static* order
edges every execution must respect —

* preserved program order (``model.preserved_program_order``),
* the same-address store-order axiom (Relaxed axiom 1),
* fence order (accesses before a fence whose kinds the fence orders on the
  before side precede accesses after it on the after side),
* atomic-block program order,
* "initialization happens first" (every init-thread access precedes every
  test access, and init accesses are totally ordered among themselves).

Store-buffer forwarding is *not* a static relation — it selects which store
a load may read — so this module only computes the per-load forwarding
candidates; the reads-from modes built from them live in
:mod:`repro.rfcheck.relations`.
"""

from __future__ import annotations

from repro.encoding.testprogram import INIT_THREAD
from repro.memorymodel.base import MemoryModel
from repro.oracle.trace import AccessEvent, ProgramTrace


def static_order_pairs(
    trace: ProgramTrace, model: MemoryModel
) -> list[tuple[int, int]]:
    """Every ``(first_eid, second_eid)`` pair the axioms order statically."""
    by_thread: dict[int, list[AccessEvent]] = {}
    for event in trace.events:
        by_thread.setdefault(event.thread, []).append(event)
    for members in by_thread.values():
        members.sort(key=lambda e: e.seq)

    pairs: list[tuple[int, int]] = []
    for members in by_thread.values():
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                ordered = (
                    first.thread == INIT_THREAD
                    or model.preserves(first.kind, second.kind)
                    or (
                        model.same_address_store_order
                        and second.is_store
                        and first.addr == second.addr
                    )
                    or (
                        first.atomic_group is not None
                        and first.atomic_group == second.atomic_group
                    )
                )
                if ordered:
                    pairs.append((first.eid, second.eid))
    for fence in trace.fences:
        members = by_thread.get(fence.thread, [])
        before = [
            e for e in members
            if e.seq < fence.seq and e.kind in fence.kind.orders_before
        ]
        after = [
            e for e in members
            if e.seq > fence.seq and e.kind in fence.kind.orders_after
        ]
        for second in after:
            for first in before:
                pairs.append((first.eid, second.eid))

    inits = [e for e in trace.events if e.thread == INIT_THREAD]
    rest = [e for e in trace.events if e.thread != INIT_THREAD]
    for first in inits:
        for second in rest:
            pairs.append((first.eid, second.eid))
    return pairs


def forwarding_candidates(
    trace: ProgramTrace, model: MemoryModel
) -> dict[int, list[AccessEvent]]:
    """Per-load program-order-earlier same-thread same-address stores,
    newest first — the stores a buffered load may forward from.

    Mirrors the enumerator's candidate construction, including its refusal
    of the ambiguous forwarding-without-same-address-order configuration
    (no shipped model has it, but a mutated one might).
    """
    from repro.rfcheck.relations import RfUnsupported

    candidates: dict[int, list[AccessEvent]] = {}
    if not model.store_forwarding:
        return candidates
    by_thread: dict[int, list[AccessEvent]] = {}
    for event in trace.events:
        by_thread.setdefault(event.thread, []).append(event)
    for members in by_thread.values():
        for event in members:
            if not event.is_load:
                continue
            earlier = [
                s for s in members
                if s.is_store and s.seq < event.seq and s.addr == event.addr
            ]
            if earlier:
                if not model.same_address_store_order and len(earlier) > 1:
                    raise RfUnsupported(
                        "store forwarding without the same-address "
                        "store-order axiom is ambiguous; not supported"
                    )
                earlier.sort(key=lambda s: s.seq, reverse=True)
                candidates[event.eid] = earlier
    return candidates
