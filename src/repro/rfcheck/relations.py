"""Reads-from candidate structure for one trace under one model.

:class:`RfStructure` turns a :class:`~repro.oracle.trace.ProgramTrace` into
the inputs of the closure engine:

* a node space — one node per access, except under Seriality (operation
  atomicity), where whole invocations must be contiguous in ``<M``; there
  the closure runs on the *invocation quotient* (one node per invocation,
  intra-invocation order decided by program order, which Seriality
  preserves totally — so quotient acyclicity is exact, not approximate);
* a base closure pre-loaded with the static axiom edges from
  :mod:`repro.rfcheck.models`;
* for every load, its *reads-from candidates*, each a mode with the order
  constraints that make it the ``<M``-maximal visible store of the paper's
  value axiom:

  - ``store s`` — s performed before the load, and no other same-address
    store performed strictly between them (one binary clause per potential
    intervener); with forwarding, the thread's own newest earlier store
    must also have drained (else the buffer, not memory, is visible);
  - ``forward s`` — only the program-order-newest own earlier store can be
    forwarded (the same-address axiom keeps older ones behind it), and it
    forwards exactly while still pending: a single edge ``load <M s``;
  - ``init`` — every same-address store performs after the load; under
    forwarding this is impossible as soon as an own earlier store exists
    (it would still be pending, and pending wins).

Candidates statically contradicted by the base closure are pruned before
mining ever starts.  Atomic blocks under a non-serial model would need the
enumerator's exclusion semantics, which no quotient captures — those traces
raise :class:`RfUnsupported` and surface as INCONCLUSIVE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memorymodel.base import MemoryModel, get_model
from repro.oracle.trace import AccessEvent, ProgramTrace
from repro.rfcheck.closure import Lit, OrderClosure
from repro.rfcheck.models import forwarding_candidates, static_order_pairs


class RfUnsupported(Exception):
    """The trace lies outside the fragment the rf engine can decide."""


@dataclass(frozen=True)
class RfCandidate:
    """One way a load may obtain its value."""

    mode: str                       # "store" | "forward" | "init"
    store: AccessEvent | None       # None iff mode == "init"

    def __repr__(self) -> str:
        if self.store is None:
            return "<rf:init>"
        return f"<rf:{self.mode} e{self.store.eid}>"


#: A candidate with its pre-simplified constraints: required node edges and
#: residual binary clauses.
Constrained = tuple[RfCandidate, list[Lit], list[tuple[Lit, Lit]]]


class RfStructure:
    """The closure inputs of one (trace, model) pair."""

    def __init__(self, trace: ProgramTrace, model: MemoryModel | str) -> None:
        self.trace = trace
        self.model = model = get_model(model)
        self.events = trace.events

        if not model.operation_atomicity and any(
            e.atomic_group is not None for e in self.events
        ):
            raise RfUnsupported(
                "atomic blocks outside the serial model need the "
                "enumerator's exclusion semantics; not supported"
            )

        # Node space: events, or the invocation quotient under Seriality.
        if model.operation_atomicity:
            groups: dict[int, int] = {}
            self.node_of = [
                groups.setdefault(e.invocation, len(groups))
                for e in self.events
            ]
            self.node_count = len(groups)
        else:
            self.node_of = list(range(len(self.events)))
            self.node_count = len(self.events)

        self.base = OrderClosure(self.node_count)
        for first_eid, second_eid in static_order_pairs(trace, model):
            lit = self._project(first_eid, second_eid)
            if lit is True:
                continue
            if lit is False or not self.base.add_edge(*lit):
                # Static axioms only follow program order, so a refutation
                # here means a broken (mutated) model, not a real one.
                raise RfUnsupported("static axiom order is contradictory")

        self.loads = [e for e in self.events if e.is_load]
        self.stores_by_addr: dict[int, list[AccessEvent]] = {}
        for event in self.events:
            if event.is_store:
                self.stores_by_addr.setdefault(event.addr, []).append(event)
        self.forward_candidates = forwarding_candidates(trace, model)

    # ------------------------------------------------------------ literals

    def _project(self, first_eid: int, second_eid: int) -> Lit | bool:
        """The node-level literal for event order ``first <M second``.

        Within one quotient node (same invocation under Seriality) the
        order is program order, so the literal folds to a constant.
        """
        u = self.node_of[first_eid]
        v = self.node_of[second_eid]
        if u == v:
            first = self.events[first_eid]
            second = self.events[second_eid]
            return first.seq < second.seq
        return (u, v)

    def order_lit(self, first: AccessEvent, second: AccessEvent) -> Lit | bool:
        return self._project(first.eid, second.eid)

    def _value(self, lit: Lit | bool) -> Lit | bool:
        """Fold a literal against the static base closure."""
        if lit is True or lit is False:
            return lit
        u, v = lit
        if self.base.holds(u, v):
            return True
        if self.base.holds(v, u):
            return False
        return lit

    # ---------------------------------------------------------- candidates

    def candidates(self, load: AccessEvent) -> list[Constrained]:
        """Every statically feasible reads-from candidate of ``load``."""
        stores = self.stores_by_addr.get(load.addr, [])
        forwards = self.forward_candidates.get(load.eid)
        newest = forwards[0] if forwards else None

        out: list[Constrained] = []
        for store in stores:
            edges: list[Lit | bool] = [self.order_lit(store, load)]
            if newest is not None:
                edges.append(self.order_lit(newest, load))
            clauses = [
                (self.order_lit(other, store), self.order_lit(load, other))
                for other in stores
                if other.eid != store.eid
            ]
            constrained = self._simplify(edges, clauses)
            if constrained is not None:
                out.append((RfCandidate("store", store), *constrained))
        if newest is not None:
            constrained = self._simplify([self.order_lit(load, newest)], [])
            if constrained is not None:
                out.append((RfCandidate("forward", newest), *constrained))
        else:
            # Initial value: no store to the address may perform earlier.
            constrained = self._simplify(
                [self.order_lit(load, store) for store in stores], []
            )
            if constrained is not None:
                out.append((RfCandidate("init", None), *constrained))
        return out

    def _simplify(
        self,
        edges: list[Lit | bool],
        clauses: list[tuple[Lit | bool, Lit | bool]],
    ) -> tuple[list[Lit], list[tuple[Lit, Lit]]] | None:
        """Fold constants out of a candidate's constraints.

        ``None`` means statically contradictory (the candidate is pruned);
        otherwise returns the residual required edges and binary clauses.
        """
        required: list[Lit] = []
        for lit in edges:
            lit = self._value(lit)
            if lit is False:
                return None
            if lit is not True:
                required.append(lit)
        residual: list[tuple[Lit, Lit]] = []
        for first, second in clauses:
            first = self._value(first)
            second = self._value(second)
            if first is True or second is True:
                continue
            if first is False and second is False:
                return None
            if first is False:
                required.append(second)
            elif second is False:
                required.append(first)
            else:
                residual.append((first, second))
        return required, residual
