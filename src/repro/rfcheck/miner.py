"""The rf-space miner: outcome sets by guided reads-from enumeration.

Where the SAT path mines outcomes by solve/decode/block and the enumerator
walks perform interleavings, this engine enumerates *reads-from
assignments*: one candidate source per load (a store, the forwarded own
store, or the initial value — :mod:`repro.rfcheck.relations`), checked for
consistency by the polynomial closure as the assignment grows, so
contradictory prefixes are pruned before they multiply.  Candidate sets are
already value-feasible by construction — a load can only return a value
some same-location store (or the location's initial value) supplies, which
is exactly the per-location pruning the trace layer's concrete addresses
make possible.

A consistent assignment determines the loads' values through the source
expressions: an acyclic value flow resolves by fixpoint substitution; a
cyclic residue (the out-of-thin-air shapes Relaxed admits — load-buffering
with copied values) is enumerated over the bounded domain and checked
against the equations, mirroring the enumerator's guess-and-verify.
Unbound free/init tokens are completed over their domains exactly like the
enumerator, so all three engines agree on the value semantics.

Budgets (trace steps, closure checks, value domains) degrade to an
``INCONCLUSIVE`` :class:`RfCheckResult`, never an exception or a wrong
verdict.  The miner does *not* produce final-memory images: the final store
of a location depends on the coherence order, which an rf assignment only
partially constrains — use the enumerator for final-memory queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.encoding.testprogram import CompiledTest
from repro.lsl.values import is_undef
from repro.memorymodel.base import MemoryModel, get_model
from repro.oracle.enumerator import INCONCLUSIVE, OK
from repro.oracle.trace import (
    AccessEvent,
    OracleUnsupported,
    ProgramTrace,
    Token,
    TraceExtractor,
    TraceLimitExceeded,
    Unresolved,
    eval_expr,
    expr_tokens,
)
from repro.rfcheck.closure import ClosureBudgetExceeded, Gas, OrderClosure
from repro.rfcheck.relations import RfCandidate, RfStructure, RfUnsupported


@dataclass
class RfCheckResult:
    """Outcome of one rf-space mining run.

    ``outcomes`` uses the same observation-vector slot order as the other
    two engines.  ``assignments`` counts complete rf assignments reached,
    ``checks`` the closure/value work spent (the ``max_checks`` budget).
    """

    status: str
    model: str
    outcomes: set[tuple[int, ...]] = field(default_factory=set)
    reason: str = ""
    traces: int = 0
    assignments: int = 0
    checks: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def allows(self, observation: tuple[int, ...]) -> bool:
        if not self.ok:
            raise RuntimeError(
                f"rf engine was inconclusive ({self.reason}); no verdict"
            )
        return tuple(observation) in self.outcomes


def rfcheck_outcomes(
    compiled: CompiledTest,
    model: MemoryModel | str,
    max_steps: int = 100_000,
    max_checks: int = 250_000,
    max_domain: int = 64,
) -> RfCheckResult:
    """Enumerate every outcome of ``compiled`` allowed by ``model`` via
    reads-from mining.

    Budgets: ``max_steps`` bounds trace extraction, ``max_checks`` bounds
    closure applications/splits and value completions, ``max_domain``
    bounds guessed-token domains.  Breaching any returns INCONCLUSIVE.
    """
    model = get_model(model)
    result = RfCheckResult(status=OK, model=model.name)
    try:
        traces = TraceExtractor(compiled, max_steps=max_steps).traces()
    except (OracleUnsupported, TraceLimitExceeded) as exc:
        result.status = INCONCLUSIVE
        result.reason = str(exc)
        return result
    result.traces = len(traces)
    gas = Gas(max_checks)
    try:
        for trace in traces:
            _TraceMiner(
                compiled, trace, model, gas, max_domain, result
            ).mine()
    except (RfUnsupported, OracleUnsupported, TraceLimitExceeded,
            ClosureBudgetExceeded) as exc:
        result.status = INCONCLUSIVE
        result.reason = str(exc)
    result.checks = gas.spent
    return result


def check_rf_assignment(
    structure: RfStructure,
    assignment: dict[int, RfCandidate | tuple[str, int | None]],
    gas: Gas | None = None,
) -> bool:
    """Decide whether one candidate reads-from assignment is consistent.

    ``assignment`` maps every load's ``eid`` to its source — an
    :class:`RfCandidate` or a ``(mode, store_eid)`` pair.  This is the
    per-assignment decision procedure underneath the miner, exposed for
    tests and spot checks.
    """
    gas = gas if gas is not None else Gas(100_000)
    closure = structure.base.clone()
    for load in structure.loads:
        want = assignment[load.eid]
        if isinstance(want, RfCandidate):
            want = (want.mode, want.store.eid if want.store else None)
        for cand, edges, clauses in structure.candidates(load):
            if (cand.mode, cand.store.eid if cand.store else None) == want:
                break
        else:
            return False  # statically pruned, or not a candidate at all
        for u, v in edges:
            if not closure.add_edge(u, v):
                return False
        for first, second in clauses:
            if not closure.add_clause(first, second):
                return False
    return closure.propagate() and closure.consistent(gas)


class _TraceMiner:
    """Depth-first rf enumeration over one trace."""

    def __init__(
        self,
        compiled: CompiledTest,
        trace: ProgramTrace,
        model: MemoryModel,
        gas: Gas,
        max_domain: int,
        result: RfCheckResult,
    ) -> None:
        self.compiled = compiled
        self.trace = trace
        self.model = model
        self.gas = gas
        self.max_domain = max_domain
        self.result = result
        width = max(compiled.ranges.width(), 1)
        self.mask = (1 << width) - 1
        self.domain_size = (
            1 << width if (1 << width) <= max_domain else None
        )
        self._init_tokens: dict[int, Token] = {}

    def mine(self) -> None:
        structure = RfStructure(self.trace, self.model)
        self.structure = structure
        self.cands = {
            load.eid: structure.candidates(load) for load in structure.loads
        }
        # Fewest candidates first: cheap fail-fast ordering.
        self.loads = sorted(
            structure.loads, key=lambda l: (len(self.cands[l.eid]), l.eid)
        )
        self._dfs(0, structure.base.clone(), {})

    # ------------------------------------------------------------------ DFS

    def _dfs(
        self, index: int, closure: OrderClosure,
        chosen: dict[int, RfCandidate],
    ) -> None:
        if index == len(self.loads):
            self.result.assignments += 1
            if closure.clauses and not closure.consistent(self.gas):
                return
            self._emit(chosen)
            return
        load = self.loads[index]
        for cand, edges, clauses in self.cands[load.eid]:
            self.gas.spend()
            trial = closure.clone()
            ok = True
            for u, v in edges:
                if not trial.add_edge(u, v):
                    ok = False
                    break
            if ok:
                for first, second in clauses:
                    if not trial.add_clause(first, second):
                        ok = False
                        break
            if ok:
                self._dfs(index + 1, trial, {**chosen, load.eid: cand})

    # ----------------------------------------------------------- valuation

    def _emit(self, chosen: dict[int, RfCandidate]) -> None:
        """Resolve the loads' values under one consistent assignment."""
        bindings: dict = {}
        pending: list[tuple[Token, object]] = [
            (load.value, self._source_expr(load, chosen[load.eid]))
            for load in self.loads
        ]
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for token, expr in pending:
                try:
                    value = eval_expr(expr, bindings, self.mask)
                except Unresolved:
                    remaining.append((token, expr))
                    continue
                bindings[token] = value
                progress = True
            pending = remaining

        # Cyclic residue (out-of-thin-air value flow) and free tokens
        # feeding it: guess over the bounded domain, verify the equations.
        residual_tokens: list[Token] = []
        seen: set[Token] = set()
        for token, expr in pending:
            for blocked in expr_tokens(expr) | {token}:
                if blocked not in bindings and blocked not in seen:
                    seen.add(blocked)
                    residual_tokens.append(blocked)
        domains = [list(self._domain(t)) for t in residual_tokens]
        for combo in product(*domains) if domains else [()]:
            if residual_tokens:
                self.gas.spend()
            full = dict(bindings)
            full.update(zip(residual_tokens, combo))
            if all(
                eval_expr(expr, full, self.mask) == full[token]
                for token, expr in pending
            ):
                self._complete(full)

    def _complete(self, bindings: dict) -> None:
        """Enumerate still-unbound observation/constraint tokens, exactly
        like the enumerator's completion."""
        unbound: list[Token] = []
        seen: set[Token] = set()
        for expr in list(self.trace.observations) + list(self.trace.constraints):
            for token in expr_tokens(expr):
                if token not in bindings and token not in seen:
                    seen.add(token)
                    unbound.append(token)
        domains = [list(self._domain(token)) for token in unbound]
        for values in product(*domains) if domains else [()]:
            self.gas.spend()
            full = {**bindings, **dict(zip(unbound, values))}
            if not all(
                eval_expr(constraint, full, self.mask)
                for constraint in self.trace.constraints
            ):
                continue
            outcome = tuple(
                eval_expr(expr, full, self.mask)
                for expr in self.trace.observations
            )
            self.result.outcomes.add(outcome)

    # ------------------------------------------------------------ plumbing

    def _source_expr(self, load: AccessEvent, cand: RfCandidate):
        if cand.store is not None:
            return cand.store.value
        return self._initial_expr(load.addr)

    def _initial_expr(self, location: int):
        """The initial value of a location, mirroring the enumerator and
        :meth:`repro.encoding.formula.EncodingContext.initial_value`."""
        info = self.compiled.layout.info(location)
        if not is_undef(info.initial):
            return int(info.initial) & self.mask
        if self.trace.policies.get(location, "havoc") == "zero":
            return 0
        token = self._init_tokens.get(location)
        if token is None:
            domain = self.compiled.ranges.location_domain(location)
            if domain is not None:
                valid = frozenset(v for v in domain if v <= self.mask)
                domain = valid or None
            token = Token(
                -location, "init", name=f"init_loc{location}", domain=domain
            )
            self._init_tokens[location] = token
        return token

    def _domain(self, token: Token):
        if token.domain is not None:
            return sorted(token.domain)
        if self.domain_size is None:
            raise RfUnsupported(
                f"guessing {token!r} needs a domain of 2^width > "
                f"{self.max_domain} values"
            )
        return range(self.domain_size)
