"""Reads-from consistency engine (the third engine).

``repro.rfcheck`` decides, for one extracted trace and one candidate
reads-from assignment, whether the Section 2.3 axioms admit a memory order
``<M`` realizing that assignment — by polynomial closure over the axiom
relations instead of CNF or explicit-state search.  An rf-space miner on
top enumerates candidate assignments to produce the same outcome sets as
the SAT encoder and the operational enumerator, giving the differential
harness a three-way cross-check.
"""

from repro.rfcheck.closure import ClosureBudgetExceeded, Gas, OrderClosure
from repro.rfcheck.miner import (
    RfCheckResult,
    check_rf_assignment,
    rfcheck_outcomes,
)
from repro.rfcheck.models import forwarding_candidates, static_order_pairs
from repro.rfcheck.relations import RfCandidate, RfStructure, RfUnsupported

__all__ = [
    "ClosureBudgetExceeded",
    "Gas",
    "OrderClosure",
    "RfCandidate",
    "RfCheckResult",
    "RfStructure",
    "RfUnsupported",
    "check_rf_assignment",
    "forwarding_candidates",
    "rfcheck_outcomes",
    "static_order_pairs",
]
