"""Axiomatic memory models: Seriality, SC, TSO, PSO, and the paper's Relaxed."""

from repro.memorymodel.base import (
    PSO,
    RELAXED,
    SEQUENTIAL_CONSISTENCY,
    SERIAL,
    TSO,
    MemoryModel,
    available_models,
    get_model,
    is_stronger,
)

__all__ = [
    "PSO",
    "RELAXED",
    "SEQUENTIAL_CONSISTENCY",
    "SERIAL",
    "TSO",
    "MemoryModel",
    "available_models",
    "get_model",
    "is_stronger",
]
