"""Axiomatic memory models (Section 2.3 of the paper).

A memory model is described by a small set of switches that the encoder
(:mod:`repro.encoding.memory`) turns into constraints over the memory order
``<M``:

* ``preserved_program_order`` — which program-order edges (classified by the
  kinds of the two accesses) are enforced unconditionally in ``<M``.
  Sequential consistency preserves all of them; Relaxed preserves none.
* ``same_address_store_order`` — the Relaxed axiom 1: accesses to the same
  address where the later one is a store stay ordered.
* ``store_forwarding`` — whether a load may read a program-order-earlier
  store of its own thread even if that store is globally ordered after the
  load (store buffer forwarding).
* ``operation_atomicity`` — the *Seriality* condition of Section 2.3.2:
  operations of the test appear atomically and in a total order.  This is
  how the specification (observation set) is mined.

Besides the three models used in the paper (Seriality, SC, Relaxed) we
provide TSO and PSO configurations, which are useful to show where fences
become unnecessary on stronger architectures (Section 4.2 observes that the
studied algorithms need no fences on TSO-like machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemoryModel:
    """A hardware-level memory model in axiomatic form."""

    name: str
    description: str
    #: Pairs of access kinds ("load"/"store") whose program order is
    #: preserved in the memory order.
    preserved_program_order: frozenset[tuple[str, str]]
    #: Enforce x <M y when x <p y, a(x) = a(y) and y is a store (axiom 1 of
    #: the Relaxed model).
    same_address_store_order: bool
    #: Loads may read own-thread earlier stores that are not yet globally
    #: performed (store-queue forwarding).
    store_forwarding: bool
    #: Operations execute atomically in some total order (Seriality).
    operation_atomicity: bool = False

    def preserves(self, first_kind: str, second_kind: str) -> bool:
        return (first_kind, second_kind) in self.preserved_program_order

    @property
    def is_serial(self) -> bool:
        return self.operation_atomicity

    def __str__(self) -> str:
        return self.name


_ALL_PAIRS = frozenset(
    (a, b) for a in ("load", "store") for b in ("load", "store")
)

#: Seriality: sequential consistency plus atomic operations (Section 2.3.2).
SERIAL = MemoryModel(
    name="serial",
    description="Atomic, interleaved operations (used to mine the spec)",
    preserved_program_order=_ALL_PAIRS,
    same_address_store_order=True,
    store_forwarding=False,
    operation_atomicity=True,
)

#: Classic sequential consistency [Lamport 1979].
SEQUENTIAL_CONSISTENCY = MemoryModel(
    name="sc",
    description="Sequential consistency (total order consistent with program order)",
    preserved_program_order=_ALL_PAIRS,
    same_address_store_order=True,
    store_forwarding=False,
)

#: Total store order (SPARC TSO / x86-like): store->load may be reordered,
#: stores are buffered and forwarded.
TSO = MemoryModel(
    name="tso",
    description="Total store order (store->load reordering, store forwarding)",
    preserved_program_order=frozenset(
        {("load", "load"), ("load", "store"), ("store", "store")}
    ),
    same_address_store_order=True,
    store_forwarding=True,
)

#: Partial store order (SPARC PSO): additionally relaxes store->store.
PSO = MemoryModel(
    name="pso",
    description="Partial store order (also relaxes store->store)",
    preserved_program_order=frozenset({("load", "load"), ("load", "store")}),
    same_address_store_order=True,
    store_forwarding=True,
)

#: The paper's Relaxed model: a common conservative approximation of
#: SPARC RMO, Alpha, and IBM 370/390/z (Section 2.3).
RELAXED = MemoryModel(
    name="relaxed",
    description="The paper's Relaxed model (reordering, store buffering, "
    "forwarding, value-dependence relaxed)",
    preserved_program_order=frozenset(),
    same_address_store_order=True,
    store_forwarding=True,
)

_REGISTRY: dict[str, MemoryModel] = {
    model.name: model
    for model in (SERIAL, SEQUENTIAL_CONSISTENCY, TSO, PSO, RELAXED)
}
_REGISTRY["sequential-consistency"] = SEQUENTIAL_CONSISTENCY


def get_model(name: str | MemoryModel) -> MemoryModel:
    """Look up a memory model by name (case-insensitive)."""
    if isinstance(name, MemoryModel):
        return name
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(set(_REGISTRY)))
        raise KeyError(f"unknown memory model {name!r} (known: {known})") from exc


def available_models() -> list[MemoryModel]:
    return [SERIAL, SEQUENTIAL_CONSISTENCY, TSO, PSO, RELAXED]


def is_stronger(stronger: MemoryModel, weaker: MemoryModel) -> bool:
    """Syntactic check that ``stronger`` allows a subset of executions.

    A model is stronger if it preserves at least the program order edges of
    the other, does not add forwarding, and keeps the same-address rule.
    (This matches the ordering Seriality > SC > TSO > PSO > Relaxed used in
    Section 2.3.3.)
    """
    return (
        weaker.preserved_program_order <= stronger.preserved_program_order
        and (stronger.store_forwarding <= weaker.store_forwarding)
        and (weaker.operation_atomicity <= stronger.operation_atomicity)
        and (weaker.same_address_store_order <= stronger.same_address_store_order)
    )
