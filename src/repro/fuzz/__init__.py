"""Differential litmus fuzzer (random programs, oracle vs SAT encoding)."""

from repro.fuzz.generator import (
    ADDRESS_NAMES,
    FuzzConfig,
    FuzzOp,
    FuzzProgram,
    FuzzSpecError,
    generate_corpus,
    generate_program,
)
from repro.fuzz.harness import (
    DEFAULT_MODELS,
    FuzzCampaignResult,
    FuzzDivergence,
    compiled_fuzz_program,
    fuzz_cells,
    run_fuzz,
    shrink_divergence,
)

__all__ = [
    "ADDRESS_NAMES",
    "FuzzConfig",
    "FuzzOp",
    "FuzzProgram",
    "FuzzSpecError",
    "generate_corpus",
    "generate_program",
    "DEFAULT_MODELS",
    "FuzzCampaignResult",
    "FuzzDivergence",
    "compiled_fuzz_program",
    "fuzz_cells",
    "run_fuzz",
    "shrink_divergence",
]
