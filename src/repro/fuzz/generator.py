"""Random litmus-program generation for the differential fuzzer.

A fuzz program is N threads of M load/store/fence operations over K shared
addresses — the "as many scenarios as you can imagine" generalization of the
hand-written shapes in :mod:`repro.litmus.catalog`.  Programs have a compact
*replayable* textual form (the catalog form reported on divergence)::

    x=1 r0=x | y=1 f(ss) r0=y        # threads separated by '|'
    x=1      store the constant 1 to address x
    x=r0     store the value loaded into r0 earlier in this thread
    r0=x     load address x into register r0 (observable outcome slot)
    f(ss)    fence; kinds ll, ls, sl, ss, full

Register-copied stores (``x=r0``) deliberately create the value
dependencies the Relaxed model does *not* order, so the fuzzer exercises
the encoder's out-of-thin-air executions too.

:meth:`FuzzProgram.compile` lowers a program straight to a
:class:`~repro.encoding.testprogram.CompiledTest` (no C front-end, no
inliner/unroller: each thread is one straight-line invocation whose load
destinations are the observable return registers), so both the SAT encoder
and the operational oracle consume exactly the same artifact as for any
other test.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, replace

from repro.analysis.allocation import build_layout, resolve_allocations
from repro.analysis.ranges import RangeAnalysis
from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.encoding.testprogram import CompiledInvocation, CompiledTest
from repro.lsl.instructions import (
    ConstAssign,
    Fence,
    FenceKind,
    Load,
    Statement,
    Store,
)
from repro.lsl.program import GlobalDecl, Invocation, Procedure, Program, SymbolicTest

#: Shared-address names, in layout order.
ADDRESS_NAMES = ("x", "y", "z", "w", "u", "v")

#: Short fence-kind spellings used in the spec form.
FENCE_SHORT = {
    "ll": FenceKind.LOAD_LOAD,
    "ls": FenceKind.LOAD_STORE,
    "sl": FenceKind.STORE_LOAD,
    "ss": FenceKind.STORE_STORE,
    "full": FenceKind.FULL,
}
_FENCE_NAMES = {kind: short for short, kind in FENCE_SHORT.items()}

_LOAD_RE = re.compile(r"^r(\d+)=([a-z])$")
_STORE_CONST_RE = re.compile(r"^([a-z])=(\d+)$")
_STORE_REG_RE = re.compile(r"^([a-z])=r(\d+)$")
_FENCE_RE = re.compile(r"^f\((ll|ls|sl|ss|full)\)$")


class FuzzSpecError(ValueError):
    """A spec string does not parse as a fuzz program."""


@dataclass(frozen=True)
class FuzzOp:
    """One operation of a fuzz thread."""

    kind: str                       # "load" | "store" | "fence"
    addr: str = ""                  # address name for load/store
    value: int | None = None        # constant for stores
    src_reg: int | None = None      # register for register-copied stores
    dst_reg: int | None = None      # destination register for loads
    fence: FenceKind | None = None

    def spec(self) -> str:
        if self.kind == "load":
            return f"r{self.dst_reg}={self.addr}"
        if self.kind == "store":
            if self.src_reg is not None:
                return f"{self.addr}=r{self.src_reg}"
            return f"{self.addr}={self.value}"
        return f"f({_FENCE_NAMES[self.fence]})"


@dataclass(frozen=True)
class FuzzProgram:
    """A generated (or replayed) litmus program."""

    threads: tuple[tuple[FuzzOp, ...], ...]

    # ------------------------------------------------------------- spec form

    def spec(self) -> str:
        return " | ".join(
            " ".join(op.spec() for op in thread) for thread in self.threads
        )

    @property
    def name(self) -> str:
        return self.spec()

    @classmethod
    def parse(cls, spec: str) -> "FuzzProgram":
        threads = []
        for part in spec.split("|"):
            ops = []
            for word in part.split():
                ops.append(_parse_op(word))
            if not ops:
                raise FuzzSpecError(f"empty thread in fuzz spec: {spec!r}")
            threads.append(tuple(ops))
        if not threads:
            raise FuzzSpecError(f"empty fuzz spec: {spec!r}")
        program = cls(threads=tuple(threads))
        if not program._well_formed():
            # Reject rather than silently reinterpret: a dangling x=r0
            # would store an unconstrained value, not "the value loaded
            # into r0 earlier in this thread" as the DSL defines.
            raise FuzzSpecError(
                f"register-copied store without a preceding load of that "
                f"register in its thread: {spec!r}"
            )
        return program

    # ------------------------------------------------------------ structure

    def addresses(self) -> list[str]:
        """Addresses used, in :data:`ADDRESS_NAMES` (= layout) order."""
        used = {
            op.addr for thread in self.threads for op in thread if op.addr
        }
        unknown = used.difference(ADDRESS_NAMES)
        if unknown:
            raise FuzzSpecError(f"unknown addresses: {sorted(unknown)}")
        return [name for name in ADDRESS_NAMES if name in used]

    def counts(self) -> dict[str, int]:
        loads = stores = fences = 0
        for thread in self.threads:
            for op in thread:
                if op.kind == "load":
                    loads += 1
                elif op.kind == "store":
                    stores += 1
                else:
                    fences += 1
        return {
            "threads": len(self.threads),
            "loads": loads,
            "stores": stores,
            "fences": fences,
        }

    # ---------------------------------------------------------- compilation

    def fence_slots(self) -> list[tuple[int, int]]:
        """Candidate fence positions: ``(thread, position)`` pairs where a
        fence could order accesses — between two (possibly non-adjacent)
        non-fence operations of one thread.  The fence would sit *before*
        the operation at ``position``."""
        slots: list[tuple[int, int]] = []
        for thread_index, thread in enumerate(self.threads):
            for position in range(1, len(thread)):
                if thread[position - 1].kind == "fence":
                    continue  # same boundary as the existing fence
                if all(op.kind == "fence" for op in thread[position:]):
                    continue  # no access after the slot: nothing to order
                slots.append((thread_index, position))
        return slots

    def with_fences(self, placements) -> "FuzzProgram":
        """A copy with concrete fences inserted: ``placements`` is an
        iterable of ``(thread, position, FenceKind)`` as produced by
        :meth:`fence_slots` plus a kind; the fence lands before the
        operation originally at ``position``."""
        by_thread: dict[int, list[tuple[int, FenceKind]]] = {}
        for thread_index, position, kind in placements:
            by_thread.setdefault(thread_index, []).append((position, kind))
        threads = []
        for thread_index, thread in enumerate(self.threads):
            ops = list(thread)
            # Insert back-to-front so earlier positions stay valid; two
            # fences on one slot keep a stable kind order.
            for position, kind in sorted(
                by_thread.get(thread_index, ()),
                key=lambda entry: (entry[0], entry[1].value),
                reverse=True,
            ):
                ops.insert(position, FuzzOp(kind="fence", fence=kind))
            threads.append(tuple(ops))
        return FuzzProgram(threads=tuple(threads))

    def compile(self, candidate_kinds=None) -> CompiledTest:
        """Lower to a :class:`CompiledTest` (one invocation per thread).

        With ``candidate_kinds`` (an iterable of :class:`FenceKind`), every
        :meth:`fence_slots` boundary additionally receives one *candidate*
        fence per kind, labelled ``t<thread>@<position>:<kind>`` — the raw
        material of fence synthesis (:mod:`repro.core.synthesize`)."""
        spec = self.spec()
        program = Program(name="fuzz")
        for address in self.addresses():
            program.add_global(GlobalDecl(name=address, initial=0))
        layout = build_layout(program)
        slots = set(self.fence_slots()) if candidate_kinds else set()

        invocations: list[CompiledInvocation] = []
        operations: dict[str, OperationSpec] = {}
        bodies: list[list[Statement]] = []
        for thread_index, thread in enumerate(self.threads):
            name = f"t{thread_index}"
            statements: list[Statement] = []
            load_regs: list[str] = []
            for position, op in enumerate(thread):
                prefix = f"{name}%{position}"
                if (thread_index, position) in slots:
                    for kind in candidate_kinds:
                        statements.append(Fence(
                            kind,
                            candidate=f"{name}@{position}:{kind.value}",
                        ))
                if op.kind == "fence":
                    statements.append(Fence(op.fence))
                    continue
                addr_reg = f"{prefix}a"
                statements.append(
                    ConstAssign(addr_reg, layout.global_base(op.addr))
                )
                if op.kind == "load":
                    dst = f"{name}$r{op.dst_reg}"
                    statements.append(Load(dst, addr_reg))
                    load_regs.append(dst)
                else:
                    if op.src_reg is not None:
                        src = f"{name}$r{op.src_reg}"
                    else:
                        src = f"{prefix}c"
                        statements.append(ConstAssign(src, op.value))
                    statements.append(Store(addr_reg, src))
            program.add_procedure(
                Procedure(name=name, params=(), returns=tuple(load_regs),
                          body=list(statements))
            )
            operations[name] = OperationSpec(
                name=name, proc=name, has_return=bool(load_regs)
            )
            spec_op = operations[name]
            invocations.append(CompiledInvocation(
                thread=thread_index,
                position=0,
                global_index=thread_index,
                label=name,
                operation=spec_op,
                statements=statements,
                arg_regs=[],
                out_regs=[],
                ret_regs=load_regs,
            ))
            bodies.append(statements)

        implementation = DataTypeImplementation(
            name="fuzz",
            description="generated litmus program (repro.fuzz)",
            source=spec,
            operations=operations,
            init_operation=None,
            reference=None,
        )
        test = SymbolicTest(
            name=spec,
            threads=[[Invocation(f"t{i}")] for i in range(len(self.threads))],
        )
        allocation = resolve_allocations(bodies, layout)
        ranges = RangeAnalysis(layout, allocation).analyze(bodies)
        return CompiledTest(
            implementation=implementation,
            test=test,
            program=program,
            invocations=invocations,
            layout=layout,
            allocation=allocation,
            ranges=ranges,
            loop_bounds={},
        )

    # ------------------------------------------------------------- shrinking

    def shrink_candidates(self):
        """Strictly smaller programs, biggest reductions first (whole
        threads, then single operations)."""
        if len(self.threads) > 1:
            for index in range(len(self.threads)):
                threads = self.threads[:index] + self.threads[index + 1:]
                candidate = FuzzProgram(threads=threads)
                if candidate._well_formed():
                    yield candidate
        for t, thread in enumerate(self.threads):
            for index in range(len(thread)):
                shrunk = thread[:index] + thread[index + 1:]
                threads = (
                    self.threads[:t] + ((shrunk,) if shrunk else ())
                    + self.threads[t + 1:]
                )
                if not threads:
                    continue
                candidate = FuzzProgram(threads=threads)
                if candidate._well_formed():
                    yield candidate

    def _well_formed(self) -> bool:
        """Every register-copied store still has its defining load."""
        if not any(self.threads):
            return False
        for thread in self.threads:
            defined: set[int] = set()
            for op in thread:
                if op.kind == "load":
                    defined.add(op.dst_reg)
                elif op.kind == "store" and op.src_reg is not None:
                    if op.src_reg not in defined:
                        return False
        return True


def _parse_op(word: str) -> FuzzOp:
    match = _FENCE_RE.match(word)
    if match:
        return FuzzOp(kind="fence", fence=FENCE_SHORT[match.group(1)])
    match = _LOAD_RE.match(word)
    if match:
        return FuzzOp(kind="load", addr=match.group(2),
                      dst_reg=int(match.group(1)))
    match = _STORE_REG_RE.match(word)
    if match:
        return FuzzOp(kind="store", addr=match.group(1),
                      src_reg=int(match.group(2)))
    match = _STORE_CONST_RE.match(word)
    if match:
        return FuzzOp(kind="store", addr=match.group(1),
                      value=int(match.group(2)))
    raise FuzzSpecError(f"cannot parse fuzz op {word!r}")


# ---------------------------------------------------------------- generation


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of the random program generator (all ranges inclusive)."""

    min_threads: int = 2
    max_threads: int = 3
    min_ops: int = 2
    max_ops: int = 4
    num_addresses: int = 2
    values: tuple[int, ...] = (1, 2)
    fence_probability: float = 0.2
    #: Probability that a store copies a previously loaded register instead
    #: of a constant (creates the value dependencies Relaxed leaves
    #: unordered — the out-of-thin-air corner of the encoding).
    copy_probability: float = 0.2

    def clamped(self) -> "FuzzConfig":
        # A max below the default min wins (so e.g. max_threads=1 means
        # single-threaded programs, not "silently keep the default 2").
        addresses = max(1, min(self.num_addresses, len(ADDRESS_NAMES)))
        min_threads = max(1, min(self.min_threads, self.max_threads))
        min_ops = max(1, min(self.min_ops, self.max_ops))
        return replace(
            self,
            num_addresses=addresses,
            min_threads=min_threads,
            max_threads=max(min_threads, self.max_threads),
            min_ops=min_ops,
            max_ops=max(min_ops, self.max_ops),
            # All-fence draws are redrawn, so a certain-fence probability
            # would never terminate.
            fence_probability=max(0.0, min(self.fence_probability, 0.9)),
        )


def generate_program(rng: random.Random, config: FuzzConfig | None = None) -> FuzzProgram:
    """Draw one random program.  Deterministic given the rng state."""
    config = (config or FuzzConfig()).clamped()
    addresses = ADDRESS_NAMES[: config.num_addresses]
    while True:
        threads = []
        for _ in range(rng.randint(config.min_threads, config.max_threads)):
            ops: list[FuzzOp] = []
            next_reg = 0
            loaded: list[int] = []
            for _ in range(rng.randint(config.min_ops, config.max_ops)):
                roll = rng.random()
                addr = rng.choice(addresses)
                if roll < config.fence_probability:
                    ops.append(FuzzOp(
                        kind="fence",
                        fence=FENCE_SHORT[rng.choice(tuple(FENCE_SHORT))],
                    ))
                elif roll < config.fence_probability + (1 - config.fence_probability) / 2:
                    ops.append(FuzzOp(kind="load", addr=addr, dst_reg=next_reg))
                    loaded.append(next_reg)
                    next_reg += 1
                elif loaded and rng.random() < config.copy_probability:
                    ops.append(FuzzOp(
                        kind="store", addr=addr, src_reg=rng.choice(loaded)
                    ))
                else:
                    ops.append(FuzzOp(
                        kind="store", addr=addr, value=rng.choice(config.values)
                    ))
            threads.append(tuple(ops))
        if any(op.kind != "fence" for thread in threads for op in thread):
            return FuzzProgram(threads=tuple(threads))
        # All-fence programs are vacuous; redraw (terminates: the clamped
        # fence probability keeps the all-fence chance below 1).


def generate_corpus(
    seed: int,
    budget: int,
    config: FuzzConfig | None = None,
    max_attempts_factor: int = 20,
) -> list[FuzzProgram]:
    """``budget`` distinct programs from one seed (deduplicated by spec)."""
    rng = random.Random(seed)
    programs: list[FuzzProgram] = []
    seen: set[str] = set()
    attempts = 0
    limit = max(budget, 1) * max_attempts_factor
    while len(programs) < budget and attempts < limit:
        attempts += 1
        program = generate_program(rng, config)
        spec = program.spec()
        if spec in seen:
            continue
        seen.add(spec)
        programs.append(program)
    return programs
