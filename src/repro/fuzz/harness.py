"""The differential fuzzing campaign: generate, shard, compare, shrink.

A campaign draws ``budget`` distinct programs from one seed, crosses them
with the selected memory models, and runs every (program, model) cell
through the PR-2 worker-pool matrix (:mod:`repro.harness.matrix`) — each
cell compares the operational enumerator against the SAT encoding via
:func:`repro.oracle.differ.differential_check`.  Sharding by test keeps one
compiled program per shard, so all five models reuse the compilation; with
``jobs>1`` programs fan out across worker processes exactly like catalog
checks do.

Divergent cells are re-checked in the parent and *shrunk*: operations and
threads are greedily removed while the divergence persists, so the reported
reproducer (the spec string — replayable with ``checkfence oracle --spec``)
is minimal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fuzz.generator import FuzzConfig, FuzzProgram, generate_corpus
from repro.harness.matrix import FUZZ_KIND, MatrixCell, MatrixResult, run_matrix
from repro.memorymodel.base import get_model
from repro.oracle.differ import DifferentialReport, differential_check

#: Memory models a campaign covers by default (all five of the paper).
DEFAULT_MODELS = ("serial", "sc", "tso", "pso", "relaxed")

#: Compiled-program cache: workers see the same program for every model of
#: a shard; keep a small keyed cache instead of a session object.
_COMPILED_CACHE: dict[str, object] = {}
_COMPILED_CACHE_LIMIT = 64


def compiled_fuzz_program(spec: str):
    """Parse and compile a fuzz spec, with a per-process cache."""
    cached = _COMPILED_CACHE.get(spec)
    if cached is None:
        if len(_COMPILED_CACHE) >= _COMPILED_CACHE_LIMIT:
            _COMPILED_CACHE.clear()
        cached = FuzzProgram.parse(spec).compile()
        _COMPILED_CACHE[spec] = cached
    return cached


def fuzz_cells(specs, models) -> list[MatrixCell]:
    """One matrix cell per (program spec, memory model)."""
    model_names = [get_model(m).name for m in models]
    return [
        MatrixCell("fuzz", spec, model, kind=FUZZ_KIND)
        for spec in specs
        for model in model_names
    ]


def run_fuzz_cell(cell: MatrixCell, options) -> "CellResult":
    """Differentially check one (program, model) cell.

    Called by the matrix executor (:func:`repro.harness.matrix._run_cell`)
    inside its error containment, so exceptions here become per-cell
    errors, not crashed shards.
    """
    from repro.harness.matrix import CellResult

    started = time.perf_counter()
    compiled = compiled_fuzz_program(cell.test)
    report = differential_check(
        compiled, cell.model, backend_spec=options.solver_backend,
        name=cell.test,
        dense_order=getattr(options, "dense_order", None),
        simplify=getattr(options, "simplify", None),
    )
    notes = []
    if report.inconclusive:
        notes.append(f"inconclusive: {report.reason}")
    return CellResult(
        cell=cell,
        passed=report.ok,
        seconds=time.perf_counter() - started,
        counterexample=report.describe() if report.diverged else "",
        notes=notes,
        stats={
            "oracle_status": report.oracle.status,
            "oracle_outcomes": len(report.oracle.outcomes),
            "sat_outcomes": len(report.sat_outcomes),
            "oracle_nodes": report.oracle.nodes,
            "oracle_traces": report.oracle.traces,
        },
    )


# ---------------------------------------------------------------- shrinking


def shrink_divergence(
    program: FuzzProgram,
    model: str,
    backend_spec: str | None = None,
    max_rounds: int = 100,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> tuple[FuzzProgram, DifferentialReport]:
    """Greedily minimize a diverging program, keeping the divergence.

    Returns the smallest program found and its (still diverging) report.
    """
    def report_for(candidate: FuzzProgram) -> DifferentialReport:
        return differential_check(
            candidate.compile(), model, backend_spec=backend_spec,
            name=candidate.spec(), dense_order=dense_order,
            simplify=simplify,
        )

    current = report_for(program)
    if not current.diverged:
        return program, current
    for _ in range(max_rounds):
        for candidate in program.shrink_candidates():
            try:
                candidate_report = report_for(candidate)
            except Exception:
                continue
            if candidate_report.diverged:
                program, current = candidate, candidate_report
                break
        else:
            break
    return program, current


# ----------------------------------------------------------------- campaign


@dataclass
class FuzzDivergence:
    """One confirmed oracle/SAT disagreement, in replayable form."""

    spec: str
    model: str
    shrunk_spec: str
    missing_from_sat: list[tuple[int, ...]]
    missing_from_oracle: list[tuple[int, ...]]
    description: str

    def as_dict(self) -> dict:
        return {
            "spec": self.spec,
            "model": self.model,
            "shrunk_spec": self.shrunk_spec,
            "missing_from_sat": [list(o) for o in self.missing_from_sat],
            "missing_from_oracle": [list(o) for o in self.missing_from_oracle],
            "description": self.description,
        }


@dataclass
class FuzzCampaignResult:
    """Everything one fuzzing campaign produced."""

    seed: int
    budget: int
    models: list[str]
    specs: list[str]
    matrix: MatrixResult
    divergences: list[FuzzDivergence] = field(default_factory=list)
    inconclusive: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """No divergences, no errors — and the campaign actually compared
        something: a run where *every* cell came back inconclusive never
        performed a single differential comparison and must not read as a
        passing check (e.g. in the CI fuzz-smoke gate)."""
        if self.divergences or self.matrix.errors:
            return False
        if self.cells_checked and len(self.inconclusive) == self.cells_checked:
            return False
        return True

    @property
    def shortfall(self) -> int:
        """How many requested programs the generator could not produce
        (distinct-program space or the dedup attempt limit exhausted)."""
        return max(0, self.budget - len(self.specs))

    @property
    def cells_checked(self) -> int:
        return len(self.matrix.results)

    @property
    def programs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.specs) / self.elapsed_seconds

    @property
    def cells_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.cells_checked / self.elapsed_seconds

    def summary(self) -> str:
        programs = f"{len(self.specs)} programs"
        if self.shortfall:
            # Never let a restricted knob shrink coverage silently.
            programs += f" (budget {self.budget}: {self.shortfall} short)"
        line = (
            f"fuzz: {programs} x "
            f"{len(self.models)} models = {self.cells_checked} cells "
            f"(seed {self.seed}, jobs={self.matrix.jobs}) in "
            f"{self.elapsed_seconds:.2f}s "
            f"({self.programs_per_second:.1f} programs/s); "
            f"{len(self.divergences)} divergences, "
            f"{len(self.inconclusive)} inconclusive"
        )
        if self.cells_checked and len(self.inconclusive) == self.cells_checked:
            line += " — EVERY cell inconclusive: nothing was compared"
        if self.matrix.errors:
            line += f", {len(self.matrix.errors)} ERRORS"
        return line

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "models": list(self.models),
            "programs": len(self.specs),
            "shortfall": self.shortfall,
            "cells": self.cells_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "programs_per_second": self.programs_per_second,
            "cells_per_second": self.cells_per_second,
            "ok": self.ok,
            "divergences": [d.as_dict() for d in self.divergences],
            "inconclusive": list(self.inconclusive),
            "matrix": self.matrix.as_dict(),
        }


def run_fuzz(
    budget: int,
    seed: int,
    models=DEFAULT_MODELS,
    config: FuzzConfig | None = None,
    jobs: int | None = None,
    shard_by: str = "test",
    options=None,
    progress=None,
    shrink: bool = True,
) -> FuzzCampaignResult:
    """Run one differential fuzzing campaign.

    ``budget`` distinct programs are drawn from ``seed`` and checked under
    every model in ``models``; any divergence is re-confirmed in the parent
    process and (when ``shrink``) minimized.  ``jobs``/``shard_by`` select
    the matrix pool exactly as for ``checkfence matrix``.
    """
    from repro.core.checker import CheckOptions

    started = time.perf_counter()
    options = options if options is not None else CheckOptions()
    model_names = [get_model(m).name for m in models]
    programs = generate_corpus(seed, budget, config)
    specs = [program.spec() for program in programs]
    matrix = run_matrix(
        fuzz_cells(specs, model_names),
        jobs=jobs,
        shard_by=shard_by,
        options=options,
        progress=progress,
    )
    divergences: list[FuzzDivergence] = []
    inconclusive: list[dict] = []
    for cell_result in matrix.results:
        if cell_result.error:
            continue
        if cell_result.notes:
            inconclusive.append({
                "spec": cell_result.cell.test,
                "model": cell_result.cell.model,
                "notes": list(cell_result.notes),
            })
            continue
        if cell_result.passed:
            continue
        # Re-confirm in-process (the worker only shipped a description)
        # and shrink to a minimal reproducer.
        program = FuzzProgram.parse(cell_result.cell.test)
        dense_order = getattr(options, "dense_order", None)
        simplify = getattr(options, "simplify", None)
        if shrink:
            program, report = shrink_divergence(
                program, cell_result.cell.model,
                backend_spec=options.solver_backend,
                dense_order=dense_order,
                simplify=simplify,
            )
        else:
            report = differential_check(
                program.compile(), cell_result.cell.model,
                backend_spec=options.solver_backend, name=program.spec(),
                dense_order=dense_order,
                simplify=simplify,
            )
        if report.diverged:
            description = report.describe()
        else:
            # A worker saw a divergence this process cannot reproduce
            # (e.g. a flaky external backend).  Still fail the campaign,
            # but say what actually happened instead of reporting an
            # "agreeing" divergence with empty outcome diffs.
            description = (
                "reported by a worker but not reproduced in the parent "
                f"re-check: {cell_result.counterexample or cell_result.cell.key}"
            )
        divergences.append(FuzzDivergence(
            spec=cell_result.cell.test,
            model=cell_result.cell.model,
            shrunk_spec=program.spec(),
            missing_from_sat=sorted(report.missing_from_sat),
            missing_from_oracle=sorted(report.missing_from_oracle),
            description=description,
        ))
    return FuzzCampaignResult(
        seed=seed,
        budget=budget,
        models=model_names,
        specs=specs,
        matrix=matrix,
        divergences=divergences,
        inconclusive=inconclusive,
        elapsed_seconds=time.perf_counter() - started,
    )
