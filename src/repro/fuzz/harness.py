"""The differential fuzzing campaign: generate, shard, compare, shrink.

A campaign draws ``budget`` distinct programs from one seed, crosses them
with the selected memory models, and runs every (program, model) cell
through the PR-2 worker-pool matrix (:mod:`repro.harness.matrix`) — each
cell compares the operational enumerator against the SAT encoding via
:func:`repro.oracle.differ.differential_check`.  Sharding by test keeps one
compiled program per shard, so all five models reuse the compilation; with
``jobs>1`` programs fan out across worker processes exactly like catalog
checks do.

Divergent cells are re-checked in the parent and *shrunk*: operations and
threads are greedily removed while the divergence persists, so the reported
reproducer (the spec string — replayable with ``checkfence oracle --spec``)
is minimal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fuzz.generator import FuzzConfig, FuzzProgram, generate_corpus
from repro.harness.matrix import (
    ENGINES_KIND,
    FUZZ_KIND,
    MatrixCell,
    MatrixResult,
    run_matrix,
)
from repro.memorymodel.base import get_model
from repro.oracle.differ import (
    DEFAULT_ENGINES,
    DifferentialReport,
    differential_check,
    parse_engines,
)

#: Memory models a campaign covers by default (all five of the paper).
DEFAULT_MODELS = ("serial", "sc", "tso", "pso", "relaxed")

#: Compiled-program cache: workers see the same program for every model of
#: a shard; keep a small keyed cache instead of a session object.
_COMPILED_CACHE: dict[str, object] = {}
_COMPILED_CACHE_LIMIT = 64


def compiled_fuzz_program(spec: str):
    """Parse and compile a fuzz spec, with a per-process cache."""
    cached = _COMPILED_CACHE.get(spec)
    if cached is None:
        if len(_COMPILED_CACHE) >= _COMPILED_CACHE_LIMIT:
            _COMPILED_CACHE.clear()
        cached = FuzzProgram.parse(spec).compile()
        _COMPILED_CACHE[spec] = cached
    return cached


def fuzz_cells(specs, models, engines=None) -> list[MatrixCell]:
    """One matrix cell per (program spec, memory model).

    With the default engine pair the cells keep their historical shape
    (implementation ``"fuzz"``, :data:`FUZZ_KIND`); a non-default engine
    selection produces :data:`ENGINES_KIND` cells whose implementation
    column carries the engine list, which is how the selection travels to
    pool workers without widening the cell tuple.
    """
    model_names = [get_model(m).name for m in models]
    selected = parse_engines(engines)
    if selected == DEFAULT_ENGINES:
        implementation, kind = "fuzz", FUZZ_KIND
    else:
        implementation, kind = ",".join(selected), ENGINES_KIND
    return [
        MatrixCell(implementation, spec, model, kind=kind)
        for spec in specs
        for model in model_names
    ]


def cell_engines(cell: MatrixCell) -> tuple[str, ...]:
    """The engine selection one fuzz/differential cell encodes."""
    if cell.kind == ENGINES_KIND:
        return parse_engines(cell.implementation)
    return DEFAULT_ENGINES


def run_fuzz_cell(cell: MatrixCell, options) -> "CellResult":
    """Differentially check one (program, model) cell.

    Called by the matrix executor (:func:`repro.harness.matrix._run_cell`)
    inside its error containment, so exceptions here become per-cell
    errors, not crashed shards.
    """
    from repro.harness.matrix import CellResult

    started = time.perf_counter()
    compiled = compiled_fuzz_program(cell.test)
    report = differential_check(
        compiled, cell.model, backend_spec=options.solver_backend,
        name=cell.test,
        dense_order=getattr(options, "dense_order", None),
        simplify=getattr(options, "simplify", None),
        engines=cell_engines(cell),
    )
    notes = []
    if report.inconclusive:
        notes.append(f"inconclusive: {report.reason}")
    stats = {
        "engines": {
            name: result.as_dict()
            for name, result in report.engine_results.items()
        },
    }
    if report.oracle is not None:
        stats.update({
            "oracle_status": report.oracle.status,
            "oracle_outcomes": len(report.oracle.outcomes),
            "sat_outcomes": len(report.sat_outcomes),
            "oracle_nodes": report.oracle.nodes,
            "oracle_traces": report.oracle.traces,
        })
    return CellResult(
        cell=cell,
        passed=report.ok,
        seconds=time.perf_counter() - started,
        counterexample=report.describe() if report.diverged else "",
        notes=notes,
        stats=stats,
    )


# ---------------------------------------------------------------- shrinking


def shrink_divergence(
    program: FuzzProgram,
    model: str,
    backend_spec: str | None = None,
    max_rounds: int = 100,
    dense_order: bool | None = None,
    simplify: bool | None = None,
    engines=None,
) -> tuple[FuzzProgram, DifferentialReport]:
    """Greedily minimize a diverging program, keeping the divergence.

    Returns the smallest program found and its (still diverging) report.
    """
    def report_for(candidate: FuzzProgram) -> DifferentialReport:
        return differential_check(
            candidate.compile(), model, backend_spec=backend_spec,
            name=candidate.spec(), dense_order=dense_order,
            simplify=simplify, engines=engines,
        )

    current = report_for(program)
    if not current.diverged:
        return program, current
    for _ in range(max_rounds):
        for candidate in program.shrink_candidates():
            try:
                candidate_report = report_for(candidate)
            except Exception:
                continue
            if candidate_report.diverged:
                program, current = candidate, candidate_report
                break
        else:
            break
    return program, current


# ----------------------------------------------------------------- campaign


@dataclass
class FuzzDivergence:
    """One confirmed engine disagreement, in replayable form.

    ``missing_from_sat``/``missing_from_oracle`` keep the historical
    enumerator-vs-SAT view; ``pairs`` carries every diverging engine pair
    with direction (see :meth:`DifferentialReport.pair_divergences`).
    """

    spec: str
    model: str
    shrunk_spec: str
    missing_from_sat: list[tuple[int, ...]]
    missing_from_oracle: list[tuple[int, ...]]
    description: str
    pairs: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "spec": self.spec,
            "model": self.model,
            "shrunk_spec": self.shrunk_spec,
            "missing_from_sat": [list(o) for o in self.missing_from_sat],
            "missing_from_oracle": [list(o) for o in self.missing_from_oracle],
            "description": self.description,
            "pairs": [
                {
                    "first": pair["first"],
                    "second": pair["second"],
                    "only_in_first": [list(o) for o in pair["only_in_first"]],
                    "only_in_second": [list(o) for o in pair["only_in_second"]],
                }
                for pair in self.pairs
            ],
        }


@dataclass
class FuzzCampaignResult:
    """Everything one fuzzing campaign produced."""

    seed: int
    budget: int
    models: list[str]
    specs: list[str]
    matrix: MatrixResult
    divergences: list[FuzzDivergence] = field(default_factory=list)
    inconclusive: list[dict] = field(default_factory=list)
    degraded: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    engines: tuple[str, ...] = DEFAULT_ENGINES

    @property
    def ok(self) -> bool:
        """No divergences, no errors — and the campaign actually compared
        something: a run where *every* cell came back inconclusive never
        performed a single differential comparison and must not read as a
        passing check (e.g. in the CI fuzz-smoke gate)."""
        if self.divergences or self.matrix.errors:
            return False
        if self.cells_checked and len(self.inconclusive) == self.cells_checked:
            return False
        return True

    @property
    def shortfall(self) -> int:
        """How many requested programs the generator could not produce
        (distinct-program space or the dedup attempt limit exhausted)."""
        return max(0, self.budget - len(self.specs))

    @property
    def cells_checked(self) -> int:
        return len(self.matrix.results)

    @property
    def cells_inconclusive(self) -> int:
        """Cells where at least one engine reached no verdict — these
        compared nothing and are *not* agreements."""
        return len(self.inconclusive)

    @property
    def cells_diverged(self) -> int:
        return len(self.divergences)

    @property
    def cells_degraded(self) -> int:
        """Cells that hit a resource budget or crashed out of their
        retries (TIMEOUT/OOM/CRASHED) — no comparison happened, and unlike
        inconclusive cells the engines never even ran to completion."""
        return len(self.degraded)

    @property
    def cells_compared(self) -> int:
        """Cells that produced a real multi-engine verdict (agree or
        diverge) — the denominator the campaign's confidence rests on."""
        return sum(
            1 for result in self.matrix.results
            if not result.error and not result.notes
        )

    @property
    def programs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.specs) / self.elapsed_seconds

    @property
    def cells_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.cells_checked / self.elapsed_seconds

    def summary(self) -> str:
        programs = f"{len(self.specs)} programs"
        if self.shortfall:
            # Never let a restricted knob shrink coverage silently.
            programs += f" (budget {self.budget}: {self.shortfall} short)"
        line = (
            f"fuzz: {programs} x "
            f"{len(self.models)} models = {self.cells_checked} cells "
            f"(engines {'/'.join(self.engines)}, "
            f"seed {self.seed}, jobs={self.matrix.jobs}) in "
            f"{self.elapsed_seconds:.2f}s "
            f"({self.programs_per_second:.1f} programs/s); "
            f"{self.cells_compared} compared, "
            f"{len(self.divergences)} divergences, "
            f"{len(self.inconclusive)} inconclusive"
        )
        if self.degraded:
            counts: dict[str, int] = {}
            for entry in self.degraded:
                verdict = entry.get("verdict", "DEGRADED")
                counts[verdict] = counts.get(verdict, 0) + 1
            line += ", " + ", ".join(
                f"{count} {verdict}" for verdict, count in sorted(counts.items())
            )
        if self.cells_checked and len(self.inconclusive) == self.cells_checked:
            line += " — EVERY cell inconclusive: nothing was compared"
        if self.matrix.errors:
            line += f", {len(self.matrix.errors)} ERRORS"
        if self.matrix.resumed:
            line += f"; {len(self.matrix.resumed)} resumed from journal"
        return line

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "models": list(self.models),
            "engines": list(self.engines),
            "programs": len(self.specs),
            "shortfall": self.shortfall,
            "cells": self.cells_checked,
            "cells_compared": self.cells_compared,
            "cells_diverged": self.cells_diverged,
            "cells_inconclusive": self.cells_inconclusive,
            "cells_degraded": self.cells_degraded,
            "degraded": list(self.degraded),
            "elapsed_seconds": self.elapsed_seconds,
            "programs_per_second": self.programs_per_second,
            "cells_per_second": self.cells_per_second,
            "ok": self.ok,
            "divergences": [d.as_dict() for d in self.divergences],
            "inconclusive": list(self.inconclusive),
            "matrix": self.matrix.as_dict(),
        }


def run_fuzz(
    budget: int,
    seed: int,
    models=DEFAULT_MODELS,
    config: FuzzConfig | None = None,
    jobs: int | None = None,
    shard_by: str = "test",
    options=None,
    progress=None,
    shrink: bool = True,
    engines=None,
    journal: str | None = None,
    resume: bool = False,
) -> FuzzCampaignResult:
    """Run one differential fuzzing campaign.

    ``budget`` distinct programs are drawn from ``seed`` and checked under
    every model in ``models``; any divergence is re-confirmed in the parent
    process and (when ``shrink``) minimized.  ``jobs``/``shard_by`` select
    the matrix pool exactly as for ``checkfence matrix``; ``engines``
    selects which consistency engines each cell compares (anything
    :func:`repro.oracle.differ.parse_engines` accepts).
    ``journal``/``resume`` thread straight through to
    :func:`repro.harness.matrix.run_matrix`: the corpus is regenerated
    deterministically from ``seed``, so a resumed campaign re-creates the
    identical cell set and skips every journaled cell.
    """
    from repro.core.checker import CheckOptions

    started = time.perf_counter()
    options = options if options is not None else CheckOptions()
    model_names = [get_model(m).name for m in models]
    engine_names = parse_engines(engines)
    programs = generate_corpus(seed, budget, config)
    specs = [program.spec() for program in programs]
    matrix = run_matrix(
        fuzz_cells(specs, model_names, engines=engine_names),
        jobs=jobs,
        shard_by=shard_by,
        options=options,
        progress=progress,
        journal=journal,
        resume=resume,
    )
    divergences: list[FuzzDivergence] = []
    inconclusive: list[dict] = []
    degraded: list[dict] = []
    for cell_result in matrix.results:
        if cell_result.degraded:
            # No verdict was produced (TIMEOUT/OOM/CRASHED); neither an
            # agreement, a divergence, nor an inconclusive comparison.
            degraded.append({
                "spec": cell_result.cell.test,
                "model": cell_result.cell.model,
                "verdict": cell_result.degraded,
                "notes": list(cell_result.notes),
            })
            continue
        if cell_result.error:
            continue
        if cell_result.notes:
            inconclusive.append({
                "spec": cell_result.cell.test,
                "model": cell_result.cell.model,
                "notes": list(cell_result.notes),
            })
            continue
        if cell_result.passed:
            continue
        # Re-confirm in-process (the worker only shipped a description)
        # and shrink to a minimal reproducer.
        program = FuzzProgram.parse(cell_result.cell.test)
        dense_order = getattr(options, "dense_order", None)
        simplify = getattr(options, "simplify", None)
        if shrink:
            program, report = shrink_divergence(
                program, cell_result.cell.model,
                backend_spec=options.solver_backend,
                dense_order=dense_order,
                simplify=simplify,
                engines=engine_names,
            )
        else:
            report = differential_check(
                program.compile(), cell_result.cell.model,
                backend_spec=options.solver_backend, name=program.spec(),
                dense_order=dense_order,
                simplify=simplify,
                engines=engine_names,
            )
        if report.diverged:
            description = report.describe()
        else:
            # A worker saw a divergence this process cannot reproduce
            # (e.g. a flaky external backend).  Still fail the campaign,
            # but say what actually happened instead of reporting an
            # "agreeing" divergence with empty outcome diffs.
            description = (
                "reported by a worker but not reproduced in the parent "
                f"re-check: {cell_result.counterexample or cell_result.cell.key}"
            )
        divergences.append(FuzzDivergence(
            spec=cell_result.cell.test,
            model=cell_result.cell.model,
            shrunk_spec=program.spec(),
            missing_from_sat=sorted(report.missing_from_sat),
            missing_from_oracle=sorted(report.missing_from_oracle),
            description=description,
            pairs=report.pair_divergences(),
        ))
    return FuzzCampaignResult(
        seed=seed,
        budget=budget,
        models=model_names,
        specs=specs,
        matrix=matrix,
        divergences=divergences,
        inconclusive=inconclusive,
        degraded=degraded,
        elapsed_seconds=time.perf_counter() - started,
        engines=engine_names,
    )
