"""Memory layout: mapping program objects to scalar memory locations.

Every scalar cell that can be addressed during an execution (a global scalar,
a field of a global struct, or a field of a heap-allocated object) gets a
*location index*.  Index ``0`` is reserved for the null pointer.  A pointer
to an object is the index of its first cell, and field accesses add a
constant offset, which mirrors the paper's ``[base, offset...]`` pointer
representation once a concrete layout is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.values import NULL, UNDEF, Value


@dataclass
class LocationInfo:
    """Metadata about a single scalar memory cell."""

    index: int
    name: str
    object_name: str
    field_name: str | None
    is_heap: bool
    initial: Value


class MemoryLayout:
    """Allocates location indices for globals and heap objects."""

    def __init__(self) -> None:
        self._locations: list[LocationInfo] = [
            LocationInfo(NULL, "null", "null", None, False, 0)
        ]
        self._globals: dict[str, int] = {}

    # ------------------------------------------------------------- creation

    def add_global(
        self,
        name: str,
        field_names: tuple[str, ...] = (),
        initial: Value | tuple[Value, ...] = 0,
    ) -> int:
        """Register a global object and return its base location index."""
        if name in self._globals:
            raise ValueError(f"global {name!r} already declared")
        base = len(self._locations)
        cells = field_names if field_names else (None,)
        if not isinstance(initial, tuple):
            initial = tuple(initial for _ in cells)
        if len(initial) != len(cells):
            raise ValueError("initial values do not match field count")
        for offset, fname in enumerate(cells):
            display = name if fname is None else f"{name}.{fname}"
            self._locations.append(
                LocationInfo(
                    index=base + offset,
                    name=display,
                    object_name=name,
                    field_name=fname,
                    is_heap=False,
                    initial=initial[offset],
                )
            )
        self._globals[name] = base
        return base

    def add_heap_object(
        self,
        hint: str,
        field_names: tuple[str, ...],
        initial: Value = UNDEF,
    ) -> int:
        """Register a heap object (one allocation site / dynamic allocation)."""
        base = len(self._locations)
        cells = field_names if field_names else (None,)
        for offset, fname in enumerate(cells):
            display = hint if fname is None else f"{hint}.{fname}"
            self._locations.append(
                LocationInfo(
                    index=base + offset,
                    name=display,
                    object_name=hint,
                    field_name=fname,
                    is_heap=True,
                    initial=initial,
                )
            )
        return base

    # -------------------------------------------------------------- queries

    def global_base(self, name: str) -> int:
        return self._globals[name]

    def has_global(self, name: str) -> bool:
        return name in self._globals

    @property
    def num_locations(self) -> int:
        """Number of locations including the null slot."""
        return len(self._locations)

    def info(self, index: int) -> LocationInfo:
        return self._locations[index]

    def name_of(self, index: int) -> str:
        if 0 <= index < len(self._locations):
            return self._locations[index].name
        return f"<loc {index}>"

    def initial_value(self, index: int) -> Value:
        return self._locations[index].initial

    def valid_indices(self) -> range:
        """All addressable locations (excluding the null slot)."""
        return range(1, len(self._locations))

    def initial_memory(self) -> dict[int, Value]:
        """A concrete initial memory image for the interpreter."""
        return {
            info.index: info.initial
            for info in self._locations
            if info.index != NULL
        }

    def copy(self) -> "MemoryLayout":
        out = MemoryLayout()
        out._locations = list(self._locations)
        out._globals = dict(self._globals)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryLayout({self.num_locations - 1} locations)"
