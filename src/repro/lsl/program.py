"""LSL programs: procedures, struct layouts, globals, and symbolic tests.

A :class:`Program` is the unit produced by the C front-end: a set of
procedures (the data type operations), the struct layouts they use, and the
global variables they share.  A :class:`SymbolicTest` describes the client
test program of Fig. 8: an optional initialization sequence plus, for every
thread, a finite sequence of operation invocations whose arguments may be
left unspecified (drawn nondeterministically from ``{0, 1}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.instructions import Statement
from repro.lsl.values import Value


@dataclass
class StructLayout:
    """Flattened layout of a C struct: field name -> cell offset."""

    name: str
    fields: tuple[str, ...]

    def offset_of(self, field_name: str) -> int:
        try:
            return self.fields.index(field_name)
        except ValueError as exc:
            raise KeyError(
                f"struct {self.name} has no field {field_name!r}"
            ) from exc

    @property
    def num_cells(self) -> int:
        return max(1, len(self.fields))


@dataclass
class GlobalDecl:
    """A global object shared by all threads."""

    name: str
    struct: StructLayout | None = None
    initial: Value | tuple[Value, ...] = 0

    @property
    def field_names(self) -> tuple[str, ...]:
        return self.struct.fields if self.struct is not None else ()


@dataclass
class Procedure:
    """An LSL procedure (one data type operation, or a helper)."""

    name: str
    params: tuple[str, ...]
    returns: tuple[str, ...]
    body: list[Statement] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"proc {self.name}({', '.join(self.params)})"
            f" -> ({', '.join(self.returns)})"
        )


@dataclass
class Program:
    """A compiled implementation: procedures plus shared state declarations."""

    name: str
    procedures: dict[str, Procedure] = field(default_factory=dict)
    structs: dict[str, StructLayout] = field(default_factory=dict)
    globals: list[GlobalDecl] = field(default_factory=list)

    def add_procedure(self, proc: Procedure) -> None:
        if proc.name in self.procedures:
            raise ValueError(f"duplicate procedure {proc.name!r}")
        self.procedures[proc.name] = proc

    def add_struct(self, layout: StructLayout) -> None:
        self.structs[layout.name] = layout

    def add_global(self, decl: GlobalDecl) -> None:
        self.globals.append(decl)

    def procedure(self, name: str) -> Procedure:
        try:
            return self.procedures[name]
        except KeyError as exc:
            raise KeyError(
                f"program {self.name!r} has no procedure {name!r}"
            ) from exc

    def global_names(self) -> list[str]:
        return [decl.name for decl in self.globals]


@dataclass
class Invocation:
    """One operation call in a symbolic test.

    ``args`` entries are either concrete ints or ``None`` for "unspecified"
    (chosen nondeterministically from :attr:`choice_domain`).
    """

    operation: str
    args: tuple[int | None, ...] = ()
    choice_domain: tuple[int, ...] = (0, 1)
    label: str | None = None

    def display(self) -> str:
        rendered = [
            "?" if a is None else str(a) for a in self.args
        ]
        name = self.label or self.operation
        return f"{name}({', '.join(rendered)})"


@dataclass
class SymbolicTest:
    """A bounded multi-threaded test program (Fig. 8)."""

    name: str
    threads: list[list[Invocation]]
    init: list[Invocation] = field(default_factory=list)
    description: str = ""

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def all_invocations(self) -> list[tuple[int, int, Invocation]]:
        """Return (thread index, position, invocation) triples.

        Thread index ``-1`` denotes the initialization sequence.
        """
        out = [(-1, i, inv) for i, inv in enumerate(self.init)]
        for t, thread in enumerate(self.threads):
            out.extend((t, i, inv) for i, inv in enumerate(thread))
        return out

    def display(self) -> str:
        init = " ".join(inv.display() for inv in self.init)
        threads = " | ".join(
            " ".join(inv.display() for inv in thread) for thread in self.threads
        )
        prefix = f"{init} " if init else ""
        return f"{prefix}( {threads} )"
