"""Pretty printing of LSL programs (for traces, debugging, and docs)."""

from __future__ import annotations

from repro.lsl.instructions import Atomic, Block, Statement
from repro.lsl.program import Procedure, Program


def format_body(body: list[Statement], indent: int = 0) -> list[str]:
    """Render a statement list as indented text lines."""
    lines: list[str] = []
    pad = "  " * indent
    for stmt in body:
        if isinstance(stmt, Block):
            lines.append(f"{pad}{stmt.tag}: {{")
            lines.extend(format_body(stmt.body, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(stmt, Atomic):
            lines.append(f"{pad}atomic {{")
            lines.extend(format_body(stmt.body, indent + 1))
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}{stmt}")
    return lines


def format_procedure(proc: Procedure) -> str:
    header = (
        f"proc {proc.name}({', '.join(proc.params)})"
        f" -> ({', '.join(proc.returns)}) {{"
    )
    lines = [header]
    lines.extend(format_body(proc.body, 1))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    sections: list[str] = [f"// program {program.name}"]
    for struct in program.structs.values():
        sections.append(
            f"struct {struct.name} {{ {', '.join(struct.fields)} }}"
        )
    for decl in program.globals:
        type_name = decl.struct.name if decl.struct else "cell"
        sections.append(f"global {decl.name}: {type_name}")
    for proc in program.procedures.values():
        sections.append(format_procedure(proc))
    return "\n\n".join(sections)
