"""A serial interpreter for LSL.

The interpreter executes procedures one at a time against a concrete memory.
It serves three purposes in the reproduction:

* the fast "refset" style specification mining runs operations atomically in
  every interleaving, which only needs serial semantics;
* differential testing of the SAT encoding (serial SAT executions must agree
  with the interpreter); and
* executing test initialization sequences when a concrete prefix is wanted.

Concurrency and memory-model relaxations are *not* modelled here — that is
the job of the SAT encoding (:mod:`repro.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
)
from repro.lsl.layout import MemoryLayout
from repro.lsl.program import Program
from repro.lsl.values import (
    NULL,
    UNDEF,
    UndefinedValueError,
    Value,
    is_undef,
    require_defined,
)


class AssertionViolation(RuntimeError):
    """An ``assert`` statement failed during interpretation."""


class AssumptionFailed(Exception):
    """An ``assume`` statement failed: the execution should be discarded."""


class NullDereference(RuntimeError):
    """A load or store used the null pointer (or an invalid location)."""


class StepLimitExceeded(RuntimeError):
    """The interpreter exceeded its step budget (possible unbounded loop)."""


#: Chooser callback: given the Choose statement and its choices, pick one.
Chooser = Callable[[Choose], int]


def first_choice(choose: Choose) -> int:
    """Default chooser: always pick the first alternative."""
    return choose.choices[0]


@dataclass
class MachineState:
    """Concrete shared state: memory image plus the allocation layout."""

    layout: MemoryLayout
    memory: dict[int, Value] = field(default_factory=dict)

    @classmethod
    def initial(cls, layout: MemoryLayout) -> "MachineState":
        return cls(layout=layout, memory=layout.initial_memory())

    def copy(self) -> "MachineState":
        return MachineState(layout=self.layout.copy(), memory=dict(self.memory))

    def read(self, address: Value) -> Value:
        index = require_defined(address, "address")
        if index == NULL or index < 0 or index >= self.layout.num_locations:
            raise NullDereference(f"load from invalid location {index}")
        return self.memory.get(index, self.layout.initial_value(index))

    def write(self, address: Value, value: Value) -> None:
        index = require_defined(address, "address")
        if index == NULL or index < 0 or index >= self.layout.num_locations:
            raise NullDereference(f"store to invalid location {index}")
        self.memory[index] = value


@dataclass
class InterpResult:
    """Result of interpreting one procedure call."""

    returns: tuple[Value, ...]
    observations: list[tuple[str, tuple[Value, ...]]] = field(default_factory=list)
    steps: int = 0


# Control-flow signals used internally by the interpreter.
_NORMAL = ("normal", None)


class Interpreter:
    """Executes LSL procedures serially against a :class:`MachineState`."""

    def __init__(
        self,
        program: Program,
        state: MachineState,
        chooser: Chooser = first_choice,
        max_steps: int = 100_000,
    ) -> None:
        self.program = program
        self.state = state
        self.chooser = chooser
        self.max_steps = max_steps
        self._steps = 0
        self.observations: list[tuple[str, tuple[Value, ...]]] = []

    # --------------------------------------------------------------- public

    def call(self, proc_name: str, args: Sequence[Value] = ()) -> InterpResult:
        """Call a procedure; returns its return values and observations."""
        start_observations = len(self.observations)
        returns = self._call(proc_name, tuple(args))
        return InterpResult(
            returns=returns,
            observations=self.observations[start_observations:],
            steps=self._steps,
        )

    def run_statements(self, body: Sequence[Statement]) -> dict[str, Value]:
        """Execute a raw statement list in a fresh register frame."""
        registers: dict[str, Value] = {}
        self._exec_body(list(body), registers)
        return registers

    # ------------------------------------------------------------ execution

    def _call(self, proc_name: str, args: tuple[Value, ...]) -> tuple[Value, ...]:
        proc = self.program.procedure(proc_name)
        if len(args) != len(proc.params):
            raise TypeError(
                f"{proc_name} expects {len(proc.params)} arguments, got {len(args)}"
            )
        registers: dict[str, Value] = dict(zip(proc.params, args))
        self._exec_body(proc.body, registers)
        return tuple(registers.get(r, UNDEF) for r in proc.returns)

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} steps (unbounded loop?)"
            )

    def _exec_body(
        self, body: Sequence[Statement], registers: dict[str, Value]
    ) -> tuple[str, str | None]:
        """Execute statements; returns a control signal ('normal'/'break'/
        'continue', tag)."""
        for stmt in body:
            signal = self._exec_stmt(stmt, registers)
            if signal[0] != "normal":
                return signal
        return _NORMAL

    def _exec_block(
        self, block: Block, registers: dict[str, Value]
    ) -> tuple[str, str | None]:
        while True:
            self._tick()
            signal = self._exec_body(block.body, registers)
            kind, tag = signal
            if kind == "continue" and tag == block.tag:
                continue  # repeat this block
            if kind == "break" and tag == block.tag:
                return _NORMAL
            return signal  # normal, or targets an enclosing block

    def _exec_stmt(
        self, stmt: Statement, registers: dict[str, Value]
    ) -> tuple[str, str | None]:
        self._tick()
        if isinstance(stmt, ConstAssign):
            registers[stmt.dst] = stmt.value
        elif isinstance(stmt, PrimOp):
            registers[stmt.dst] = self._eval_prim(stmt, registers)
        elif isinstance(stmt, Load):
            registers[stmt.dst] = self.state.read(self._reg(registers, stmt.addr))
        elif isinstance(stmt, Store):
            self.state.write(
                self._reg(registers, stmt.addr), self._reg(registers, stmt.src)
            )
        elif isinstance(stmt, Fence):
            pass  # no effect on serial executions
        elif isinstance(stmt, Atomic):
            return self._exec_body(stmt.body, registers)
        elif isinstance(stmt, Block):
            return self._exec_block(stmt, registers)
        elif isinstance(stmt, BreakIf):
            if self._truth(registers, stmt.cond):
                return ("break", stmt.tag)
        elif isinstance(stmt, ContinueIf):
            if self._truth(registers, stmt.cond):
                return ("continue", stmt.tag)
        elif isinstance(stmt, Assert):
            if not self._truth(registers, stmt.cond):
                raise AssertionViolation(f"assertion failed: {stmt.cond}")
        elif isinstance(stmt, Assume):
            if not self._truth(registers, stmt.cond):
                raise AssumptionFailed(stmt.cond)
        elif isinstance(stmt, Call):
            args = tuple(self._reg(registers, r) for r in stmt.args)
            results = self._call(stmt.proc, args)
            for reg, value in zip(stmt.rets, results):
                registers[reg] = value
        elif isinstance(stmt, Alloc):
            registers[stmt.dst] = self._alloc(stmt)
        elif isinstance(stmt, Free):
            pass  # bounded executions never reuse memory
        elif isinstance(stmt, Choose):
            choice = self.chooser(stmt)
            if choice not in stmt.choices:
                raise ValueError(
                    f"chooser returned {choice}, not in {stmt.choices}"
                )
            registers[stmt.dst] = choice
        elif isinstance(stmt, Observe):
            values = tuple(registers.get(r, UNDEF) for r in stmt.regs)
            self.observations.append((stmt.label, values))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement type: {stmt!r}")
        return _NORMAL

    # ------------------------------------------------------------ utilities

    def _alloc(self, stmt: Alloc) -> int:
        if stmt.init == "zero":
            initial: Value = 0
        else:
            # Both "havoc" and "undef" map to undefined cells in the serial
            # interpreter; reading them before writing is an error, which is
            # exactly the behaviour that exposes missing-initialization bugs.
            initial = UNDEF
        return self.state.layout.add_heap_object(
            hint=f"{stmt.type_name}#{self.state.layout.num_locations}",
            field_names=stmt.field_names or tuple(
                f"f{i}" for i in range(stmt.num_cells)
            ),
            initial=initial,
        )

    def _reg(self, registers: dict[str, Value], name: str) -> Value:
        return registers.get(name, UNDEF)

    def _truth(self, registers: dict[str, Value], name: str) -> bool:
        value = self._reg(registers, name)
        if is_undef(value):
            raise UndefinedValueError(
                f"undefined value in condition register {name!r}"
            )
        return value != 0

    def _eval_prim(self, stmt: PrimOp, registers: dict[str, Value]) -> Value:
        op = stmt.op
        values = [self._reg(registers, r) for r in stmt.args]
        if op is PrimitiveOp.MOVE:
            return values[0]
        concrete = [require_defined(v, f"operand of {op.value}") for v in values]
        if op is PrimitiveOp.ADD:
            return concrete[0] + concrete[1]
        if op is PrimitiveOp.SUB:
            return concrete[0] - concrete[1]
        if op is PrimitiveOp.EQ:
            return int(concrete[0] == concrete[1])
        if op is PrimitiveOp.NE:
            return int(concrete[0] != concrete[1])
        if op is PrimitiveOp.LT:
            return int(concrete[0] < concrete[1])
        if op is PrimitiveOp.LE:
            return int(concrete[0] <= concrete[1])
        if op is PrimitiveOp.GT:
            return int(concrete[0] > concrete[1])
        if op is PrimitiveOp.GE:
            return int(concrete[0] >= concrete[1])
        if op is PrimitiveOp.AND:
            return int(bool(concrete[0]) and bool(concrete[1]))
        if op is PrimitiveOp.OR:
            return int(bool(concrete[0]) or bool(concrete[1]))
        if op is PrimitiveOp.NOT:
            return int(not concrete[0])
        raise TypeError(f"unknown primitive op: {op}")  # pragma: no cover
