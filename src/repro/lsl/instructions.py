"""Abstract syntax of the Load/Store Language (LSL).

This mirrors Fig. 4 of the paper: statements are register constants,
primitive operations, loads, stores, fences, atomic blocks, procedure calls,
tagged blocks with conditional break/continue, assertions and assumptions.
We add a small number of statements the paper treats as externals or
conventions: heap allocation (``new_node``), nondeterministic choice (test
arguments), and observation recording (argument/return values of data type
operations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.lsl.values import Value


class FenceKind(enum.Enum):
    """Memory ordering fences (the four SPARC RMO-style partial fences)."""

    LOAD_LOAD = "load-load"
    LOAD_STORE = "load-store"
    STORE_LOAD = "store-load"
    STORE_STORE = "store-store"
    FULL = "full"

    @classmethod
    def from_string(cls, text: str) -> "FenceKind":
        for kind in cls:
            if kind.value == text:
                return kind
        raise ValueError(f"unknown fence kind: {text!r}")

    @property
    def orders_before(self) -> tuple[str, ...]:
        """Access kinds ('load'/'store') constrained before the fence."""
        if self is FenceKind.FULL:
            return ("load", "store")
        return (self.value.split("-")[0],)

    @property
    def orders_after(self) -> tuple[str, ...]:
        """Access kinds ('load'/'store') constrained after the fence."""
        if self is FenceKind.FULL:
            return ("load", "store")
        return (self.value.split("-")[1],)


class PrimitiveOp(enum.Enum):
    """Primitive register-to-register operations."""

    ADD = "add"
    SUB = "sub"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    AND = "and"
    OR = "or"
    NOT = "not"
    MOVE = "move"


class Statement:
    """Base class of all LSL statements."""

    __slots__ = ()


@dataclass
class ConstAssign(Statement):
    """``r = v`` — assign a constant value to a register."""

    dst: str
    value: Value

    def __str__(self) -> str:
        return f"{self.dst} = {self.value}"


@dataclass
class PrimOp(Statement):
    """``r = f(r1, ..., rk)`` — apply a primitive operation."""

    dst: str
    op: PrimitiveOp
    args: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.dst} = {self.op.value}({', '.join(self.args)})"


@dataclass
class Load(Statement):
    """``r = *addr`` — load from the location named by register ``addr``."""

    dst: str
    addr: str

    def __str__(self) -> str:
        return f"{self.dst} = *{self.addr}"


@dataclass
class Store(Statement):
    """``*addr = src`` — store register ``src`` to the location in ``addr``."""

    addr: str
    src: str

    def __str__(self) -> str:
        return f"*{self.addr} = {self.src}"


@dataclass
class Fence(Statement):
    """A memory ordering fence.

    ``candidate`` marks a *candidate* fence for synthesis: the fence only
    takes effect when its selector assumption (one circuit variable per
    distinct label, see :meth:`repro.encoding.formula.EncodingContext
    .fence_selector`) is assumed true.  ``None`` (the default) is an
    ordinary unconditional fence.  All inlined/unrolled copies of one
    source-level candidate share the label, so one selector governs every
    dynamic instance of that program point.
    """

    kind: FenceKind
    candidate: str | None = None

    def __str__(self) -> str:
        if self.candidate is not None:
            return f'fence?("{self.kind.value}", {self.candidate!r})'
        return f'fence("{self.kind.value}")'


@dataclass
class Atomic(Statement):
    """``atomic { ... }`` — instructions execute atomically and in order."""

    body: list[Statement]

    def __str__(self) -> str:
        return "atomic { ... }"


@dataclass
class Call(Statement):
    """``p(args)(rets)`` — call procedure ``p``."""

    proc: str
    args: tuple[str, ...] = ()
    rets: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"{self.proc}({', '.join(self.args)})({', '.join(self.rets)})"


@dataclass
class Block(Statement):
    """``t : { ... }`` — a tagged block; target of break/continue."""

    tag: str
    body: list[Statement]

    def __str__(self) -> str:
        return f"{self.tag}: {{ ... }}"


@dataclass
class BreakIf(Statement):
    """``if (r) break t`` — leave block ``t`` if the register is non-zero."""

    cond: str
    tag: str

    def __str__(self) -> str:
        return f"if ({self.cond}) break {self.tag}"


@dataclass
class ContinueIf(Statement):
    """``if (r) continue t`` — repeat block ``t`` if the register is non-zero."""

    cond: str
    tag: str

    def __str__(self) -> str:
        return f"if ({self.cond}) continue {self.tag}"


@dataclass
class Assert(Statement):
    """``assert(r)`` — fails the execution if the register is zero."""

    cond: str

    def __str__(self) -> str:
        return f"assert({self.cond})"


@dataclass
class Assume(Statement):
    """``assume(r)`` — restricts attention to executions where r is non-zero."""

    cond: str

    def __str__(self) -> str:
        return f"assume({self.cond})"


@dataclass
class Alloc(Statement):
    """``r = new(<cells>)`` — allocate a heap object and return its address.

    ``field_names`` documents the flattened layout for traces; ``init``
    selects how the fresh cells start out: ``"havoc"`` (arbitrary contents,
    the default, matching real hardware where malloc'd memory holds garbage),
    ``"zero"``, or ``"undef"``.
    """

    dst: str
    num_cells: int
    type_name: str = "object"
    field_names: tuple[str, ...] = ()
    init: str = "havoc"

    def __str__(self) -> str:
        return f"{self.dst} = new {self.type_name}[{self.num_cells}]"


@dataclass
class Free(Statement):
    """``free(r)`` — release a heap object (a no-op for the bounded checker)."""

    addr: str

    def __str__(self) -> str:
        return f"free({self.addr})"


@dataclass
class Choose(Statement):
    """``r = choose {v1, ..., vk}`` — nondeterministic choice of a value.

    Used for unspecified test arguments (the paper draws them from ``{0,1}``).
    """

    dst: str
    choices: tuple[int, ...] = (0, 1)
    label: str | None = None

    def __str__(self) -> str:
        return f"{self.dst} = choose{set(self.choices)}"


@dataclass
class Observe(Statement):
    """Record register values as part of the observation vector."""

    label: str
    regs: tuple[str, ...]

    def __str__(self) -> str:
        return f"observe {self.label}({', '.join(self.regs)})"


#: Statements that directly access shared memory.
MEMORY_ACCESS_TYPES = (Load, Store)


def iter_statements(body: Iterable[Statement]) -> Iterator[Statement]:
    """Yield every statement in a body, recursing into nested blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Block):
            yield from iter_statements(stmt.body)
        elif isinstance(stmt, Atomic):
            yield from iter_statements(stmt.body)


def count_statements(body: Iterable[Statement]) -> int:
    return sum(1 for _ in iter_statements(body))


def count_memory_accesses(body: Iterable[Statement]) -> tuple[int, int]:
    """Return (#loads, #stores) in a body (recursively)."""
    loads = stores = 0
    for stmt in iter_statements(body):
        if isinstance(stmt, Load):
            loads += 1
        elif isinstance(stmt, Store):
            stores += 1
    return loads, stores


def defined_registers(stmt: Statement) -> tuple[str, ...]:
    """Registers written by a statement (not recursing into blocks)."""
    if isinstance(stmt, (ConstAssign, PrimOp, Load, Alloc, Choose)):
        return (stmt.dst,)
    if isinstance(stmt, Call):
        return tuple(stmt.rets)
    return ()


def used_registers(stmt: Statement) -> tuple[str, ...]:
    """Registers read by a statement (not recursing into blocks)."""
    if isinstance(stmt, PrimOp):
        return tuple(stmt.args)
    if isinstance(stmt, Load):
        return (stmt.addr,)
    if isinstance(stmt, Store):
        return (stmt.addr, stmt.src)
    if isinstance(stmt, Call):
        return tuple(stmt.args)
    if isinstance(stmt, (BreakIf, ContinueIf, Assert, Assume)):
        return (stmt.cond,)
    if isinstance(stmt, Free):
        return (stmt.addr,)
    if isinstance(stmt, Observe):
        return tuple(stmt.regs)
    return ()
