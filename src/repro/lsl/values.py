"""Runtime values of the Load/Store Language (LSL).

The paper keeps LSL untyped but tracks, at run time, whether a value is
*undefined*, an *integer*, or a *pointer* (Section 3.1, "Values and types").
In this reproduction pointers are flattened to *location indices* into a
:class:`repro.lsl.layout.MemoryLayout` (the paper's ``[base, offset...]``
sequences always denote a concrete scalar cell once the layout is fixed, so
a single index carries the same information); index ``0`` is the null
pointer.  Integers and pointers therefore share the ``int`` representation,
and the only distinguished value is :data:`UNDEF`.
"""

from __future__ import annotations

from typing import Union


class _Undefined:
    """Singleton marker for undefined values (uninitialized memory/registers)."""

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        raise ValueError("undefined value used in a condition")


#: The undefined value.
UNDEF = _Undefined()

#: The null pointer (location index 0 is reserved for it).
NULL = 0

#: An LSL value: an integer/pointer or the undefined marker.
Value = Union[int, _Undefined]


def is_undef(value: Value) -> bool:
    return value is UNDEF


def is_defined(value: Value) -> bool:
    return not is_undef(value)


def require_defined(value: Value, context: str = "value") -> int:
    """Return the value as an int, raising if it is undefined.

    The paper's tool flags the use of undefined values in computations or
    conditions as a bug; the interpreter raises :class:`UndefinedValueError`
    in the same situation.
    """
    if is_undef(value):
        raise UndefinedValueError(f"undefined {context} used")
    return value  # type: ignore[return-value]


class UndefinedValueError(RuntimeError):
    """Raised when an undefined value is used in a computation or condition."""


def format_value(value: Value) -> str:
    if is_undef(value):
        return "undef"
    return str(value)
