"""Convenience builder for constructing LSL statement lists.

Used by the C front-end's lowering pass and by tests that construct LSL
programs directly.  The builder manages fresh register names and fresh block
tags and exposes one method per LSL statement.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    FenceKind,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
)
from repro.lsl.values import Value


class LslBuilder:
    """Accumulates a list of LSL statements."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._statements: list[Statement] = []
        self._stack: list[list[Statement]] = [self._statements]
        self._reg_counter = 0
        self._tag_counter = 0

    # ------------------------------------------------------------- plumbing

    @property
    def statements(self) -> list[Statement]:
        return self._statements

    def emit(self, stmt: Statement) -> Statement:
        self._stack[-1].append(stmt)
        return stmt

    def fresh_reg(self, hint: str = "t") -> str:
        self._reg_counter += 1
        return f"{self.prefix}{hint}%{self._reg_counter}"

    def fresh_tag(self, hint: str = "B") -> str:
        self._tag_counter += 1
        return f"{self.prefix}{hint}@{self._tag_counter}"

    # ----------------------------------------------------------- statements

    def const(self, value: Value, dst: str | None = None) -> str:
        dst = dst or self.fresh_reg("c")
        self.emit(ConstAssign(dst, value))
        return dst

    def prim(self, op: PrimitiveOp, *args: str, dst: str | None = None) -> str:
        dst = dst or self.fresh_reg(op.value)
        self.emit(PrimOp(dst, op, tuple(args)))
        return dst

    def move(self, src: str, dst: str | None = None) -> str:
        return self.prim(PrimitiveOp.MOVE, src, dst=dst)

    def load(self, addr: str, dst: str | None = None) -> str:
        dst = dst or self.fresh_reg("l")
        self.emit(Load(dst, addr))
        return dst

    def store(self, addr: str, src: str) -> None:
        self.emit(Store(addr, src))

    def fence(self, kind: FenceKind | str) -> None:
        if isinstance(kind, str):
            kind = FenceKind.from_string(kind)
        self.emit(Fence(kind))

    def call(self, proc: str, args: Sequence[str] = (), rets: Sequence[str] = ()) -> None:
        self.emit(Call(proc, tuple(args), tuple(rets)))

    def break_if(self, cond: str, tag: str) -> None:
        self.emit(BreakIf(cond, tag))

    def continue_if(self, cond: str, tag: str) -> None:
        self.emit(ContinueIf(cond, tag))

    def break_always(self, tag: str) -> None:
        cond = self.const(1)
        self.emit(BreakIf(cond, tag))

    def continue_always(self, tag: str) -> None:
        cond = self.const(1)
        self.emit(ContinueIf(cond, tag))

    def assert_(self, cond: str) -> None:
        self.emit(Assert(cond))

    def assume(self, cond: str) -> None:
        self.emit(Assume(cond))

    def alloc(
        self,
        num_cells: int,
        type_name: str = "object",
        field_names: Sequence[str] = (),
        init: str = "havoc",
        dst: str | None = None,
    ) -> str:
        dst = dst or self.fresh_reg("p")
        self.emit(Alloc(dst, num_cells, type_name, tuple(field_names), init))
        return dst

    def free(self, addr: str) -> None:
        self.emit(Free(addr))

    def choose(
        self,
        choices: Sequence[int] = (0, 1),
        label: str | None = None,
        dst: str | None = None,
    ) -> str:
        dst = dst or self.fresh_reg("arg")
        self.emit(Choose(dst, tuple(choices), label))
        return dst

    def observe(self, label: str, regs: Sequence[str]) -> None:
        self.emit(Observe(label, tuple(regs)))

    # -------------------------------------------------------------- nesting

    @contextmanager
    def block(self, tag: str | None = None) -> Iterator[str]:
        """Open a tagged block; yields the tag."""
        tag = tag or self.fresh_tag()
        body: list[Statement] = []
        self._stack[-1].append(Block(tag, body))
        self._stack.append(body)
        try:
            yield tag
        finally:
            self._stack.pop()

    @contextmanager
    def atomic(self) -> Iterator[None]:
        body: list[Statement] = []
        self._stack[-1].append(Atomic(body))
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
