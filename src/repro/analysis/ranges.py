"""Flow-insensitive range (value-set) analysis — Section 3.4 of the paper.

For every register and every memory location the analysis computes a
conservative approximation of the values it may hold in any execution.  The
encoder uses the result to

1. pick a bit-width sufficient for every value that can occur,
2. restrict the possible addresses of each load/store (alias pruning, which
   shrinks the memory-model formula), and
3. bound the "havoc" domain of uninitialized heap cells.

Termination follows the paper's scheme: every propagated value is tagged
with the number of unbounded-range operations (additions/subtractions) used
to derive it, and values whose tag exceeds the total number of such
operations in the unrolled test are discarded — a real (straight-line)
execution can never apply more of them than exist in the program.

The analysis can be disabled (``DisabledRanges``) to reproduce the Fig. 11c
experiment measuring its impact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.allocation import AllocationMap
from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
    iter_statements,
)
from repro.lsl.layout import MemoryLayout
from repro.lsl.values import NULL, is_undef


class RangeAnalysisError(RuntimeError):
    """Raised when the program contains values the encoder cannot represent."""


#: Sentinel meaning "any value" (the set grew beyond the tracking limit).
TOP = None

_SET_LIMIT = 256

#: Baseline domain for uninitialized (havoc) heap cells; the analysis adds
#: every value that may be stored to the cell.
_HAVOC_BASELINE = frozenset({0, 1})

#: Internal representation of a value set: value -> minimal number of
#: unbounded-range operations needed to derive it (or TOP/None).
_TaggedSet = dict


@dataclass
class RangeInfo:
    """Result of the analysis, queried by the encoder."""

    layout: MemoryLayout
    reg_values: dict[str, set[int] | None] = field(default_factory=dict)
    loc_values: dict[int, set[int] | None] = field(default_factory=dict)
    enabled: bool = True
    default_width: int = 8

    # ------------------------------------------------------------ queries

    def possible_addresses(self, reg: str) -> list[int] | None:
        """Locations a pointer register may name (None = all of them)."""
        if not self.enabled:
            return None
        values = self.reg_values.get(reg)
        if values is TOP or reg not in self.reg_values:
            return None
        valid = [v for v in values if 0 <= v < self.layout.num_locations]
        return sorted(valid)

    def possible_values(self, reg: str) -> set[int] | None:
        if not self.enabled:
            return None
        return self.reg_values.get(reg, set())

    def location_domain(self, index: int) -> set[int] | None:
        """Domain of values that may legitimately sit in a havoc'd cell."""
        if not self.enabled:
            return None
        values = self.loc_values.get(index)
        if values is TOP:
            return None
        return set(values or set()) | set(_HAVOC_BASELINE)

    def max_value(self) -> int:
        maximum = max(2, self.layout.num_locations - 1)
        if not self.enabled:
            return max(maximum, (1 << self.default_width) - 1)
        for values in itertools.chain(
            self.reg_values.values(), self.loc_values.values()
        ):
            if values is TOP:
                maximum = max(maximum, (1 << self.default_width) - 1)
            elif values:
                maximum = max(maximum, max(values))
        return maximum

    def width(self) -> int:
        return max(1, self.max_value().bit_length())


def DisabledRanges(layout: MemoryLayout, default_width: int = 8) -> RangeInfo:
    """A RangeInfo that reports no information (analysis switched off)."""
    return RangeInfo(layout=layout, enabled=False, default_width=default_width)


class RangeAnalysis:
    """Computes a :class:`RangeInfo` for a set of thread bodies."""

    def __init__(
        self,
        layout: MemoryLayout,
        allocation: AllocationMap,
        max_passes: int = 200,
    ) -> None:
        self.layout = layout
        self.allocation = allocation
        self.max_passes = max_passes
        self._regs: dict[str, _TaggedSet | None] = {}
        self._locs: dict[int, _TaggedSet | None] = {}
        self._arith_budget = 0
        self._changed = False

    # --------------------------------------------------------------- public

    def analyze(self, thread_bodies: list[list[Statement]]) -> RangeInfo:
        self._arith_budget = self._count_arith(thread_bodies)
        self._seed_locations()
        for _ in range(self.max_passes):
            self._changed = False
            for body in thread_bodies:
                self._visit_body(body)
            if not self._changed:
                break
        return self._finish()

    # ------------------------------------------------------------ internals

    def _count_arith(self, thread_bodies: list[list[Statement]]) -> int:
        count = 0
        for body in thread_bodies:
            for stmt in iter_statements(body):
                if isinstance(stmt, PrimOp) and stmt.op in (
                    PrimitiveOp.ADD,
                    PrimitiveOp.SUB,
                ):
                    count += 1
        return count

    def _seed_locations(self) -> None:
        for index in self.layout.valid_indices():
            info = self.layout.info(index)
            if is_undef(info.initial):
                # Heap cell: havoc baseline, extended by stores during the
                # fixpoint iteration.
                self._locs[index] = {v: 0 for v in _HAVOC_BASELINE}
            else:
                self._locs[index] = {int(info.initial): 0}

    def _finish(self) -> RangeInfo:
        info = RangeInfo(layout=self.layout)
        info.reg_values = {
            reg: (TOP if values is TOP else set(values))
            for reg, values in self._regs.items()
        }
        info.loc_values = {
            index: (TOP if values is TOP else set(values))
            for index, values in self._locs.items()
        }
        return info

    def _merge(self, table, key, values: _TaggedSet | None) -> None:
        # NOTE: TOP is None, so "key absent" and "key mapped to TOP" must be
        # distinguished with a membership test, not .get().
        if key in table:
            current = table[key]
            if current is TOP:
                return
        else:
            current = {}
            table[key] = current
            self._changed = True
        if values is TOP:
            table[key] = TOP
            self._changed = True
            return
        changed = False
        for value, hops in values.items():
            existing = current.get(value)
            if existing is None or hops < existing:
                current[value] = hops
                changed = True
        if len(current) > _SET_LIMIT:
            table[key] = TOP
            self._changed = True
            return
        if changed:
            self._changed = True

    def _add_reg(self, reg: str, values: _TaggedSet | None) -> None:
        self._merge(self._regs, reg, values)

    def _add_loc(self, index: int, values: _TaggedSet | None) -> None:
        self._merge(self._locs, index, values)

    def _reg(self, reg: str) -> _TaggedSet | None:
        if reg not in self._regs:
            return {}
        value = self._regs[reg]
        return TOP if value is TOP else value

    def _visit_body(self, body: list[Statement]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, stmt: Statement) -> None:
        if isinstance(stmt, (Block, Atomic)):
            self._visit_body(stmt.body)
        elif isinstance(stmt, ConstAssign):
            if is_undef(stmt.value):
                return
            value = int(stmt.value)
            if value < 0:
                raise RangeAnalysisError(
                    "negative constants are not supported by the encoder"
                )
            self._add_reg(stmt.dst, {value: 0})
        elif isinstance(stmt, PrimOp):
            self._add_reg(stmt.dst, self._apply_prim(stmt))
        elif isinstance(stmt, Choose):
            self._add_reg(stmt.dst, {v: 0 for v in stmt.choices})
        elif isinstance(stmt, Alloc):
            self._add_reg(stmt.dst, {self.allocation.base_for(stmt): 0})
        elif isinstance(stmt, Load):
            self._add_reg(stmt.dst, self._load_domain(stmt.addr))
        elif isinstance(stmt, Store):
            self._store(stmt)
        elif isinstance(stmt, Call):
            raise RangeAnalysisError(
                "range analysis requires fully inlined code (found a Call)"
            )
        elif isinstance(stmt, (Fence, Free, Observe, Assert, Assume, BreakIf,
                               ContinueIf)):
            return
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")

    def _load_domain(self, addr_reg: str) -> _TaggedSet | None:
        addresses = self._reg(addr_reg)
        if addresses is TOP:
            candidates = list(self.layout.valid_indices())
        else:
            candidates = [
                a for a in addresses
                if a != NULL and 0 < a < self.layout.num_locations
            ]
        result: _TaggedSet = {}
        for address in candidates:
            values = self._locs.get(address)
            if values is TOP:
                return TOP
            for value, hops in (values or {}).items():
                existing = result.get(value)
                if existing is None or hops < existing:
                    result[value] = hops
            if len(result) > _SET_LIMIT:
                return TOP
        return result

    def _store(self, stmt: Store) -> None:
        addresses = self._reg(stmt.addr)
        values = self._reg(stmt.src)
        if addresses is TOP:
            targets = list(self.layout.valid_indices())
        else:
            targets = [
                a for a in addresses
                if a != NULL and 0 < a < self.layout.num_locations
            ]
        for address in targets:
            self._add_loc(address, values)

    def _apply_prim(self, stmt: PrimOp) -> _TaggedSet | None:
        op = stmt.op
        operands = [self._reg(r) for r in stmt.args]
        if op is PrimitiveOp.MOVE:
            return operands[0]
        if op in (
            PrimitiveOp.EQ,
            PrimitiveOp.NE,
            PrimitiveOp.LT,
            PrimitiveOp.LE,
            PrimitiveOp.GT,
            PrimitiveOp.GE,
            PrimitiveOp.AND,
            PrimitiveOp.OR,
            PrimitiveOp.NOT,
        ):
            return {0: 0, 1: 0}
        if op in (PrimitiveOp.ADD, PrimitiveOp.SUB):
            left, right = operands
            if left is TOP or right is TOP:
                return TOP
            result: _TaggedSet = {}
            for a, hops_a in left.items():
                for b, hops_b in right.items():
                    hops = hops_a + hops_b + 1
                    if hops > self._arith_budget:
                        continue
                    value = a + b if op is PrimitiveOp.ADD else a - b
                    if value < 0:
                        # Negative intermediate results never feed addresses
                        # in the supported programs; clamp to keep the
                        # unsigned encoding sound.
                        value = 0
                    existing = result.get(value)
                    if existing is None or hops < existing:
                        result[value] = hops
                    if len(result) > _SET_LIMIT:
                        return TOP
            return result
        raise TypeError(f"unknown primitive {op}")  # pragma: no cover
