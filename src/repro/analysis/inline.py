"""Inlining of procedure calls.

The back-end "first transforms the test program T and implementation I by
inlining the operation calls and unrolling the loops" (Section 3.2).  This
pass replaces every :class:`repro.lsl.instructions.Call` by the callee body,
renaming the callee's registers and block tags so that different call sites
(and different invocations in the symbolic test) never clash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
)
from repro.lsl.program import Procedure, Program


class InlineError(RuntimeError):
    """Raised for recursive calls or calls to unknown procedures."""


def rename_statements(
    statements: list[Statement],
    reg_map: dict[str, str] | None = None,
    prefix: str = "",
) -> list[Statement]:
    """Return a deep copy of ``statements`` with registers and tags renamed.

    Registers are looked up in ``reg_map`` first; unmapped registers (and all
    block tags) get ``prefix`` prepended.  A fresh copy is always returned so
    callers can freely mutate or re-inline the result.
    """
    reg_map = reg_map or {}

    def reg(name: str) -> str:
        return reg_map.get(name, prefix + name)

    def tag(name: str) -> str:
        return prefix + name

    def walk(stmts: list[Statement]) -> list[Statement]:
        out: list[Statement] = []
        for stmt in stmts:
            if isinstance(stmt, ConstAssign):
                out.append(ConstAssign(reg(stmt.dst), stmt.value))
            elif isinstance(stmt, PrimOp):
                out.append(
                    PrimOp(reg(stmt.dst), stmt.op, tuple(reg(a) for a in stmt.args))
                )
            elif isinstance(stmt, Load):
                out.append(Load(reg(stmt.dst), reg(stmt.addr)))
            elif isinstance(stmt, Store):
                out.append(Store(reg(stmt.addr), reg(stmt.src)))
            elif isinstance(stmt, Fence):
                out.append(Fence(stmt.kind, candidate=stmt.candidate))
            elif isinstance(stmt, Atomic):
                out.append(Atomic(walk(stmt.body)))
            elif isinstance(stmt, Call):
                out.append(
                    Call(
                        stmt.proc,
                        tuple(reg(a) for a in stmt.args),
                        tuple(reg(r) for r in stmt.rets),
                    )
                )
            elif isinstance(stmt, Block):
                out.append(Block(tag(stmt.tag), walk(stmt.body)))
            elif isinstance(stmt, BreakIf):
                out.append(BreakIf(reg(stmt.cond), tag(stmt.tag)))
            elif isinstance(stmt, ContinueIf):
                out.append(ContinueIf(reg(stmt.cond), tag(stmt.tag)))
            elif isinstance(stmt, Assert):
                out.append(Assert(reg(stmt.cond)))
            elif isinstance(stmt, Assume):
                out.append(Assume(reg(stmt.cond)))
            elif isinstance(stmt, Alloc):
                out.append(
                    Alloc(reg(stmt.dst), stmt.num_cells, stmt.type_name,
                          stmt.field_names, stmt.init)
                )
            elif isinstance(stmt, Free):
                out.append(Free(reg(stmt.addr)))
            elif isinstance(stmt, Choose):
                out.append(Choose(reg(stmt.dst), stmt.choices, stmt.label))
            elif isinstance(stmt, Observe):
                out.append(Observe(stmt.label, tuple(reg(r) for r in stmt.regs)))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown statement {stmt!r}")
        return out

    return walk(statements)


@dataclass
class Inliner:
    """Inlines all calls reachable from a procedure or statement list."""

    program: Program
    max_depth: int = 32
    _counter: int = field(default=0, init=False)

    def inline_body(
        self, statements: list[Statement], prefix: str = "", depth: int = 0
    ) -> list[Statement]:
        """Inline all calls in ``statements`` (already renamed by caller)."""
        if depth > self.max_depth:
            raise InlineError("maximum inlining depth exceeded (recursion?)")
        out: list[Statement] = []
        for stmt in statements:
            if isinstance(stmt, Call):
                out.extend(self._expand_call(stmt, prefix, depth))
            elif isinstance(stmt, Block):
                out.append(Block(stmt.tag, self.inline_body(stmt.body, prefix, depth)))
            elif isinstance(stmt, Atomic):
                out.append(Atomic(self.inline_body(stmt.body, prefix, depth)))
            else:
                out.append(stmt)
        return out

    def inline_call(
        self,
        proc_name: str,
        arg_regs: tuple[str, ...] = (),
        ret_regs: tuple[str, ...] = (),
        prefix: str = "",
    ) -> list[Statement]:
        """Produce the fully inlined body of a single procedure call."""
        return self._expand_call(
            Call(proc_name, arg_regs, ret_regs), prefix, depth=0
        )

    # ------------------------------------------------------------- internals

    def _expand_call(
        self, call: Call, prefix: str, depth: int
    ) -> list[Statement]:
        try:
            callee: Procedure = self.program.procedure(call.proc)
        except KeyError as exc:
            raise InlineError(str(exc)) from exc
        if len(call.args) != len(callee.params):
            raise InlineError(
                f"call to {call.proc} passes {len(call.args)} arguments, "
                f"expected {len(callee.params)}"
            )
        self._counter += 1
        inner_prefix = f"{prefix}{call.proc}.{self._counter}::"
        out: list[Statement] = []
        # Bind arguments: move caller registers into renamed parameters.
        reg_map = {}
        for param, arg in zip(callee.params, call.args):
            renamed = inner_prefix + param
            reg_map[param] = renamed
            out.append(PrimOp(renamed, PrimitiveOp.MOVE, (arg,)))
        body = rename_statements(callee.body, reg_map=None, prefix=inner_prefix)
        # rename_statements prefixed the parameters too, which is exactly the
        # name we bound above, so the body sees the argument values.
        out.extend(self.inline_body(body, inner_prefix, depth + 1))
        # Copy return registers back to the caller.
        for caller_reg, callee_ret in zip(call.rets, callee.returns):
            out.append(
                PrimOp(caller_reg, PrimitiveOp.MOVE, (inner_prefix + callee_ret,))
            )
        return out
