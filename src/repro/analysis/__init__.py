"""Program transformations and analyses used by the back-end."""

from repro.analysis.inline import Inliner, InlineError, rename_statements
from repro.analysis.unroll import DEFAULT_BOUND, UnrollResult, Unroller, find_loops, unroll
from repro.analysis.allocation import AllocationMap, build_layout, resolve_allocations
from repro.analysis.ranges import (
    TOP,
    DisabledRanges,
    RangeAnalysis,
    RangeAnalysisError,
    RangeInfo,
)

__all__ = [
    "Inliner",
    "InlineError",
    "rename_statements",
    "DEFAULT_BOUND",
    "UnrollResult",
    "Unroller",
    "find_loops",
    "unroll",
    "AllocationMap",
    "build_layout",
    "resolve_allocations",
    "TOP",
    "DisabledRanges",
    "RangeAnalysis",
    "RangeAnalysisError",
    "RangeInfo",
]
