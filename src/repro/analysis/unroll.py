"""Loop unrolling.

After inlining, the only backward control flow left in LSL is the
``continue`` statement targeting an enclosing block.  Unrolling replaces each
such block by a bounded number of copies so that the remaining program has
forward branches only, which is what the SAT encoding requires
(Section 3.2).

Two overflow policies are supported (Section 3.3):

* ``assume`` — executions that would need more iterations than the bound are
  excluded with an ``assume(false)``; this is the mode used for a normal
  check once bounds are known to be sufficient, and for the "primed"
  operations of Fig. 8 (retry loops restricted to a single iteration).
* ``flag`` — such executions instead set a fresh *overflow register*; the
  lazy bound-refinement loop (:mod:`repro.core.loop_bounds`) solves for an
  execution with an overflow register set to decide whether bounds must be
  increased.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.instructions import (
    Assume,
    Atomic,
    Block,
    BreakIf,
    ConstAssign,
    ContinueIf,
    Statement,
    iter_statements,
)


DEFAULT_BOUND = 1


@dataclass
class UnrollResult:
    """Outcome of unrolling one statement list."""

    statements: list[Statement]
    #: Registers that are set to 1 when the corresponding loop instance would
    #: need more iterations than its bound (only in "flag" mode).
    overflow_registers: dict[str, str] = field(default_factory=dict)
    #: Tags of loop blocks that were unrolled, with the bound that was used.
    bounds_used: dict[str, int] = field(default_factory=dict)


def find_loops(statements: list[Statement]) -> list[str]:
    """Return the tags of all blocks that are targets of a ``continue``."""
    loops: list[str] = []

    continue_targets = {
        stmt.tag
        for stmt in iter_statements(statements)
        if isinstance(stmt, ContinueIf)
    }
    for stmt in iter_statements(statements):
        if isinstance(stmt, Block) and stmt.tag in continue_targets:
            loops.append(stmt.tag)
    return loops


class Unroller:
    """Unrolls all loops in a statement list."""

    def __init__(
        self,
        bounds: dict[str, int] | None = None,
        default_bound: int = DEFAULT_BOUND,
        overflow: str = "assume",
    ) -> None:
        if overflow not in ("assume", "flag"):
            raise ValueError("overflow must be 'assume' or 'flag'")
        self.bounds = dict(bounds or {})
        self.default_bound = default_bound
        self.overflow = overflow
        self._fresh = 0
        self.result = UnrollResult(statements=[])

    # --------------------------------------------------------------- public

    def unroll(self, statements: list[Statement]) -> UnrollResult:
        self.result = UnrollResult(statements=[])
        body = self._walk(statements)
        # Overflow flags must read as 0 on executions that never reach the
        # overflow point, so initialize them up front.
        prologue = [
            ConstAssign(flag, 0)
            for flag in self.result.overflow_registers.values()
        ]
        self.result.statements = prologue + body
        return self.result

    # ------------------------------------------------------------ internals

    def _fresh_name(self, hint: str) -> str:
        self._fresh += 1
        return f"__unroll_{hint}_{self._fresh}"

    def _walk(self, statements: list[Statement]) -> list[Statement]:
        out: list[Statement] = []
        for stmt in statements:
            if isinstance(stmt, Block):
                out.extend(self._handle_block(stmt))
            elif isinstance(stmt, Atomic):
                out.append(Atomic(self._walk(stmt.body)))
            else:
                out.append(stmt)
        return out

    def _is_loop(self, block: Block) -> bool:
        return any(
            isinstance(s, ContinueIf) and s.tag == block.tag
            for s in iter_statements(block.body)
        )

    def _handle_block(self, block: Block) -> list[Statement]:
        body = self._walk(block.body)
        if not self._is_loop(Block(block.tag, body)):
            return [Block(block.tag, body)]
        bound = self.bounds.get(block.tag, self.default_bound)
        self.result.bounds_used[block.tag] = bound
        copies: list[Statement] = []
        for iteration in range(1, bound + 1):
            copies.append(self._make_copy(block.tag, body, iteration))
        copies.extend(self._overflow_marker(block.tag))
        return [Block(block.tag, copies)]

    def _make_copy(
        self, loop_tag: str, body: list[Statement], iteration: int
    ) -> Block:
        """One loop iteration: ``continue loop`` becomes "fall into the next
        copy" and normal completion exits the whole loop."""
        copy_tag = f"{loop_tag}#iter{iteration}"
        renamed = self._retag(body, loop_tag, copy_tag, iteration)
        exit_reg = self._fresh_name(f"exit_{iteration}")
        renamed.append(ConstAssign(exit_reg, 1))
        renamed.append(BreakIf(exit_reg, loop_tag))
        return Block(copy_tag, renamed)

    def _retag(
        self,
        statements: list[Statement],
        loop_tag: str,
        copy_tag: str,
        iteration: int,
    ) -> list[Statement]:
        """Rewrite one copy of a loop body.

        * ``continue loop_tag`` becomes ``break copy_tag`` (fall through to
          the next iteration's copy);
        * nested block tags get an iteration suffix so every block tag in the
          unrolled program stays unique;
        * everything else is copied unchanged.
        """
        out: list[Statement] = []
        for stmt in statements:
            if isinstance(stmt, Block):
                inner_tag = f"{stmt.tag}#i{iteration}"
                inner = self._retag(stmt.body, loop_tag, copy_tag, iteration)
                inner = self._rewrite_targets(inner, stmt.tag, inner_tag)
                out.append(Block(inner_tag, inner))
            elif isinstance(stmt, Atomic):
                out.append(
                    Atomic(self._retag(stmt.body, loop_tag, copy_tag, iteration))
                )
            elif isinstance(stmt, ContinueIf) and stmt.tag == loop_tag:
                out.append(BreakIf(stmt.cond, copy_tag))
            elif isinstance(stmt, (BreakIf, ContinueIf)):
                out.append(type(stmt)(stmt.cond, stmt.tag))
            else:
                out.append(stmt)
        return out

    def _rewrite_targets(
        self, statements: list[Statement], old_tag: str, new_tag: str
    ) -> list[Statement]:
        """Point break/continue statements at a renamed nested block."""
        out: list[Statement] = []
        for stmt in statements:
            if isinstance(stmt, (BreakIf, ContinueIf)) and stmt.tag == old_tag:
                out.append(type(stmt)(stmt.cond, new_tag))
            elif isinstance(stmt, Block):
                out.append(
                    Block(stmt.tag, self._rewrite_targets(stmt.body, old_tag, new_tag))
                )
            elif isinstance(stmt, Atomic):
                out.append(
                    Atomic(self._rewrite_targets(stmt.body, old_tag, new_tag))
                )
            else:
                out.append(stmt)
        return out

    def _overflow_marker(self, loop_tag: str) -> list[Statement]:
        """Statements reached only when the bound was insufficient."""
        if self.overflow == "assume":
            reg = self._fresh_name("false")
            return [ConstAssign(reg, 0), Assume(reg)]
        flag = self._fresh_name(f"overflow_{loop_tag}")
        self.result.overflow_registers[loop_tag] = flag
        return [ConstAssign(flag, 1)]


def unroll(
    statements: list[Statement],
    bounds: dict[str, int] | None = None,
    default_bound: int = DEFAULT_BOUND,
    overflow: str = "assume",
) -> UnrollResult:
    """Convenience wrapper around :class:`Unroller`."""
    unroller = Unroller(bounds, default_bound, overflow)
    return unroller.unroll(statements)
