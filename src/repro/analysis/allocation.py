"""Static resolution of heap allocations.

The bounded, unrolled test program contains a fixed number of ``Alloc``
statements; each one is mapped to a distinct heap object in the memory
layout.  (The paper lets the allocator choose addresses nondeterministically,
which multiplies the number of distinct serial executions without changing
the observation set; we use a deterministic layout — see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsl.instructions import Alloc, Statement, iter_statements
from repro.lsl.layout import MemoryLayout
from repro.lsl.program import Program


@dataclass
class AllocationMap:
    """Maps each Alloc statement (by identity) to its base location index."""

    layout: MemoryLayout
    bases: dict[int, int] = field(default_factory=dict)

    def base_for(self, stmt: Alloc) -> int:
        return self.bases[id(stmt)]

    def has(self, stmt: Alloc) -> bool:
        return id(stmt) in self.bases


def build_layout(program: Program) -> MemoryLayout:
    """Create a layout containing the program's globals, in declaration order.

    This must agree with the base indices the C front-end assigned during
    lowering (globals start at index 1 and occupy ``num_cells`` each).
    """
    layout = MemoryLayout()
    for decl in program.globals:
        layout.add_global(decl.name, decl.field_names, decl.initial)
    return layout


def resolve_allocations(
    thread_bodies: list[list[Statement]],
    layout: MemoryLayout,
) -> AllocationMap:
    """Assign a heap object to every Alloc statement in the given threads."""
    allocation = AllocationMap(layout=layout)
    for thread_index, body in enumerate(thread_bodies):
        counter = 0
        for stmt in iter_statements(body):
            if isinstance(stmt, Alloc):
                counter += 1
                hint = f"t{thread_index}.{stmt.type_name}.{counter}"
                field_names = stmt.field_names or tuple(
                    f"f{i}" for i in range(stmt.num_cells)
                )
                base = layout.add_heap_object(hint, field_names)
                allocation.bases[id(stmt)] = base
    return allocation
