"""Recursive-descent parser for the supported C subset."""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import ParseError, SourceLocation
from repro.lang.lexer import Token, tokenize

# Keywords that can begin a type.
_TYPE_KEYWORDS = {
    "unsigned",
    "signed",
    "int",
    "long",
    "short",
    "char",
    "void",
    "bool",
    "_Bool",
    "struct",
    "union",
    "enum",
    "const",
    "volatile",
}

_INT_SPECIFIERS = {"unsigned", "signed", "int", "long", "short", "char"}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.TranslationUnit`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0
        self.typedef_names: set[str] = set()
        self.unit = ast.TranslationUnit()

    # ------------------------------------------------------------- utilities

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: str, text: str | None = None, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token.kind == kind and (text is None or token.text == text)

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}", token.location
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek().location)

    # ------------------------------------------------------------ type tests

    def _is_type_start(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind == "keyword" and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind == "ident" and token.text in self.typedef_names

    # -------------------------------------------------------------- top level

    def parse_unit(self) -> ast.TranslationUnit:
        while not self._at("eof"):
            self._parse_top_level()
        return self.unit

    def _parse_top_level(self) -> None:
        if self._at("keyword", "typedef"):
            self._parse_typedef()
            return
        if self._at("keyword", "struct") and self._at("op", "{", 2):
            # struct name { ... };  (definition without typedef)
            self._parse_struct_definition(typedef=False)
            return
        is_extern = False
        if self._at("keyword", "extern"):
            self._advance()
            is_extern = True
        base = self._parse_base_type()
        pointer_depth = self._parse_stars()
        name_token = self._expect("ident")
        type_expr = ast.TypeExpr(base, pointer_depth)
        if self._at("op", "("):
            self._parse_function(type_expr, name_token, is_extern)
        else:
            self._parse_global_var(type_expr, name_token)

    def _parse_typedef(self) -> None:
        start = self._expect("keyword", "typedef")
        if self._at("keyword", "struct") and (
            self._at("op", "{", 1) or self._at("op", "{", 2)
        ):
            self._parse_struct_definition(typedef=True)
            return
        if self._at("keyword", "enum"):
            self._parse_enum_definition()
            return
        # Plain alias: typedef <type> name;
        base = self._parse_base_type()
        pointer_depth = self._parse_stars()
        name = self._expect("ident").text
        self._expect("op", ";")
        self.unit.typedefs.append(
            ast.Typedef(name, ast.TypeExpr(base, pointer_depth), start.location)
        )
        self.typedef_names.add(name)

    def _parse_struct_definition(self, typedef: bool) -> None:
        start = self._expect("keyword", "struct")
        tag = None
        if self._at("ident"):
            tag = self._advance().text
        self._expect("op", "{")
        fields: list[ast.StructField] = []
        while not self._at("op", "}"):
            base = self._parse_base_type()
            while True:
                depth = self._parse_stars()
                field_name = self._expect("ident").text
                array_size = None
                if self._at("op", "["):
                    self._advance()
                    array_size = int(self._expect("number").text, 0)
                    self._expect("op", "]")
                fields.append(
                    ast.StructField(ast.TypeExpr(base, depth), field_name, array_size)
                )
                if self._at("op", ","):
                    self._advance()
                    continue
                break
            self._expect("op", ";")
        self._expect("op", "}")
        name = tag
        if typedef or self._at("ident"):
            if self._at("ident"):
                name = self._advance().text
                self.typedef_names.add(name)
        self._expect("op", ";")
        if name is None:
            raise ParseError("anonymous struct definitions are not supported",
                             start.location)
        struct = ast.StructDef(name, fields, start.location)
        self.unit.structs.append(struct)
        if tag is not None and tag != name:
            # Allow both "struct tag" and the typedef name to refer to it.
            self.unit.typedefs.append(
                ast.Typedef(tag, ast.TypeExpr(name, 0), start.location)
            )

    def _parse_enum_definition(self) -> None:
        start = self._expect("keyword", "enum")
        tag = None
        if self._at("ident"):
            tag = self._advance().text
        self._expect("op", "{")
        enumerators: list[tuple[str, int]] = []
        next_value = 0
        while not self._at("op", "}"):
            enum_name = self._expect("ident").text
            if self._at("op", "="):
                self._advance()
                next_value = int(self._expect("number").text, 0)
            enumerators.append((enum_name, next_value))
            next_value += 1
            if self._at("op", ","):
                self._advance()
        self._expect("op", "}")
        name = tag
        if self._at("ident"):
            name = self._advance().text
            self.typedef_names.add(name)
        self._expect("op", ";")
        if name is None:
            raise ParseError("anonymous enums are not supported", start.location)
        self.unit.enums.append(ast.EnumDef(name, enumerators, start.location))

    def _parse_global_var(self, type_expr: ast.TypeExpr, name_token: Token) -> None:
        init = None
        if self._at("op", "="):
            self._advance()
            init = self._parse_expression()
        self.unit.globals.append(
            ast.GlobalVarDecl(type_expr, name_token.text, init, name_token.location)
        )
        while self._at("op", ","):
            self._advance()
            depth = self._parse_stars()
            other = self._expect("ident")
            other_type = ast.TypeExpr(type_expr.base, depth)
            other_init = None
            if self._at("op", "="):
                self._advance()
                other_init = self._parse_expression()
            self.unit.globals.append(
                ast.GlobalVarDecl(other_type, other.text, other_init, other.location)
            )
        self._expect("op", ";")

    def _parse_function(
        self, return_type: ast.TypeExpr, name_token: Token, is_extern: bool
    ) -> None:
        self._expect("op", "(")
        params: list[ast.Param] = []
        if not self._at("op", ")"):
            if self._at("keyword", "void") and self._at("op", ")", 1):
                self._advance()
            else:
                while True:
                    base = self._parse_base_type()
                    depth = self._parse_stars()
                    param_name = ""
                    if self._at("ident"):
                        param_name = self._advance().text
                    params.append(ast.Param(ast.TypeExpr(base, depth), param_name))
                    if self._at("op", ","):
                        self._advance()
                        continue
                    break
        self._expect("op", ")")
        if self._at("op", ";"):
            self._advance()
            self.unit.prototypes.append(
                ast.FunctionDecl(return_type, name_token.text, params,
                                 name_token.location)
            )
            return
        if is_extern:
            raise ParseError("extern function with a body", name_token.location)
        body = self._parse_compound()
        self.unit.functions.append(
            ast.FunctionDef(return_type, name_token.text, params, body,
                            name_token.location)
        )

    # ----------------------------------------------------------------- types

    def _parse_base_type(self) -> str:
        # Skip qualifiers.
        while self._at("keyword", "const") or self._at("keyword", "volatile") or \
                self._at("keyword", "static"):
            self._advance()
        token = self._peek()
        if token.kind == "keyword" and token.text in _INT_SPECIFIERS:
            # Consume a run of integer specifiers ("unsigned long", ...).
            while self._peek().kind == "keyword" and \
                    self._peek().text in _INT_SPECIFIERS:
                self._advance()
            return "int"
        if token.kind == "keyword" and token.text in ("bool", "_Bool"):
            self._advance()
            return "bool"
        if token.kind == "keyword" and token.text == "void":
            self._advance()
            return "void"
        if token.kind == "keyword" and token.text in ("struct", "union"):
            self._advance()
            name = self._expect("ident").text
            return name
        if token.kind == "keyword" and token.text == "enum":
            self._advance()
            self._expect("ident")
            return "int"
        if token.kind == "ident" and token.text in self.typedef_names:
            self._advance()
            return token.text
        raise ParseError(f"expected a type, found {token.text!r}", token.location)

    def _parse_stars(self) -> int:
        depth = 0
        while self._at("op", "*"):
            self._advance()
            depth += 1
        return depth

    # ------------------------------------------------------------ statements

    def _parse_compound(self) -> ast.CompoundStmt:
        start = self._expect("op", "{")
        statements: list[ast.Stmt] = []
        while not self._at("op", "}"):
            statements.append(self._parse_statement())
        self._expect("op", "}")
        return ast.CompoundStmt(statements, start.location)

    def _as_compound(self, stmt: ast.Stmt) -> ast.CompoundStmt:
        if isinstance(stmt, ast.CompoundStmt):
            return stmt
        return ast.CompoundStmt([stmt], stmt.location)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if self._at("op", "{"):
            return self._parse_compound()
        if self._at("op", ";"):
            self._advance()
            return ast.CompoundStmt([], token.location)
        if self._at("keyword", "if"):
            return self._parse_if()
        if self._at("keyword", "while"):
            return self._parse_while()
        if self._at("keyword", "do"):
            return self._parse_do_while()
        if self._at("keyword", "for"):
            raise ParseError("'for' loops are not supported; use 'while'",
                             token.location)
        if self._at("keyword", "return"):
            self._advance()
            value = None
            if not self._at("op", ";"):
                value = self._parse_expression()
            self._expect("op", ";")
            return ast.ReturnStmt(value, token.location)
        if self._at("keyword", "break"):
            self._advance()
            self._expect("op", ";")
            return ast.BreakStmt(token.location)
        if self._at("keyword", "continue"):
            self._advance()
            self._expect("op", ";")
            return ast.ContinueStmt(token.location)
        if self._at("keyword", "atomic"):
            self._advance()
            body = self._parse_compound()
            return ast.AtomicStmt(body, token.location)
        if self._is_type_start() and not self._at("op", "(", 1):
            return self._parse_local_decl()
        # Expression statement (assignment or call).
        expr = self._parse_assignment()
        self._expect("op", ";")
        return ast.ExprStmt(expr, token.location)

    def _parse_local_decl(self) -> ast.Stmt:
        start = self._peek()
        base = self._parse_base_type()
        names: list[str] = []
        inits: list[ast.Expr | None] = []
        types: list[int] = []
        while True:
            depth = self._parse_stars()
            name = self._expect("ident").text
            init = None
            if self._at("op", "="):
                self._advance()
                init = self._parse_expression()
            names.append(name)
            inits.append(init)
            types.append(depth)
            if self._at("op", ","):
                self._advance()
                continue
            break
        self._expect("op", ";")
        # All declarators in one DeclStmt share the base; pointer depth may
        # differ per declarator, so emit one DeclStmt per declarator.
        statements = [
            ast.DeclStmt(ast.TypeExpr(base, depth), [name], [init], start.location)
            for name, init, depth in zip(names, inits, types)
        ]
        if len(statements) == 1:
            return statements[0]
        return ast.CompoundStmt(statements, start.location)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect("keyword", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then_body = self._as_compound(self._parse_statement())
        else_body = None
        if self._at("keyword", "else"):
            self._advance()
            else_body = self._as_compound(self._parse_statement())
        return ast.IfStmt(cond, then_body, else_body, start.location)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._as_compound(self._parse_statement())
        return ast.WhileStmt(cond, body, start.location)

    def _parse_do_while(self) -> ast.Stmt:
        start = self._expect("keyword", "do")
        body = self._as_compound(self._parse_statement())
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhileStmt(body, cond, start.location)

    # ----------------------------------------------------------- expressions

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_expression()
        if self._at("op", "="):
            token = self._advance()
            value = self._parse_assignment()
            return ast.Assign(left, value, token.location)
        return left

    def _parse_expression(self) -> ast.Expr:
        return self._parse_logical_or()

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self._at("op", "||"):
            token = self._advance()
            right = self._parse_logical_and()
            left = ast.Binary("||", left, right, token.location)
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at("op", "&&"):
            token = self._advance()
            right = self._parse_equality()
            left = ast.Binary("&&", left, right, token.location)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._at("op", "==") or self._at("op", "!="):
            token = self._advance()
            right = self._parse_relational()
            left = ast.Binary(token.text, left, right, token.location)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while (
            self._at("op", "<")
            or self._at("op", "<=")
            or self._at("op", ">")
            or self._at("op", ">=")
        ):
            token = self._advance()
            right = self._parse_additive()
            left = ast.Binary(token.text, left, right, token.location)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_unary()
        while self._at("op", "+") or self._at("op", "-"):
            token = self._advance()
            right = self._parse_unary()
            left = ast.Binary(token.text, left, right, token.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if self._at("op", "*") or self._at("op", "&") or self._at("op", "!") \
                or self._at("op", "-") or self._at("op", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, token.location)
        # Cast: '(' type-start ... ')' unary
        if self._at("op", "(") and self._is_type_start(1):
            self._advance()
            base = self._parse_base_type()
            depth = self._parse_stars()
            self._expect("op", ")")
            operand = self._parse_unary()
            return ast.Cast(ast.TypeExpr(base, depth), operand, token.location)
        if self._at("keyword", "sizeof"):
            self._advance()
            self._expect("op", "(")
            self._parse_base_type()
            self._parse_stars()
            self._expect("op", ")")
            # sizeof is only used as a malloc argument; its value is unused.
            return ast.IntLiteral(1, token.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at("op", "->"):
                token = self._advance()
                field_name = self._expect("ident").text
                expr = ast.FieldAccess(expr, field_name, True, token.location)
            elif self._at("op", "."):
                token = self._advance()
                field_name = self._expect("ident").text
                expr = ast.FieldAccess(expr, field_name, False, token.location)
            elif self._at("op", "["):
                token = self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.Index(expr, index, token.location)
            else:
                break
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ast.IntLiteral(int(token.text.rstrip("uUlL"), 0), token.location)
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(token.text, token.location)
        if self._at("keyword", "true"):
            self._advance()
            return ast.BoolLiteral(True, token.location)
        if self._at("keyword", "false"):
            self._advance()
            return ast.BoolLiteral(False, token.location)
        if self._at("keyword", "NULL"):
            self._advance()
            return ast.NullLiteral(token.location)
        if token.kind == "ident":
            self._advance()
            if self._at("op", "("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._at("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if self._at("op", ","):
                            self._advance()
                            continue
                        break
                self._expect("op", ")")
                return ast.CallExpr(token.text, args, token.location)
            return ast.Name(token.text, token.location)
        if self._at("op", "("):
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.location)


def parse(source: str) -> ast.TranslationUnit:
    """Parse C source text into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
