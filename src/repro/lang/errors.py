"""Diagnostics for the C front-end."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SourceLocation:
    """A position in the C source (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class FrontendError(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        if location is not None:
            message = f"{message} ({location})"
        super().__init__(message)


class LexError(FrontendError):
    """Malformed token in the source text."""


class ParseError(FrontendError):
    """The source does not conform to the supported C subset grammar."""


class LoweringError(FrontendError):
    """The program uses a C feature the translator does not support,
    or is not well-typed for translation to LSL."""
