"""Abstract syntax tree for the supported C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang.errors import SourceLocation


# --------------------------------------------------------------------- types


@dataclass
class TypeExpr:
    """A (possibly derived) type expression.

    ``base`` is a named base type ('int', 'bool', 'void', a typedef name, or
    'struct <name>'); ``pointer_depth`` counts the ``*`` declarators applied
    to it.
    """

    base: str
    pointer_depth: int = 0

    def pointer_to(self) -> "TypeExpr":
        return TypeExpr(self.base, self.pointer_depth + 1)

    def pointee(self) -> "TypeExpr":
        if self.pointer_depth == 0:
            raise ValueError(f"{self} is not a pointer type")
        return TypeExpr(self.base, self.pointer_depth - 1)

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth


# --------------------------------------------------------------- expressions


class Expr:
    """Base class of expressions."""

    location: Optional[SourceLocation] = None


@dataclass
class IntLiteral(Expr):
    value: int
    location: Optional[SourceLocation] = None


@dataclass
class BoolLiteral(Expr):
    value: bool
    location: Optional[SourceLocation] = None


@dataclass
class NullLiteral(Expr):
    location: Optional[SourceLocation] = None


@dataclass
class StringLiteral(Expr):
    value: str
    location: Optional[SourceLocation] = None


@dataclass
class Name(Expr):
    ident: str
    location: Optional[SourceLocation] = None


@dataclass
class Unary(Expr):
    op: str  # '*', '&', '!', '-', '~'
    operand: Expr
    location: Optional[SourceLocation] = None


@dataclass
class Binary(Expr):
    op: str  # '==','!=','<','<=','>','>=','+','-','&&','||','&','|','^','%','/'
    left: Expr
    right: Expr
    location: Optional[SourceLocation] = None


@dataclass
class FieldAccess(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr
    field_name: str
    arrow: bool
    location: Optional[SourceLocation] = None


@dataclass
class Index(Expr):
    """``base[index]`` array subscript."""

    base: Expr
    index: Expr
    location: Optional[SourceLocation] = None


@dataclass
class CallExpr(Expr):
    func: str
    args: list[Expr] = field(default_factory=list)
    location: Optional[SourceLocation] = None


@dataclass
class Cast(Expr):
    target: TypeExpr
    operand: Expr
    location: Optional[SourceLocation] = None


@dataclass
class Assign(Expr):
    """``lvalue = value`` (only used in statement position)."""

    target: Expr
    value: Expr
    location: Optional[SourceLocation] = None


# ---------------------------------------------------------------- statements


class Stmt:
    """Base class of statements."""

    location: Optional[SourceLocation] = None


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration, possibly with an initializer."""

    type: TypeExpr
    names: list[str]
    inits: list[Optional[Expr]]
    location: Optional[SourceLocation] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    location: Optional[SourceLocation] = None


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: "CompoundStmt"
    else_body: Optional["CompoundStmt"] = None
    location: Optional[SourceLocation] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: "CompoundStmt"
    location: Optional[SourceLocation] = None


@dataclass
class DoWhileStmt(Stmt):
    body: "CompoundStmt"
    cond: Expr
    location: Optional[SourceLocation] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None
    location: Optional[SourceLocation] = None


@dataclass
class BreakStmt(Stmt):
    location: Optional[SourceLocation] = None


@dataclass
class ContinueStmt(Stmt):
    location: Optional[SourceLocation] = None


@dataclass
class AtomicStmt(Stmt):
    """``atomic { ... }`` — executed atomically (models CAS/locked sections)."""

    body: "CompoundStmt"
    location: Optional[SourceLocation] = None


@dataclass
class CompoundStmt(Stmt):
    statements: list[Stmt] = field(default_factory=list)
    location: Optional[SourceLocation] = None


# --------------------------------------------------------------- declarations


@dataclass
class StructField:
    type: TypeExpr
    name: str
    array_size: int | None = None


@dataclass
class StructDef:
    name: str
    fields: list[StructField]
    location: Optional[SourceLocation] = None


@dataclass
class EnumDef:
    name: str
    enumerators: list[tuple[str, int]]
    location: Optional[SourceLocation] = None


@dataclass
class Typedef:
    name: str
    type: TypeExpr
    location: Optional[SourceLocation] = None


@dataclass
class GlobalVarDecl:
    type: TypeExpr
    name: str
    init: Optional[Expr] = None
    location: Optional[SourceLocation] = None


@dataclass
class Param:
    type: TypeExpr
    name: str


@dataclass
class FunctionDecl:
    """A function prototype (extern declaration, no body)."""

    return_type: TypeExpr
    name: str
    params: list[Param]
    location: Optional[SourceLocation] = None


@dataclass
class FunctionDef:
    return_type: TypeExpr
    name: str
    params: list[Param]
    body: CompoundStmt
    location: Optional[SourceLocation] = None


@dataclass
class TranslationUnit:
    """A parsed C source file."""

    structs: list[StructDef] = field(default_factory=list)
    enums: list[EnumDef] = field(default_factory=list)
    typedefs: list[Typedef] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)
    prototypes: list[FunctionDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
