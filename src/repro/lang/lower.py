"""Lowering of the C subset to LSL.

This pass plays the role of the CIL-based translation in the original tool
(Section 3.1): it turns each C function into an LSL procedure made of loads,
stores, register operations, fences, atomic blocks, and structured blocks
with conditional break/continue.

Key conventions:

* Local variables and parameters become registers (their address cannot be
  taken; the studied algorithms never need that).
* Global variables live at statically known location indices: globals are
  laid out in declaration order starting at index 1 (index 0 is the null
  pointer), which matches :meth:`repro.lsl.layout.MemoryLayout` built by
  :func:`repro.lsl.layout`-style helpers in the checker.
* ``p->f`` becomes ``load(p + offset(f))``; ``&p->f`` is just the address
  computation.  Pointers are therefore plain integers (location indices).
* The synchronization builtins ``cas``, ``dcas``, ``lock`` and ``unlock``
  expand to atomic blocks following Fig. 6 / Fig. 7 of the paper; ``lock``
  uses the paper's spin-loop reduction (a blocking atomic acquire).
* Calls to extern prototypes returning ``T*`` with no definition (for
  example ``new_node``) become heap allocations; extern ``delete_*``/
  ``free_*`` calls become no-op frees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast
from repro.lang.errors import LoweringError
from repro.lang.parser import parse
from repro.lang.types import StructInfo, TypeEnv
from repro.lsl.builder import LslBuilder
from repro.lsl.instructions import FenceKind, PrimitiveOp
from repro.lsl.program import GlobalDecl, Procedure, Program

_RETURN_REGISTER = "__retval"

_BOOL_TYPE = ast.TypeExpr("bool", 0)
_INT_TYPE = ast.TypeExpr("int", 0)
_VOID_PTR = ast.TypeExpr("void", 1)


@dataclass
class _Value:
    """An expression lowered to a register, together with its C type."""

    reg: str
    type: ast.TypeExpr


def lower_unit(unit: ast.TranslationUnit, name: str) -> Program:
    """Lower a parsed translation unit into an LSL program."""
    return _Lowerer(unit, name).lower()


def compile_c(source: str, name: str) -> Program:
    """Parse and lower C source text in one step."""
    return lower_unit(parse(source), name)


class _Lowerer:
    def __init__(self, unit: ast.TranslationUnit, name: str) -> None:
        self.unit = unit
        self.env = TypeEnv(unit)
        self.program = Program(name)
        self.global_types: dict[str, ast.TypeExpr] = {}
        self.global_bases: dict[str, int] = {}
        self.prototypes = {p.name: p for p in unit.prototypes}
        self.functions = {f.name: f for f in unit.functions}

    # ----------------------------------------------------------------- driver

    def lower(self) -> Program:
        for struct_name in self.env.struct_names():
            self.program.add_struct(self.env.struct_info(struct_name).to_layout())
        next_base = 1  # location 0 is the null pointer
        for decl in self.unit.globals:
            resolved = self.env.resolve(decl.type)
            if resolved.pointer_depth == 0 and self.env.has_struct(resolved.base):
                info = self.env.struct_info(resolved.base)
                self.program.add_global(
                    GlobalDecl(decl.name, info.to_layout(), initial=0)
                )
                size = info.num_cells
            else:
                initial = 0
                if decl.init is not None:
                    initial = self._constant_value(decl.init)
                self.program.add_global(GlobalDecl(decl.name, None, initial))
                size = 1
            self.global_types[decl.name] = decl.type
            self.global_bases[decl.name] = next_base
            next_base += size
        for function in self.unit.functions:
            self.program.add_procedure(self._lower_function(function))
        return self.program

    def _constant_value(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.NullLiteral):
            return 0
        if isinstance(expr, ast.Name) and expr.ident in self.env.enum_constants:
            return self.env.enum_constants[expr.ident]
        raise LoweringError(
            "global initializers must be constants", getattr(expr, "location", None)
        )

    def _lower_function(self, function: ast.FunctionDef) -> Procedure:
        lowerer = _FunctionLowerer(self, function)
        return lowerer.lower()


class _FunctionLowerer:
    def __init__(self, parent: _Lowerer, function: ast.FunctionDef) -> None:
        self.parent = parent
        self.env = parent.env
        self.function = function
        self.builder = LslBuilder()
        self.locals: dict[str, _Value] = {}
        # Stack of (break_tag, continue_tag or None) for loops.
        self.loop_stack: list[tuple[str, str | None]] = []
        self.body_tag = f"__fn_{function.name}"
        self.returns_value = (
            parent.env.resolve(function.return_type).base != "void"
            or parent.env.resolve(function.return_type).pointer_depth > 0
        )

    # ----------------------------------------------------------------- entry

    def lower(self) -> Procedure:
        params = []
        for param in self.function.params:
            if not param.name:
                raise LoweringError(
                    f"unnamed parameter in {self.function.name}",
                    self.function.location,
                )
            self.locals[param.name] = _Value(param.name, param.type)
            params.append(param.name)
        with self.builder.block(self.body_tag):
            self._lower_compound(self.function.body)
        returns = (_RETURN_REGISTER,) if self.returns_value else ()
        return Procedure(
            self.function.name, tuple(params), returns, self.builder.statements
        )

    # ------------------------------------------------------------- statements

    def _lower_compound(self, compound: ast.CompoundStmt) -> None:
        for stmt in compound.statements:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self._lower_compound(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr_stmt(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self._lower_break(stmt)
        elif isinstance(stmt, ast.ContinueStmt):
            self._lower_continue(stmt)
        elif isinstance(stmt, ast.AtomicStmt):
            with self.builder.atomic():
                self._lower_compound(stmt.body)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unsupported statement {type(stmt).__name__}",
                                stmt.location)

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        for name, init in zip(stmt.names, stmt.inits):
            self.locals[name] = _Value(name, stmt.type)
            if init is not None:
                value = self._lower_expr(init)
                self.builder.move(value.reg, dst=name)

    def _lower_expr_stmt(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Assign):
            self._lower_assign(expr)
        elif isinstance(expr, ast.CallExpr):
            self._lower_call(expr)
        else:
            # An expression statement without effect; evaluate it anyway so
            # faults (null dereference) are preserved.
            self._lower_expr(expr)

    def _lower_assign(self, expr: ast.Assign) -> _Value:
        value = self._lower_rhs(expr.value)
        target = expr.target
        if isinstance(target, ast.Name) and target.ident in self.locals:
            local = self.locals[target.ident]
            self.builder.move(value.reg, dst=local.reg)
            return _Value(local.reg, local.type)
        address, _ = self._lower_address(target)
        self.builder.store(address, value.reg)
        return value

    def _lower_rhs(self, expr: ast.Expr) -> _Value:
        # Chained assignments (a = b = c) evaluate right-to-left.
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        return self._lower_expr(expr)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        not_cond = self.builder.prim(PrimitiveOp.NOT, cond.reg)
        with self.builder.block() as then_tag:
            self.builder.break_if(not_cond, then_tag)
            self._lower_compound(stmt.then_body)
        if stmt.else_body is not None:
            with self.builder.block() as else_tag:
                self.builder.break_if(cond.reg, else_tag)
                self._lower_compound(stmt.else_body)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        with self.builder.block() as tag:
            cond = self._lower_expr(stmt.cond)
            not_cond = self.builder.prim(PrimitiveOp.NOT, cond.reg)
            self.builder.break_if(not_cond, tag)
            self.loop_stack.append((tag, tag))
            try:
                self._lower_compound(stmt.body)
            finally:
                self.loop_stack.pop()
            self.builder.continue_always(tag)

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        with self.builder.block() as tag:
            self.loop_stack.append((tag, None))
            try:
                self._lower_compound(stmt.body)
            finally:
                self.loop_stack.pop()
            cond = self._lower_expr(stmt.cond)
            self.builder.continue_if(cond.reg, tag)

    def _lower_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is not None:
            value = self._lower_expr(stmt.value)
            self.builder.move(value.reg, dst=_RETURN_REGISTER)
        elif self.returns_value:
            raise LoweringError(
                f"{self.function.name} must return a value", stmt.location
            )
        self.builder.break_always(self.body_tag)

    def _lower_break(self, stmt: ast.BreakStmt) -> None:
        if not self.loop_stack:
            raise LoweringError("'break' outside of a loop", stmt.location)
        self.builder.break_always(self.loop_stack[-1][0])

    def _lower_continue(self, stmt: ast.ContinueStmt) -> None:
        if not self.loop_stack:
            raise LoweringError("'continue' outside of a loop", stmt.location)
        continue_tag = self.loop_stack[-1][1]
        if continue_tag is None:
            raise LoweringError(
                "'continue' inside do-while is not supported", stmt.location
            )
        self.builder.continue_always(continue_tag)

    # ------------------------------------------------------------ expressions

    def _lower_expr(self, expr: ast.Expr) -> _Value:
        if isinstance(expr, ast.IntLiteral):
            return _Value(self.builder.const(expr.value), _INT_TYPE)
        if isinstance(expr, ast.BoolLiteral):
            return _Value(self.builder.const(int(expr.value)), _BOOL_TYPE)
        if isinstance(expr, ast.NullLiteral):
            return _Value(self.builder.const(0), _VOID_PTR)
        if isinstance(expr, ast.StringLiteral):
            raise LoweringError(
                "string literals are only allowed as fence() arguments",
                expr.location,
            )
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, (ast.FieldAccess, ast.Index)):
            address, value_type = self._lower_address(expr)
            return _Value(self.builder.load(address), value_type)
        if isinstance(expr, ast.CallExpr):
            result = self._lower_call(expr)
            if result is None:
                raise LoweringError(
                    f"void call to {expr.func!r} used as a value", expr.location
                )
            return result
        if isinstance(expr, ast.Cast):
            inner = self._lower_expr(expr.operand)
            return _Value(inner.reg, expr.target)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        raise LoweringError(
            f"unsupported expression {type(expr).__name__}", expr.location
        )

    def _lower_name(self, expr: ast.Name) -> _Value:
        name = expr.ident
        if name in self.locals:
            return self.locals[name]
        if name in self.env.enum_constants:
            value = self.env.enum_constants[name]
            return _Value(self.builder.const(value), _INT_TYPE)
        if name in self.parent.global_bases:
            declared = self.parent.global_types[name]
            resolved = self.env.resolve(declared)
            if resolved.pointer_depth == 0 and self.env.has_struct(resolved.base):
                raise LoweringError(
                    f"global struct {name!r} cannot be used as a value; "
                    "take its address with '&'",
                    expr.location,
                )
            address = self.builder.const(self.parent.global_bases[name])
            return _Value(self.builder.load(address), declared)
        raise LoweringError(f"unknown identifier {name!r}", expr.location)

    def _lower_unary(self, expr: ast.Unary) -> _Value:
        if expr.op == "&":
            address, value_type = self._lower_address(expr.operand)
            return _Value(address, value_type.pointer_to())
        if expr.op == "*":
            pointer = self._lower_expr(expr.operand)
            resolved = self.env.resolve(pointer.type)
            if resolved.pointer_depth == 0:
                raise LoweringError("cannot dereference a non-pointer",
                                    expr.location)
            return _Value(self.builder.load(pointer.reg), resolved.pointee())
        if expr.op == "!":
            operand = self._lower_expr(expr.operand)
            return _Value(
                self.builder.prim(PrimitiveOp.NOT, operand.reg), _BOOL_TYPE
            )
        if expr.op == "-":
            operand = self._lower_expr(expr.operand)
            zero = self.builder.const(0)
            return _Value(
                self.builder.prim(PrimitiveOp.SUB, zero, operand.reg), _INT_TYPE
            )
        raise LoweringError(f"unsupported unary operator {expr.op!r}",
                            expr.location)

    _BINARY_OPS = {
        "==": PrimitiveOp.EQ,
        "!=": PrimitiveOp.NE,
        "<": PrimitiveOp.LT,
        "<=": PrimitiveOp.LE,
        ">": PrimitiveOp.GT,
        ">=": PrimitiveOp.GE,
        "+": PrimitiveOp.ADD,
        "-": PrimitiveOp.SUB,
    }

    def _lower_binary(self, expr: ast.Binary) -> _Value:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        op = self._BINARY_OPS.get(expr.op)
        if op is None:
            raise LoweringError(f"unsupported binary operator {expr.op!r}",
                                expr.location)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        result = self.builder.prim(op, left.reg, right.reg)
        if expr.op in ("+", "-"):
            result_type = left.type if self._is_pointer(left.type) else _INT_TYPE
        else:
            result_type = _BOOL_TYPE
        return _Value(result, result_type)

    def _lower_short_circuit(self, expr: ast.Binary) -> _Value:
        """``a && b`` / ``a || b`` with the usual short-circuit evaluation."""
        left = self._lower_expr(expr.left)
        zero = self.builder.const(0)
        result = self.builder.prim(PrimitiveOp.NE, left.reg, zero)
        with self.builder.block() as tag:
            if expr.op == "&&":
                skip = self.builder.prim(PrimitiveOp.NOT, result)
                self.builder.break_if(skip, tag)
            else:  # "||" — skip the right operand when the left is true
                self.builder.break_if(result, tag)
            right = self._lower_expr(expr.right)
            zero2 = self.builder.const(0)
            self.builder.prim(PrimitiveOp.NE, right.reg, zero2, dst=result)
        return _Value(result, _BOOL_TYPE)

    def _is_pointer(self, type_expr: ast.TypeExpr) -> bool:
        return self.env.resolve(type_expr).pointer_depth > 0

    # --------------------------------------------------------------- lvalues

    def _lower_address(self, expr: ast.Expr) -> tuple[str, ast.TypeExpr]:
        """Lower an lvalue to (address register, type of the stored value)."""
        if isinstance(expr, ast.Name):
            name = expr.ident
            if name in self.locals:
                raise LoweringError(
                    f"cannot take the address of local variable {name!r}",
                    expr.location,
                )
            if name in self.parent.global_bases:
                address = self.builder.const(self.parent.global_bases[name])
                return address, self.parent.global_types[name]
            raise LoweringError(f"unknown identifier {name!r}", expr.location)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._lower_expr(expr.operand)
            resolved = self.env.resolve(pointer.type)
            if resolved.pointer_depth == 0:
                raise LoweringError("cannot dereference a non-pointer",
                                    expr.location)
            return pointer.reg, resolved.pointee()
        if isinstance(expr, ast.FieldAccess):
            return self._lower_field_address(expr)
        if isinstance(expr, ast.Index):
            base_addr, base_type = self._lower_address(expr.base)
            index = self._lower_expr(expr.index)
            address = self.builder.prim(PrimitiveOp.ADD, base_addr, index.reg)
            return address, base_type
        raise LoweringError(
            f"expression {type(expr).__name__} is not an lvalue", expr.location
        )

    def _lower_field_address(self, expr: ast.FieldAccess) -> tuple[str, ast.TypeExpr]:
        if expr.arrow:
            base = self._lower_expr(expr.base)
            struct = self.env.pointee_struct(base.type)
            base_addr = base.reg
        else:
            base_addr, base_type = self._lower_address(expr.base)
            struct = self.env.struct_info(base_type)
        offset = struct.offset_of(expr.field_name)
        if offset == 0:
            address = base_addr
        else:
            offset_reg = self.builder.const(offset)
            address = self.builder.prim(PrimitiveOp.ADD, base_addr, offset_reg)
        return address, struct.field_types[expr.field_name]

    # ------------------------------------------------------------------ calls

    def _lower_call(self, expr: ast.CallExpr) -> _Value | None:
        name = expr.func
        if name == "fence":
            return self._builtin_fence(expr)
        if name in ("assert", "assume"):
            return self._builtin_assert_assume(expr)
        if name == "cas":
            return self._builtin_cas(expr)
        if name == "dcas":
            return self._builtin_dcas(expr)
        if name == "lock":
            return self._builtin_lock(expr)
        if name == "unlock":
            return self._builtin_unlock(expr)
        if name == "choose":
            return self._builtin_choose(expr)
        if name in self.parent.functions:
            return self._call_defined(expr)
        if name in self.parent.prototypes:
            return self._call_extern(expr)
        raise LoweringError(f"call to unknown function {name!r}", expr.location)

    def _builtin_fence(self, expr: ast.CallExpr) -> None:
        if len(expr.args) != 1 or not isinstance(expr.args[0], ast.StringLiteral):
            raise LoweringError('fence() expects a string literal such as '
                                '"store-store"', expr.location)
        try:
            kind = FenceKind.from_string(expr.args[0].value)
        except ValueError as exc:
            raise LoweringError(str(exc), expr.location) from exc
        self.builder.fence(kind)
        return None

    def _builtin_assert_assume(self, expr: ast.CallExpr) -> None:
        if len(expr.args) != 1:
            raise LoweringError(f"{expr.func}() expects one argument",
                                expr.location)
        cond = self._lower_expr(expr.args[0])
        if expr.func == "assert":
            self.builder.assert_(cond.reg)
        else:
            self.builder.assume(cond.reg)
        return None

    def _builtin_cas(self, expr: ast.CallExpr) -> _Value:
        if len(expr.args) != 3:
            raise LoweringError("cas() expects (location, old, new)",
                                expr.location)
        location = self._lower_expr(expr.args[0])
        old = self._lower_expr(expr.args[1])
        new = self._lower_expr(expr.args[2])
        result = self.builder.fresh_reg("cas")
        with self.builder.atomic():
            current = self.builder.load(location.reg)
            self.builder.prim(PrimitiveOp.EQ, current, old.reg, dst=result)
            with self.builder.block() as tag:
                failed = self.builder.prim(PrimitiveOp.NOT, result)
                self.builder.break_if(failed, tag)
                self.builder.store(location.reg, new.reg)
        return _Value(result, _BOOL_TYPE)

    def _builtin_dcas(self, expr: ast.CallExpr) -> _Value:
        if len(expr.args) != 6:
            raise LoweringError(
                "dcas() expects (loc1, old1, new1, loc2, old2, new2)",
                expr.location,
            )
        loc1 = self._lower_expr(expr.args[0])
        old1 = self._lower_expr(expr.args[1])
        new1 = self._lower_expr(expr.args[2])
        loc2 = self._lower_expr(expr.args[3])
        old2 = self._lower_expr(expr.args[4])
        new2 = self._lower_expr(expr.args[5])
        result = self.builder.fresh_reg("dcas")
        with self.builder.atomic():
            current1 = self.builder.load(loc1.reg)
            current2 = self.builder.load(loc2.reg)
            eq1 = self.builder.prim(PrimitiveOp.EQ, current1, old1.reg)
            eq2 = self.builder.prim(PrimitiveOp.EQ, current2, old2.reg)
            self.builder.prim(PrimitiveOp.AND, eq1, eq2, dst=result)
            with self.builder.block() as tag:
                failed = self.builder.prim(PrimitiveOp.NOT, result)
                self.builder.break_if(failed, tag)
                self.builder.store(loc1.reg, new1.reg)
                self.builder.store(loc2.reg, new2.reg)
        return _Value(result, _BOOL_TYPE)

    def _builtin_lock(self, expr: ast.CallExpr) -> None:
        """Blocking lock acquisition (the paper's spin-loop reduction)."""
        if len(expr.args) != 1:
            raise LoweringError("lock() expects one argument", expr.location)
        location = self._lower_expr(expr.args[0])
        with self.builder.atomic():
            current = self.builder.load(location.reg)
            zero = self.builder.const(0)
            is_free = self.builder.prim(PrimitiveOp.EQ, current, zero)
            self.builder.assume(is_free)
            one = self.builder.const(1)
            self.builder.store(location.reg, one)
        self.builder.fence(FenceKind.LOAD_LOAD)
        self.builder.fence(FenceKind.LOAD_STORE)
        return None

    def _builtin_unlock(self, expr: ast.CallExpr) -> None:
        if len(expr.args) != 1:
            raise LoweringError("unlock() expects one argument", expr.location)
        location = self._lower_expr(expr.args[0])
        self.builder.fence(FenceKind.LOAD_STORE)
        self.builder.fence(FenceKind.STORE_STORE)
        with self.builder.atomic():
            current = self.builder.load(location.reg)
            one = self.builder.const(1)
            held = self.builder.prim(PrimitiveOp.EQ, current, one)
            self.builder.assert_(held)
            zero = self.builder.const(0)
            self.builder.store(location.reg, zero)
        return None

    def _builtin_choose(self, expr: ast.CallExpr) -> _Value:
        choices = tuple(self._constant_arg(a) for a in expr.args) or (0, 1)
        return _Value(self.builder.choose(choices), _INT_TYPE)

    def _constant_arg(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        raise LoweringError("choose() arguments must be integer literals",
                            expr.location)

    def _call_defined(self, expr: ast.CallExpr) -> _Value | None:
        function = self.parent.functions[expr.func]
        if len(expr.args) != len(function.params):
            raise LoweringError(
                f"{expr.func}() expects {len(function.params)} arguments, "
                f"got {len(expr.args)}",
                expr.location,
            )
        arg_regs = [self._lower_expr(a).reg for a in expr.args]
        resolved_ret = self.env.resolve(function.return_type)
        returns_value = (
            resolved_ret.base != "void" or resolved_ret.pointer_depth > 0
        )
        if returns_value:
            ret_reg = self.builder.fresh_reg(f"{expr.func}_ret")
            self.builder.call(expr.func, arg_regs, [ret_reg])
            return _Value(ret_reg, function.return_type)
        self.builder.call(expr.func, arg_regs, [])
        return None

    def _call_extern(self, expr: ast.CallExpr) -> _Value | None:
        proto = self.parent.prototypes[expr.func]
        resolved_ret = self.env.resolve(proto.return_type)
        # Allocation: an extern returning a pointer to a struct.
        if resolved_ret.pointer_depth == 1 and self.env.has_struct(resolved_ret.base):
            struct = self.env.struct_info(resolved_ret.base)
            reg = self.builder.alloc(
                struct.num_cells, struct.name, struct.cells, init="havoc"
            )
            return _Value(reg, proto.return_type)
        # Deallocation: extern void delete_*/free_* (ignored by the checker).
        if resolved_ret.base == "void" and resolved_ret.pointer_depth == 0 and (
            expr.func.startswith("delete") or expr.func.startswith("free")
        ):
            if len(expr.args) == 1:
                pointer = self._lower_expr(expr.args[0])
                self.builder.free(pointer.reg)
            return None
        raise LoweringError(
            f"call to extern function {expr.func!r} is not supported",
            expr.location,
        )
