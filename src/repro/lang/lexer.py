"""Tokenizer for the supported C subset.

The front-end plays the role of the CIL-based front-end in the original tool:
it only has to understand the language features that the studied concurrent
data type implementations use (Section 3.1 "C features").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import LexError, SourceLocation

KEYWORDS = {
    "typedef",
    "struct",
    "enum",
    "union",
    "extern",
    "static",
    "volatile",
    "const",
    "unsigned",
    "signed",
    "int",
    "long",
    "short",
    "char",
    "void",
    "bool",
    "_Bool",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "true",
    "false",
    "NULL",
    "atomic",
    "sizeof",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "++",
    "--",
    "<",
    ">",
    "=",
    "!",
    "&",
    "*",
    "+",
    "-",
    "/",
    "%",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "?",
    ":",
]


@dataclass
class Token:
    """A single lexical token."""

    kind: str  # 'ident', 'number', 'string', 'keyword', 'op', 'eof'
    text: str
    location: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Convert C source text into a token list (comments stripped)."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(line, column)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]
        # Whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # Line comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                advance(1)
            continue
        # Block comments
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise LexError("unterminated block comment", loc())
            advance(end + 2 - index)
            continue
        # Preprocessor lines are skipped (the sources use none that matter).
        if ch == "#" and column == 1:
            while index < length and source[index] != "\n":
                advance(1)
            continue
        # Identifiers and keywords
        if ch.isalpha() or ch == "_":
            start = index
            start_loc = loc()
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance(1)
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_loc))
            continue
        # Numbers (decimal and hex)
        if ch.isdigit():
            start = index
            start_loc = loc()
            if source.startswith("0x", index) or source.startswith("0X", index):
                advance(2)
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    advance(1)
            else:
                while index < length and source[index].isdigit():
                    advance(1)
            # Integer suffixes (u, l) are accepted and ignored.
            while index < length and source[index] in "uUlL":
                advance(1)
            tokens.append(Token("number", source[start:index], start_loc))
            continue
        # String literals (used only for fence("...") arguments)
        if ch == '"':
            start_loc = loc()
            advance(1)
            chars: list[str] = []
            while index < length and source[index] != '"':
                if source[index] == "\\":
                    advance(1)
                    if index >= length:
                        break
                chars.append(source[index])
                advance(1)
            if index >= length:
                raise LexError("unterminated string literal", start_loc)
            advance(1)  # closing quote
            tokens.append(Token("string", "".join(chars), start_loc))
            continue
        # Character literals become their integer value.
        if ch == "'":
            start_loc = loc()
            advance(1)
            if index < length and source[index] == "\\":
                advance(1)
            if index >= length:
                raise LexError("unterminated character literal", start_loc)
            value = ord(source[index])
            advance(1)
            if index >= length or source[index] != "'":
                raise LexError("unterminated character literal", start_loc)
            advance(1)
            tokens.append(Token("number", str(value), start_loc))
            continue
        # Operators and punctuation
        for op in OPERATORS:
            if source.startswith(op, index):
                tokens.append(Token("op", op, loc()))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc())

    tokens.append(Token("eof", "", loc()))
    return tokens
