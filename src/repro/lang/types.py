"""Type environment used while lowering C to LSL.

LSL itself is untyped; the front-end only needs enough static type
information to resolve struct field offsets (``p->next``), to know how many
cells an allocation occupies, and to distinguish void from value-returning
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast
from repro.lang.errors import LoweringError
from repro.lsl.program import StructLayout


@dataclass
class StructInfo:
    """Flattened layout of a struct: every scalar cell gets an offset."""

    name: str
    cells: tuple[str, ...]          # cell display names, in offset order
    field_offsets: dict[str, int]   # field name -> first cell offset
    field_sizes: dict[str, int]     # field name -> number of cells
    field_types: dict[str, ast.TypeExpr]

    @property
    def num_cells(self) -> int:
        return max(1, len(self.cells))

    def offset_of(self, field_name: str) -> int:
        try:
            return self.field_offsets[field_name]
        except KeyError as exc:
            raise LoweringError(
                f"struct {self.name} has no field {field_name!r}"
            ) from exc

    def to_layout(self) -> StructLayout:
        return StructLayout(self.name, self.cells)


class TypeEnv:
    """Resolves typedefs, struct layouts, and enum constants."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self._aliases: dict[str, ast.TypeExpr] = {}
        self._structs: dict[str, StructInfo] = {}
        self.enum_constants: dict[str, int] = {}

        for typedef in unit.typedefs:
            self._aliases[typedef.name] = typedef.type
        for enum in unit.enums:
            self._aliases.setdefault(enum.name, ast.TypeExpr("int", 0))
            for name, value in enum.enumerators:
                self.enum_constants[name] = value
        for struct in unit.structs:
            self._structs[struct.name] = self._flatten(struct)

    # -------------------------------------------------------------- structs

    def _flatten(self, struct: ast.StructDef) -> StructInfo:
        cells: list[str] = []
        field_offsets: dict[str, int] = {}
        field_sizes: dict[str, int] = {}
        field_types: dict[str, ast.TypeExpr] = {}
        for field in struct.fields:
            field_offsets[field.name] = len(cells)
            field_types[field.name] = field.type
            if field.array_size is not None:
                field_sizes[field.name] = field.array_size
                cells.extend(
                    f"{field.name}[{i}]" for i in range(field.array_size)
                )
            else:
                field_sizes[field.name] = 1
                cells.append(field.name)
        return StructInfo(
            name=struct.name,
            cells=tuple(cells),
            field_offsets=field_offsets,
            field_sizes=field_sizes,
            field_types=field_types,
        )

    # ------------------------------------------------------------ resolution

    def resolve(self, type_expr: ast.TypeExpr) -> ast.TypeExpr:
        """Follow typedef aliases until a base type or struct name remains."""
        base = type_expr.base
        depth = type_expr.pointer_depth
        seen: set[str] = set()
        while base in self._aliases and base not in self._structs:
            if base in seen:
                raise LoweringError(f"cyclic typedef involving {base!r}")
            seen.add(base)
            alias = self._aliases[base]
            depth += alias.pointer_depth
            base = alias.base
        return ast.TypeExpr(base, depth)

    def is_struct(self, type_expr: ast.TypeExpr) -> bool:
        resolved = self.resolve(type_expr)
        return resolved.pointer_depth == 0 and resolved.base in self._structs

    def struct_info(self, type_expr: ast.TypeExpr | str) -> StructInfo:
        if isinstance(type_expr, str):
            name = self.resolve(ast.TypeExpr(type_expr, 0)).base
        else:
            name = self.resolve(type_expr).base
        try:
            return self._structs[name]
        except KeyError as exc:
            raise LoweringError(f"unknown struct type {name!r}") from exc

    def has_struct(self, name: str) -> bool:
        try:
            resolved = self.resolve(ast.TypeExpr(name, 0)).base
        except LoweringError:
            return False
        return resolved in self._structs

    def struct_names(self) -> list[str]:
        return list(self._structs)

    def pointee_struct(self, type_expr: ast.TypeExpr) -> StructInfo:
        resolved = self.resolve(type_expr)
        if resolved.pointer_depth == 0:
            raise LoweringError(f"{type_expr} is not a pointer type")
        return self.struct_info(resolved.base)
