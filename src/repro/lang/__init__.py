"""C front-end: lexer, parser, and lowering to LSL (replaces CIL)."""

from repro.lang.errors import (
    FrontendError,
    LexError,
    LoweringError,
    ParseError,
    SourceLocation,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import Parser, parse
from repro.lang.lower import compile_c, lower_unit
from repro.lang.types import StructInfo, TypeEnv

__all__ = [
    "FrontendError",
    "LexError",
    "LoweringError",
    "ParseError",
    "SourceLocation",
    "Token",
    "tokenize",
    "Parser",
    "parse",
    "compile_c",
    "lower_unit",
    "StructInfo",
    "TypeEnv",
]
