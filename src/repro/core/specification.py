"""Specification mining: computing the observation set ``S_{T,I}``.

The specification of a test is the set of observation vectors produced by
*serial* executions (atomic, interleaved operations).  Two miners are
provided, mirroring Section 3.2 and the "refset" data points of Fig. 11a:

* :class:`SatSpecificationMiner` — the paper's iterative procedure: solve the
  Seriality-model formula, record the observation, add a blocking clause,
  repeat until UNSAT.
* :class:`ReferenceSpecificationMiner` — runs a small sequential Python
  reference implementation over every interleaving of the operations and
  every argument choice.  This is the fast path the paper recommends for
  practice ("we can often compute observation sets much more efficiently by
  using a small, fast reference implementation").
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.core import limits
from repro.encoding.formula import EncodedTest, encode_test
from repro.encoding.testprogram import CompiledTest, INIT_THREAD
from repro.lsl.program import Invocation, SymbolicTest
from repro.memorymodel.base import SERIAL
from repro.sat.backend import BackendFactory


@dataclass
class ObservationSet:
    """The mined specification: a set of observation vectors plus metadata."""

    labels: list[str]
    observations: set[tuple[int, ...]] = field(default_factory=set)
    mining_seconds: float = 0.0
    method: str = "reference"
    solver_iterations: int = 0

    def __contains__(self, observation: tuple[int, ...]) -> bool:
        return observation in self.observations

    def __len__(self) -> int:
        return len(self.observations)

    def add(self, observation: tuple[int, ...]) -> None:
        self.observations.add(observation)

    def describe(self, observation: tuple[int, ...]) -> str:
        parts = [
            f"{label}={value}" for label, value in zip(self.labels, observation)
        ]
        return ", ".join(parts)


class SpecificationError(RuntimeError):
    """The specification could not be mined (bad reference, no serial runs)."""


class SatSpecificationMiner:
    """Mines the observation set with the SAT back-end (Seriality model)."""

    def __init__(
        self,
        compiled: CompiledTest,
        max_observations: int = 100_000,
        backend_factory: BackendFactory | None = None,
        dense_order: bool | None = None,
        simplify: bool | None = None,
    ):
        self.compiled = compiled
        self.max_observations = max_observations
        self.backend_factory = backend_factory
        self.dense_order = dense_order
        self.simplify = simplify

    def mine(self) -> ObservationSet:
        start = time.perf_counter()
        # One incremental backend serves the whole blocking-clause loop:
        # learned clauses survive across the repeated solve() calls.
        encoded: EncodedTest = encode_test(
            self.compiled, SERIAL, backend_factory=self.backend_factory,
            dense_order=self.dense_order, simplify=self.simplify,
        )
        spec = ObservationSet(
            labels=self.compiled.observation_labels(), method="sat"
        )
        encoded.expect_enumeration()
        iterations = 0
        while iterations < self.max_observations:
            # The solve itself polls inside the backend; this covers the
            # decode/block bookkeeping between iterations of a long
            # enumeration.
            limits.check_deadline()
            result = encoded.solve()
            iterations += 1
            if not result:
                break
            observation = encoded.decode_current_observation()
            spec.add(observation)
            encoded.block_observation(observation)
        spec.solver_iterations = iterations
        spec.mining_seconds = time.perf_counter() - start
        return spec


class ReferenceSpecificationMiner:
    """Mines the observation set by enumerating serial runs of a reference
    implementation."""

    def __init__(
        self,
        compiled: CompiledTest,
        max_interleavings: int = 2_000_000,
    ) -> None:
        if compiled.implementation.reference is None:
            raise SpecificationError(
                f"implementation {compiled.implementation.name!r} has no "
                "reference implementation"
            )
        self.compiled = compiled
        self.max_interleavings = max_interleavings

    # --------------------------------------------------------------- public

    def mine(self) -> ObservationSet:
        start = time.perf_counter()
        spec = ObservationSet(
            labels=self.compiled.observation_labels(), method="reference"
        )
        test = self.compiled.test
        init_slots, thread_slots = self._invocation_slots()

        thread_sequences = [
            [(thread, position) for position in range(len(test.threads[thread]))]
            for thread in range(len(test.threads))
        ]
        count = 0
        for interleaving in interleavings(thread_sequences):
            if count & 63 == 0:
                limits.check_deadline()
            for observation in self._run_choices(interleaving, init_slots,
                                                 thread_slots):
                spec.add(observation)
            count += 1
            if count > self.max_interleavings:
                raise SpecificationError(
                    "too many interleavings for reference mining; "
                    "use the SAT miner"
                )
        spec.mining_seconds = time.perf_counter() - start
        return spec

    def contains(self, observation: tuple[int, ...]) -> bool:
        """Membership test with early exit (used by the lazy baseline)."""
        test = self.compiled.test
        init_slots, thread_slots = self._invocation_slots()
        thread_sequences = [
            [(thread, position) for position in range(len(test.threads[thread]))]
            for thread in range(len(test.threads))
        ]
        for interleaving in interleavings(thread_sequences):
            for candidate in self._run_choices(interleaving, init_slots,
                                               thread_slots):
                if candidate == observation:
                    return True
        return False

    # ------------------------------------------------------------ internals

    def _invocation_slots(self):
        """Map invocations to their slot ranges in the observation vector."""
        init_slots: list[tuple[Invocation, int, int]] = []
        thread_slots: dict[tuple[int, int], tuple[Invocation, int, int]] = {}
        offset = 0
        test = self.compiled.test
        for compiled_inv in self.compiled.invocations:
            width = len(compiled_inv.observable_regs)
            if compiled_inv.thread == INIT_THREAD:
                invocation = test.init[compiled_inv.position]
                init_slots.append((invocation, offset, width))
            else:
                invocation = test.threads[compiled_inv.thread][compiled_inv.position]
                thread_slots[(compiled_inv.thread, compiled_inv.position)] = (
                    invocation, offset, width,
                )
            offset += width
        self._total_slots = offset
        return init_slots, thread_slots

    def _run_choices(self, interleaving, init_slots, thread_slots):
        """Yield the observation of every argument choice for one interleaving."""
        # Collect the symbolic (unspecified) arguments in a fixed order.
        symbolic: list[tuple[str, int, tuple[int, ...]]] = []

        def register_args(invocation: Invocation, key: str) -> None:
            spec = self.compiled.implementation.operation(invocation.operation)
            for index in range(spec.num_value_args):
                provided = (
                    invocation.args[index] if index < len(invocation.args) else None
                )
                if provided is None:
                    symbolic.append((key, index, invocation.choice_domain))

        for position, (invocation, _, _) in enumerate(init_slots):
            register_args(invocation, f"init:{position}")
        for (thread, position), (invocation, _, _) in thread_slots.items():
            register_args(invocation, f"{thread}:{position}")

        domains = [choices for _, _, choices in symbolic]
        for assignment in itertools.product(*domains) if domains else [()]:
            chosen = {
                (key, index): value
                for (key, index, _), value in zip(symbolic, assignment)
            }
            yield self._run_once(interleaving, init_slots, thread_slots, chosen)

    def _run_once(self, interleaving, init_slots, thread_slots, chosen):
        reference = self.compiled.implementation.reference()
        observation = [0] * self._total_slots

        def call(invocation: Invocation, key: str, offset: int, width: int) -> None:
            spec = self.compiled.implementation.operation(invocation.operation)
            args = []
            for index in range(spec.num_value_args):
                provided = (
                    invocation.args[index] if index < len(invocation.args) else None
                )
                if provided is None:
                    provided = chosen[(key, index)]
                args.append(provided)
            method = getattr(reference, invocation.operation, None)
            if method is None:
                raise SpecificationError(
                    f"reference for {self.compiled.implementation.name!r} has "
                    f"no operation {invocation.operation!r}"
                )
            result = method(*args)
            observables = list(args) + _normalize_result(result)
            expected = spec.num_observables
            if len(observables) != expected:
                raise SpecificationError(
                    f"reference operation {invocation.operation!r} produced "
                    f"{len(observables)} observables, expected {expected}"
                )
            observation[offset:offset + width] = observables

        for position, (invocation, offset, width) in enumerate(init_slots):
            call(invocation, f"init:{position}", offset, width)
        for thread, position in interleaving:
            invocation, offset, width = thread_slots[(thread, position)]
            call(invocation, f"{thread}:{position}", offset, width)
        return tuple(observation)


def _normalize_result(result) -> list[int]:
    if result is None:
        return []
    if isinstance(result, bool):
        return [int(result)]
    if isinstance(result, tuple):
        return [int(x) for x in result]
    return [int(result)]


def interleavings(sequences: list[list]):
    """Yield every interleaving of the given sequences (per-sequence order
    preserved)."""
    non_empty = [s for s in sequences if s]
    if not non_empty:
        yield []
        return
    yield from _interleave([list(s) for s in non_empty], [])


def _interleave(sequences, prefix):
    if all(not s for s in sequences):
        yield list(prefix)
        return
    for index, sequence in enumerate(sequences):
        if not sequence:
            continue
        head = sequence.pop(0)
        prefix.append(head)
        yield from _interleave(sequences, prefix)
        prefix.pop()
        sequence.insert(0, head)


def mine_specification(
    compiled: CompiledTest,
    method: str = "auto",
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> ObservationSet:
    """Mine the observation set with the requested method.

    ``auto`` uses the reference implementation when available and falls back
    to the SAT miner otherwise.
    """
    if method == "auto":
        method = (
            "reference" if compiled.implementation.reference is not None else "sat"
        )
    if method == "reference":
        return ReferenceSpecificationMiner(compiled).mine()
    if method == "sat":
        return SatSpecificationMiner(
            compiled, backend_factory=backend_factory, dense_order=dense_order,
            simplify=simplify,
        ).mine()
    raise ValueError(f"unknown specification mining method {method!r}")
