"""The inclusion check (Section 3.2, "Inclusion check").

Given a mined observation set ``S`` and a memory model ``Y``, the check asks
the SAT solver for an execution of the test under ``Y`` whose observation is
not in ``S``; a model is a counterexample, UNSAT means every execution is
observationally equivalent to a serial one.  A separate query searches for
executions that violate an ``assert`` in the implementation code (this is
how the non-memory-model bugs of Section 4.1 surface).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.counterexample import CounterexampleTrace, build_trace
from repro.core.specification import ObservationSet
from repro.encoding.formula import EncodedTest, encode_test
from repro.encoding.testprogram import CompiledTest
from repro.memorymodel.base import MemoryModel
from repro.sat.backend import BackendFactory


@dataclass
class InclusionOutcome:
    """Result of one inclusion (or assertion) query."""

    passed: bool
    counterexample: CounterexampleTrace | None
    solve_seconds: float
    encoded: EncodedTest


def run_inclusion_check(
    compiled: CompiledTest,
    model: MemoryModel,
    specification: ObservationSet,
    encoded: EncodedTest | None = None,
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> InclusionOutcome:
    """Check ``obs(E_{T,I,Y}) ⊆ S``; returns a counterexample if it fails.

    The "observation not in S" constraint is added as permanent clauses —
    deliberately, because root-level blocking clauses propagate much more
    strongly than guard-literal variants and the inclusion query is the last
    query of a check.  The encoded test is contaminated afterwards (the
    assertion query must not run on it again); callers that cache encodings,
    like :class:`repro.core.session.CheckSession`, evict it.  For a fully
    reusable formula use :meth:`EncodedTest.not_in_guard` and solve under
    the guard assumption instead.
    """
    if encoded is None:
        encoded = encode_test(
            compiled, model, backend_factory=backend_factory,
            dense_order=dense_order, simplify=simplify,
        )
    encoded.require_not_in(specification.observations)
    start = time.perf_counter()
    satisfiable = encoded.solve()
    elapsed = time.perf_counter() - start
    if not satisfiable:
        return InclusionOutcome(True, None, elapsed, encoded)
    trace = build_trace(encoded, "observation", specification.labels)
    return InclusionOutcome(False, trace, elapsed, encoded)


def run_assertion_check(
    compiled: CompiledTest,
    model: MemoryModel,
    labels: list[str],
    encoded: EncodedTest | None = None,
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> InclusionOutcome:
    """Search for an execution that violates an ``assert`` statement."""
    if encoded is None:
        encoded = encode_test(
            compiled, model, backend_factory=backend_factory,
            dense_order=dense_order, simplify=simplify,
        )
    if not encoded.assertions:
        return InclusionOutcome(True, None, 0.0, encoded)
    some_violation = encoded.ctx.circuit.or_many(
        -handle for handle, _ in encoded.assertions
    )
    start = time.perf_counter()
    satisfiable = encoded.solve(assumptions=[some_violation])
    elapsed = time.perf_counter() - start
    if not satisfiable:
        return InclusionOutcome(True, None, elapsed, encoded)
    trace = build_trace(encoded, "assertion", labels)
    return InclusionOutcome(False, trace, elapsed, encoded)
