"""Automatic fence synthesis and minimization (``checkfence synthesize``).

The paper's Section 4.2/4.3 fence experiments were manual: remove fences,
watch tests FAIL, reinsert by hand until they PASS.  This module automates
the loop.  Every plausible fence position (each boundary after an
access-bearing statement, which covers every po-adjacent access pair and in
particular the catalog's hand-placed slots) is *instrumented* with a
candidate :class:`~repro.lsl.instructions.Fence` per partial fence kind.  A
candidate fence is guarded by a selector variable
(:meth:`repro.encoding.formula.EncodingContext.fence_selector`), so one
encoded formula represents the test under **every** subset of fences at
once: a subset ``F`` is sufficient exactly when the FAILing queries are
UNSAT under the assumptions ``{selector(f) : f in F}`` — with the other
selectors free, the solver switches unselected fences off itself.

The search runs on that single warm formula and its persistent incremental
backend:

1. **All-on probe.**  Assume every selector.  SAT means even full fencing
   cannot repair the cell (e.g. a ``-buggy`` variant): infeasible.
2. **Core-guided pruning.**  On UNSAT, ``failed_assumptions()`` returns a
   core; only selectors in the core can matter, so the working set shrinks
   from hundreds of candidates to the core in one solve.
3. **Destructive deletion.**  Drop candidates one at a time (most expensive
   first); every successful drop re-prunes through the new core.  The
   result is 1-minimal: dropping any single fence re-FAILs.
4. **Exact escalation (MaxSAT-style minimal correction).**  An implicit
   hitting-set loop: every SAT witness yields the set of fences it runs
   *without* (a correction set that any sufficient ``F`` must hit); iterate
   minimum-cost hitting set -> sufficiency test -> new correction set until
   the hitting set is sufficient (then it is globally cost-optimal) or the
   solve budget runs out (then the deletion result stands, ``optimal`` is
   False).

Costs are per fence kind — ``store-store``/``load-load``/``load-store``
are cheap, ``store-load`` and ``full`` are the expensive barriers on real
hardware — so the search prefers e.g. two store-store fences over one
store-load when both repair the cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.specification import ObservationSet
from repro.encoding.formula import EncodedTest, encode_test
from repro.encoding.testprogram import CompiledTest, compile_test
from repro.lsl.instructions import (
    Atomic,
    Block,
    Call,
    Fence,
    FenceKind,
    Load,
    Statement,
    Store,
)
from repro.lsl.program import Procedure, Program
from repro.memorymodel.base import MemoryModel, get_model

#: Relative cost of enabling one fence of each kind (store-load and full
#: barriers drain the store buffer on real hardware; the partial fences
#: are cheap).
FENCE_COSTS = {
    FenceKind.LOAD_LOAD: 1,
    FenceKind.LOAD_STORE: 1,
    FenceKind.STORE_STORE: 1,
    FenceKind.STORE_LOAD: 2,
    FenceKind.FULL: 3,
}

#: Candidate kinds offered at every slot.  The four partial kinds together
#: equal a full barrier, so all-on is the strongest fencing of the program
#: and ``FULL`` candidates would be redundant.
CANDIDATE_KINDS = (
    FenceKind.LOAD_LOAD,
    FenceKind.LOAD_STORE,
    FenceKind.STORE_LOAD,
    FenceKind.STORE_STORE,
)


class SynthesisError(RuntimeError):
    """Fence synthesis cannot run (no candidates, unknown model, ...)."""


@dataclass(frozen=True)
class CandidateFence:
    """One candidate fence: a program point (LSL source location) + kind."""

    label: str          # "<procedure>@<slot>:<kind>" — the selector label
    procedure: str      # procedure the slot lives in ("" for litmus threads)
    slot: int           # boundary index within the procedure (stable)
    kind: FenceKind
    before: str         # rendering of the statement just before the slot
    after: str          # rendering of the statement just after the slot

    @property
    def cost(self) -> int:
        return FENCE_COSTS[self.kind]

    def location(self) -> str:
        """The slot as an LSL source location."""
        where = f"{self.procedure}@{self.slot}" if self.procedure else f"@{self.slot}"
        return f'{where}: between `{self.before}` and `{self.after}`'

    def describe(self) -> str:
        return f'fence("{self.kind.value}") at {self.location()}'


# --------------------------------------------------------------- instrumenting


def _contains_access(stmt: Statement) -> bool:
    """Can this statement (sub)tree touch shared memory once inlined?
    ``Call`` is conservatively an access (the callee may load/store)."""
    if isinstance(stmt, (Load, Store, Call)):
        return True
    if isinstance(stmt, (Block, Atomic)):
        return any(_contains_access(s) for s in stmt.body)
    return False


def _instrument_body(
    body: list[Statement],
    procedure: str,
    kinds,
    counter: list[int],
    candidates: list[CandidateFence],
) -> list[Statement]:
    out: list[Statement] = []
    tail_has_access = [False] * (len(body) + 1)
    for index in range(len(body) - 1, -1, -1):
        tail_has_access[index] = (
            tail_has_access[index + 1] or _contains_access(body[index])
        )
    for index, stmt in enumerate(body):
        if isinstance(stmt, Block):
            out.append(
                Block(
                    stmt.tag,
                    _instrument_body(
                        stmt.body, procedure, kinds, counter, candidates
                    ),
                )
            )
        else:
            # Atomic bodies are left alone: their accesses already execute
            # atomically and in order, so an internal fence cannot change
            # the outcome set a slot around the block would not.
            out.append(stmt)
        # One slot after every access-bearing statement that still has an
        # access after it: this covers every po-adjacent access pair once
        # (boundaries between access-free statements would duplicate the
        # nearest such slot).
        if (
            index + 1 < len(body)
            and _contains_access(stmt)
            and tail_has_access[index + 1]
        ):
            slot = counter[0]
            counter[0] += 1
            for kind in kinds:
                candidate = CandidateFence(
                    label=f"{procedure}@{slot}:{kind.value}",
                    procedure=procedure,
                    slot=slot,
                    kind=kind,
                    before=str(stmt),
                    after=str(body[index + 1]),
                )
                candidates.append(candidate)
                out.append(Fence(kind, candidate=candidate.label))
    return out


def instrument_program(
    program: Program, kinds=CANDIDATE_KINDS
) -> tuple[Program, list[CandidateFence]]:
    """A copy of ``program`` with candidate fences at every slot.

    The original program is not mutated (statement objects are shared,
    statement lists are rebuilt).  Candidate labels name the procedure and
    a per-procedure slot index, so all inlined/unrolled copies of one
    source position share one selector and results map back to LSL source
    locations.
    """
    candidates: list[CandidateFence] = []
    instrumented = Program(
        name=program.name,
        structs=dict(program.structs),
        globals=list(program.globals),
    )
    for name in sorted(program.procedures):
        proc = program.procedures[name]
        counter = [0]
        body = _instrument_body(proc.body, name, kinds, counter, candidates)
        instrumented.add_procedure(
            Procedure(
                name=proc.name,
                params=proc.params,
                returns=proc.returns,
                body=body,
            )
        )
    return instrumented, candidates


def apply_fences(program: Program, fences) -> Program:
    """A copy of ``program`` with the chosen candidate fences made
    unconditional (real) fences — the independent re-check artifact."""
    chosen = {fence.label for fence in fences}
    instrumented, _ = instrument_program(program)

    def strip(body: list[Statement]) -> list[Statement]:
        out: list[Statement] = []
        for stmt in body:
            if isinstance(stmt, Fence) and stmt.candidate is not None:
                if stmt.candidate in chosen:
                    out.append(Fence(stmt.kind))
                continue
            if isinstance(stmt, Block):
                out.append(Block(stmt.tag, strip(stmt.body)))
            elif isinstance(stmt, Atomic):
                out.append(Atomic(strip(stmt.body)))
            else:
                out.append(stmt)
        return out

    fenced = Program(
        name=program.name,
        structs=dict(instrumented.structs),
        globals=list(instrumented.globals),
    )
    for name, proc in instrumented.procedures.items():
        fenced.add_procedure(
            Procedure(
                name=proc.name,
                params=proc.params,
                returns=proc.returns,
                body=strip(proc.body),
            )
        )
    return fenced


# -------------------------------------------------------------------- queries


@dataclass
class _Query:
    """One FAILing SAT query the fence set must turn UNSAT."""

    name: str                   # "<model>/assertion" or "<model>/inclusion"
    encoded: EncodedTest
    assumptions: list[int]      # circuit handles asserted alongside selectors

    def selector(self, label: str) -> int | None:
        return self.encoded.fence_selectors.get(label)


@dataclass
class SynthesisStatistics:
    """Search effort counters (benchmark JSON embeds this)."""

    candidates: int = 0
    solves: int = 0
    solve_seconds: float = 0.0
    core_size: int = 0          # working-set size after the all-on core
    deletion_solves: int = 0
    exact_solves: int = 0
    canonical_solves: int = 0
    correction_sets: int = 0

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "solves": self.solves,
            "solve_seconds": self.solve_seconds,
            "core_size": self.core_size,
            "deletion_solves": self.deletion_solves,
            "exact_solves": self.exact_solves,
            "canonical_solves": self.canonical_solves,
            "correction_sets": self.correction_sets,
        }


@dataclass
class SynthesisResult:
    """Outcome of one fence synthesis run."""

    implementation: str
    test: str
    models: list[str]
    feasible: bool                      # some fence set repairs the cell
    already_passes: bool                # no query FAILed to begin with
    fences: list[CandidateFence]
    cost: int
    optimal: bool                       # exact search proved cost-optimality
    verified_sufficient: bool           # independent concrete re-check PASSed
    verified_minimal: bool              # dropping any single fence re-FAILs
    failing_queries: list[str]
    stats: SynthesisStatistics
    notes: list[str] = field(default_factory=list)

    @property
    def labels(self) -> list[str]:
        return [fence.label for fence in self.fences]

    def as_dict(self) -> dict:
        return {
            "implementation": self.implementation,
            "test": self.test,
            "models": list(self.models),
            "feasible": self.feasible,
            "already_passes": self.already_passes,
            "fences": [
                {
                    "label": fence.label,
                    "kind": fence.kind.value,
                    "procedure": fence.procedure,
                    "slot": fence.slot,
                    "location": fence.location(),
                    "cost": fence.cost,
                }
                for fence in self.fences
            ],
            "cost": self.cost,
            "optimal": self.optimal,
            "verified_sufficient": self.verified_sufficient,
            "verified_minimal": self.verified_minimal,
            "failing_queries": list(self.failing_queries),
            "stats": self.stats.as_dict(),
            "notes": list(self.notes),
        }


# --------------------------------------------------------------- the search


class CoreGuidedSearch:
    """The assumption-driven search over one set of FAILing queries.

    Frontend-agnostic: catalog synthesis and litmus synthesis both reduce
    to "make these queries UNSAT by assuming a cheap selector subset".
    """

    def __init__(
        self,
        queries: list[_Query],
        candidates: list[CandidateFence],
        exact: bool = True,
        exact_budget: int = 60,
    ) -> None:
        self.queries = queries
        self.candidates = sorted(candidates, key=lambda c: c.label)
        self.by_label = {c.label: c for c in self.candidates}
        self.exact = exact
        self.exact_budget = exact_budget
        self.stats = SynthesisStatistics(candidates=len(self.candidates))
        #: Correction sets: every sufficient set must intersect each.
        self._correction_sets: list[frozenset[str]] = []

    # ------------------------------------------------------------- plumbing

    def _cost(self, labels) -> int:
        return sum(self.by_label[label].cost for label in labels)

    def _sufficient(self, labels) -> tuple[bool, frozenset[str]]:
        """Is the fence set sufficient (all queries UNSAT under it)?

        Returns ``(True, core)`` with the union failed-assumption core
        restricted to selector labels, or ``(False, frozenset())`` after
        recording the witness's correction set.
        """
        label_set = frozenset(labels)
        core: set[str] = set()
        for query in self.queries:
            selector_of = {
                query.selector(label): label
                for label in sorted(label_set)
                if query.selector(label) is not None
            }
            start = time.perf_counter()
            satisfiable = query.encoded.solve(
                list(query.assumptions) + sorted(selector_of)
            )
            self.stats.solve_seconds += time.perf_counter() - start
            self.stats.solves += 1
            if satisfiable:
                self._record_correction_set(query, label_set)
                return False, frozenset()
            for handle in query.encoded.failed_assumption_handles():
                label = selector_of.get(handle)
                if label is not None:
                    core.add(label)
        # A conservative backend may report an empty or assumption-free
        # core; the assumed set itself is then the sound fallback.
        return True, frozenset(core) if core else label_set

    def _record_correction_set(self, query: _Query, assumed) -> None:
        """From a SAT witness: the candidates whose selectors the witness
        runs *without*.  Any sufficient set must enable at least one of
        them (else the witness survives that set too)."""
        lowering = query.encoded.ctx.lowering
        handles = {
            label: query.selector(label) for label in self.by_label
        }
        literals = {
            label: lowering.literal(handle)
            for label, handle in handles.items()
            if handle is not None
        }
        values = query.encoded._backend.values_of(
            {abs(lit) for lit in literals.values()}
        )
        off = frozenset(
            label
            for label, lit in literals.items()
            if label not in assumed
            and not (
                values.get(abs(lit), False) if lit > 0
                else not values.get(abs(lit), False)
            )
        )
        if off and off not in self._correction_sets:
            self._correction_sets.append(off)
            self.stats.correction_sets = len(self._correction_sets)

    # --------------------------------------------------------------- phases

    def run(self) -> tuple[bool, frozenset[str], bool]:
        """Returns ``(feasible, labels, optimal)``."""
        all_labels = frozenset(self.by_label)
        sufficient, core = self._sufficient(all_labels)
        if not sufficient:
            return False, frozenset(), False
        working = core
        self.stats.core_size = len(working)
        # The core is sufficient by construction only when it came from a
        # single query; a union over several queries is re-validated (and
        # conservative cores re-validated too).
        if working != all_labels:
            ok, boosted = self._sufficient(working)
            if not ok:
                working = all_labels
            else:
                working = boosted
        working = self._destructive_deletion(working)
        optimal = False
        if self.exact:
            working, optimal = self._exact_search(working)
        canonical = self._canonicalize(working)
        if canonical != working and not optimal:
            # A swap can only make another element redundant when the set
            # was not proven cost-optimal; re-minimize in that case.
            canonical = self._destructive_deletion(canonical)
        return True, canonical, optimal

    def _destructive_deletion(self, working: frozenset[str]) -> frozenset[str]:
        """Drop candidates (most expensive first) until 1-minimal."""
        changed = True
        while changed:
            changed = False
            for candidate in sorted(
                (self.by_label[label] for label in working),
                key=lambda c: (-c.cost, c.label),
            ):
                if candidate.label not in working:
                    continue  # removed by an earlier core shrink
                trial = working - {candidate.label}
                before = self.stats.solves
                ok, core = self._sufficient(trial)
                self.stats.deletion_solves += self.stats.solves - before
                if ok:
                    shrunk = core if core and core <= trial else trial
                    changed = changed or shrunk != working
                    working = shrunk
                    changed = True
        return working

    def _canonicalize(self, working: frozenset[str]) -> frozenset[str]:
        """Deterministic tie-break among equal-cost minimal sets: replace a
        chosen fence by a lexicographically-smaller candidate of the same
        or lower cost whenever the swap stays sufficient.  Different
        backends produce different (but equally valid) SAT witnesses and
        cores, which can steer the search to different optima; this pass
        makes the final set backend-independent whenever the optima are
        connected by single swaps (the parity tests pin that).

        Replacement candidates are drawn from the correction sets the
        removed fence hits: a working swap must cover exactly what the
        removed fence covered, so it shares a correction set with it.
        """
        changed = True
        while changed:
            changed = False
            for label in sorted(working, reverse=True):
                fence = self.by_label[label]
                pool: set[str] = set()
                for correction in self._correction_sets:
                    if label in correction:
                        pool |= correction
                for other in sorted(pool):
                    if other >= label or other in working:
                        continue
                    replacement = self.by_label.get(other)
                    if replacement is None or replacement.cost > fence.cost:
                        continue
                    trial = (working - {label}) | {other}
                    before = self.stats.solves
                    ok, _ = self._sufficient(trial)
                    self.stats.canonical_solves += self.stats.solves - before
                    if ok:
                        working = trial
                        changed = True
                        break
                if changed:
                    break
        return working

    def _exact_search(
        self, upper: frozenset[str]
    ) -> tuple[frozenset[str], bool]:
        """Implicit-hitting-set escalation: prove (or improve to) the
        cheapest sufficient set, within the solve budget."""
        upper_cost = self._cost(upper)
        budget = self.exact_budget
        while budget > 0:
            hitting = self._min_cost_hitting_set(upper_cost)
            if hitting is None:
                # Every hitting set of the known correction sets costs at
                # least as much as the incumbent: the incumbent is optimal.
                return upper, True
            if frozenset(hitting) == upper:
                return upper, True
            before = self.stats.solves
            ok, core = self._sufficient(frozenset(hitting))
            spent = self.stats.solves - before
            self.stats.exact_solves += spent
            budget -= spent
            if ok:
                result = core if core and core <= frozenset(hitting) else frozenset(hitting)
                # The hitting set is a lower bound over all sufficient
                # sets; a sufficient one is therefore optimal.
                return result, True
        return upper, False

    def _min_cost_hitting_set(self, upper_cost: int) -> list[str] | None:
        """Branch-and-bound minimum-cost hitting set over the correction
        sets, strictly cheaper than ``upper_cost`` (None if impossible).
        Deterministic: sets and elements are visited in sorted order."""
        sets = [sorted(s) for s in self._correction_sets]
        sets.sort(key=lambda s: (len(s), s))
        best: list[str] | None = None
        best_cost = upper_cost  # only strictly cheaper solutions count

        def search(index: int, chosen: list[str], cost: int) -> None:
            nonlocal best, best_cost
            if cost >= best_cost:
                return
            while index < len(sets) and any(
                label in chosen for label in sets[index]
            ):
                index += 1
            if index == len(sets):
                best, best_cost = list(chosen), cost
                return
            for label in sets[index]:
                chosen.append(label)
                search(index + 1, chosen, cost + self.by_label[label].cost)
                chosen.pop()

        search(0, [], 0)
        return best


# ------------------------------------------------------------ catalog driver


def synthesize_fences(
    session,
    test,
    models,
    kinds=None,
) -> SynthesisResult:
    """Synthesize a minimal fence set turning FAILing (impl, test, model)
    cells into PASS, on a warm :class:`~repro.core.session.CheckSession`.

    ``models`` may be one model/name or a list; with several models the
    synthesized set repairs **all** of them at once (the formulas share the
    compiled instrumented test; each model gets its own incremental
    backend).
    """
    if isinstance(models, (str, MemoryModel)):
        models = [models]
    models = [get_model(model) for model in models]
    if not models:
        raise SynthesisError("synthesize_fences needs at least one model")
    options = session.options
    kinds = tuple(
        FenceKind.from_string(k) if isinstance(k, str) else k
        for k in (kinds or options.synthesis_kinds or CANDIDATE_KINDS)
    )

    # The specification comes from the *uninstrumented* program (fences are
    # no-ops under the serial model, so it would be identical anyway, but
    # the session cache makes this free across synthesize/check calls).
    specification: ObservationSet = session.specification(test)

    instrumented, candidates = instrument_program(session.program, kinds)
    if not candidates:
        raise SynthesisError(
            f"no candidate fence slots in {session.implementation.name!r} "
            "(no two accesses share a thread)"
        )
    compiled = compile_test(
        session.implementation,
        test,
        loop_bounds=options.loop_bounds,
        default_bound=options.default_loop_bound,
        use_range_analysis=options.use_range_analysis,
        program=instrumented,
    )

    queries: list[_Query] = []
    failing: list[str] = []
    probes = 0
    probe_seconds = 0.0
    for model in models:
        encoded = encode_test(
            compiled,
            model,
            backend_factory=session.backend_factory,
            dense_order=session.dense_order,
            simplify=session.simplify,
        )
        encoded.expect_enumeration()  # many solves on one formula
        candidate_queries: list[_Query] = []
        if options.check_assertions and encoded.assertions:
            violation = encoded.ctx.circuit.or_many(
                -handle for handle, _ in encoded.assertions
            )
            candidate_queries.append(
                _Query(f"{model.name}/assertion", encoded, [violation])
            )
        guard = encoded.not_in_guard(specification.observations)
        candidate_queries.append(
            _Query(f"{model.name}/inclusion", encoded, [guard])
        )
        # Baseline: with no selector assumed the solver switches every
        # candidate off, so this is exactly the plain check.  Fences only
        # remove executions, so queries that PASS bare stay PASSing under
        # any fence set and never need re-solving.
        for query in candidate_queries:
            start = time.perf_counter()
            satisfiable = query.encoded.solve(query.assumptions)
            probe_seconds += time.perf_counter() - start
            probes += 1
            if satisfiable:
                queries.append(query)
                failing.append(query.name)

    implementation = session.implementation.name
    model_names = [model.name for model in models]
    if not queries:
        stats = SynthesisStatistics(candidates=len(candidates))
        stats.solves = probes
        stats.solve_seconds = probe_seconds
        return SynthesisResult(
            implementation=implementation,
            test=test.name,
            models=model_names,
            feasible=True,
            already_passes=True,
            fences=[],
            cost=0,
            optimal=True,
            verified_sufficient=True,
            verified_minimal=True,
            failing_queries=[],
            stats=stats,
            notes=["every query already passes; no fences needed"],
        )

    search = CoreGuidedSearch(
        queries,
        candidates,
        exact=options.synthesis_exact,
        exact_budget=options.synthesis_budget,
    )
    search.stats.solves += probes
    search.stats.solve_seconds += probe_seconds
    feasible, labels, optimal = search.run()
    stats = search.stats

    if not feasible:
        return SynthesisResult(
            implementation=implementation,
            test=test.name,
            models=model_names,
            feasible=False,
            already_passes=False,
            fences=[],
            cost=0,
            optimal=False,
            verified_sufficient=False,
            verified_minimal=False,
            failing_queries=failing,
            stats=stats,
            notes=[
                "even enabling every candidate fence leaves a FAILing "
                "query: the failure is not a fence-repairable reordering "
                "(e.g. an algorithmic bug)"
            ],
        )

    fences = sorted(
        (search.by_label[label] for label in labels), key=lambda c: c.label
    )

    # Independent re-check: insert the chosen fences as *real* fences into
    # a fresh program (no selectors anywhere) and re-run both checks.
    verified_sufficient = _verify_concrete(
        session, test, models, fences, specification
    )
    # 1-minimality certificate on the warm formulas: dropping any single
    # fence must re-FAIL some query.
    verified_minimal = all(
        not search._sufficient(labels - {fence.label})[0] for fence in fences
    )

    notes = []
    if not optimal:
        notes.append(
            "exact search exhausted its budget; the set is 1-minimal but "
            "may not be cost-optimal"
        )
    return SynthesisResult(
        implementation=implementation,
        test=test.name,
        models=model_names,
        feasible=True,
        already_passes=False,
        fences=fences,
        cost=sum(fence.cost for fence in fences),
        optimal=optimal,
        verified_sufficient=verified_sufficient,
        verified_minimal=verified_minimal,
        failing_queries=failing,
        stats=search.stats,
        notes=notes,
    )


# ------------------------------------------------------------- litmus driver


def _mine_outcomes(
    compiled, model, backend_factory, dense_order, simplify
) -> set[tuple[int, ...]]:
    """All reachable observation vectors, by the solve/block loop."""
    encoded = encode_test(
        compiled,
        model,
        backend_factory=backend_factory,
        dense_order=dense_order,
        simplify=simplify,
    )
    encoded.expect_enumeration()
    outcomes: set[tuple[int, ...]] = set()
    while encoded.solve():
        observation = encoded.decode_current_observation()
        outcomes.add(observation)
        encoded.block_observation(observation)
    return outcomes


def litmus_candidates(program, kinds=CANDIDATE_KINDS) -> list[CandidateFence]:
    """The candidate fences of a fuzz litmus program, with labels matching
    :meth:`repro.fuzz.generator.FuzzProgram.compile` instrumentation."""
    candidates: list[CandidateFence] = []
    for thread_index, position in program.fence_slots():
        thread = program.threads[thread_index]
        for kind in kinds:
            candidates.append(
                CandidateFence(
                    label=f"t{thread_index}@{position}:{kind.value}",
                    procedure=f"t{thread_index}",
                    slot=position,
                    kind=kind,
                    before=thread[position - 1].spec(),
                    after=thread[position].spec(),
                )
            )
    return candidates


def placements_of(fences) -> list[tuple[int, int, FenceKind]]:
    """Map synthesized litmus candidates back to ``(thread, position,
    kind)`` placements for :meth:`FuzzProgram.with_fences`."""
    return [
        (int(fence.procedure[1:]), fence.slot, fence.kind)
        for fence in fences
    ]


def synthesize_litmus(
    program,
    models,
    kinds=None,
    backend_factory=None,
    dense_order=None,
    simplify=None,
    exact: bool = True,
    exact_budget: int = 60,
) -> SynthesisResult:
    """Synthesize a minimal fence set making a fuzz litmus program
    (:class:`repro.fuzz.generator.FuzzProgram`) SC-equivalent under every
    given model: the specification is the program's outcome set under
    ``sc``, and a fence set is sufficient when no execution under the
    model produces an outcome outside it."""
    if isinstance(models, (str, MemoryModel)):
        models = [models]
    models = [get_model(model) for model in models]
    kinds = tuple(
        FenceKind.from_string(k) if isinstance(k, str) else k
        for k in (kinds or CANDIDATE_KINDS)
    )
    sc_outcomes = _mine_outcomes(
        program.compile(), get_model("sc"),
        backend_factory, dense_order, simplify,
    )
    candidates = litmus_candidates(program, kinds)
    compiled = program.compile(candidate_kinds=kinds)
    queries: list[_Query] = []
    failing: list[str] = []
    probes = 0
    probe_seconds = 0.0
    for model in models:
        encoded = encode_test(
            compiled,
            model,
            backend_factory=backend_factory,
            dense_order=dense_order,
            simplify=simplify,
        )
        encoded.expect_enumeration()
        guard = encoded.not_in_guard(sc_outcomes)
        query = _Query(f"{model.name}/inclusion", encoded, [guard])
        start = time.perf_counter()
        satisfiable = encoded.solve([guard])
        probe_seconds += time.perf_counter() - start
        probes += 1
        if satisfiable:
            queries.append(query)
            failing.append(query.name)

    name = program.spec()
    model_names = [model.name for model in models]
    if not queries:
        stats = SynthesisStatistics(candidates=len(candidates))
        stats.solves = probes
        stats.solve_seconds = probe_seconds
        return SynthesisResult(
            implementation="fuzz",
            test=name,
            models=model_names,
            feasible=True,
            already_passes=True,
            fences=[],
            cost=0,
            optimal=True,
            verified_sufficient=True,
            verified_minimal=True,
            failing_queries=[],
            stats=stats,
            notes=["already SC-equivalent; no fences needed"],
        )
    if not candidates:
        stats = SynthesisStatistics()
        stats.solves = probes
        stats.solve_seconds = probe_seconds
        return SynthesisResult(
            implementation="fuzz",
            test=name,
            models=model_names,
            feasible=False,
            already_passes=False,
            fences=[],
            cost=0,
            optimal=False,
            verified_sufficient=False,
            verified_minimal=False,
            failing_queries=failing,
            stats=stats,
            notes=["no candidate fence slots"],
        )

    search = CoreGuidedSearch(
        queries, candidates, exact=exact, exact_budget=exact_budget
    )
    search.stats.solves += probes
    search.stats.solve_seconds += probe_seconds
    feasible, labels, optimal = search.run()
    if not feasible:
        return SynthesisResult(
            implementation="fuzz",
            test=name,
            models=model_names,
            feasible=False,
            already_passes=False,
            fences=[],
            cost=0,
            optimal=False,
            verified_sufficient=False,
            verified_minimal=False,
            failing_queries=failing,
            stats=search.stats,
            notes=["even all candidate fences leave a non-SC outcome"],
        )
    fences = sorted(
        (search.by_label[label] for label in labels), key=lambda c: c.label
    )

    # Independent re-check: real fences, fresh compile, outcome subset.
    fenced = program.with_fences(placements_of(fences))
    verified_sufficient = all(
        _mine_outcomes(
            fenced.compile(), model, backend_factory, dense_order, simplify
        ) <= sc_outcomes
        for model in models
    )
    verified_minimal = all(
        not search._sufficient(labels - {fence.label})[0] for fence in fences
    )
    notes = []
    if not optimal:
        notes.append(
            "exact search exhausted its budget; the set is 1-minimal but "
            "may not be cost-optimal"
        )
    return SynthesisResult(
        implementation="fuzz",
        test=name,
        models=model_names,
        feasible=True,
        already_passes=False,
        fences=fences,
        cost=sum(fence.cost for fence in fences),
        optimal=optimal,
        verified_sufficient=verified_sufficient,
        verified_minimal=verified_minimal,
        failing_queries=failing,
        stats=search.stats,
        notes=notes,
    )


def _verify_concrete(session, test, models, fences, specification) -> bool:
    """Re-check with the synthesized fences inserted as unconditional
    fences — entirely independent of the selector machinery."""
    from repro.core.inclusion import run_assertion_check, run_inclusion_check

    fenced_program = apply_fences(session.program, fences)
    options = session.options
    compiled = compile_test(
        session.implementation,
        test,
        loop_bounds=options.loop_bounds,
        default_bound=options.default_loop_bound,
        use_range_analysis=options.use_range_analysis,
        program=fenced_program,
    )
    for model in models:
        encoded = encode_test(
            compiled,
            model,
            backend_factory=session.backend_factory,
            dense_order=session.dense_order,
            simplify=session.simplify,
        )
        if options.check_assertions:
            outcome = run_assertion_check(
                compiled, model, specification.labels, encoded=encoded
            )
            if not outcome.passed:
                return False
        outcome = run_inclusion_check(
            compiled, model, specification, encoded=encoded
        )
        if not outcome.passed:
            return False
    return True


# ------------------------------------------------------------- fuzz smoke


@dataclass
class SmokeReport:
    """Result of a seeded fuzz-synthesis campaign."""

    budget: int
    seed: int
    checked: int = 0
    repaired: int = 0
    already_pass: int = 0
    oracle_checked: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} failure(s)"
        return (
            f"fuzz-synthesis smoke: {self.checked} programs "
            f"(seed {self.seed}); {self.repaired} repaired, "
            f"{self.already_pass} already SC-equivalent, "
            f"{self.oracle_checked} oracle-confirmed; {verdict}"
        )


def fuzz_synthesis_smoke(budget: int, seed: int, models=("relaxed",)) -> SmokeReport:
    """Synthesize fences for ``budget`` seeded random litmus programs and
    cross-check every repair: the engine's own concrete re-verification
    must certify each set sufficient and 1-minimal, and — where the
    operational oracle supports the program — the fenced program's
    outcomes under the weakest requested model must be SC outcomes of
    the original.  Drives the CI smoke lane
    (``checkfence synthesize --fuzz-budget 100 --seed 1``)."""
    from repro.fuzz.generator import FuzzProgram, generate_corpus
    from repro.oracle import enumerate_outcomes

    report = SmokeReport(budget=budget, seed=seed)
    for generated in generate_corpus(seed, budget):
        threads = tuple(
            stripped
            for thread in generated.threads
            if (stripped := tuple(op for op in thread if op.kind != "fence"))
        )
        if not threads:
            continue
        program = FuzzProgram(threads=threads)
        spec = program.spec()
        report.checked += 1
        result = synthesize_litmus(program, list(models))
        if not result.feasible:
            report.failures.append(f"{spec!r}: no repairing fence set")
            continue
        if result.already_passes:
            report.already_pass += 1
            continue
        if not (result.verified_sufficient and result.verified_minimal):
            report.failures.append(
                f"{spec!r}: re-check failed for {result.labels} "
                f"(sufficient={result.verified_sufficient}, "
                f"minimal={result.verified_minimal})"
            )
            continue
        report.repaired += 1
        reference = enumerate_outcomes(program.compile(), "sc")
        if not reference.ok:
            continue
        fenced = program.with_fences(placements_of(result.fences))
        repaired = enumerate_outcomes(fenced.compile(), models[-1])
        if not repaired.ok:
            continue
        report.oracle_checked += 1
        extra = repaired.outcomes - reference.outcomes
        if extra:
            report.failures.append(
                f"{spec!r}: oracle found non-SC outcomes {sorted(extra)} "
                f"despite fence set {result.labels}"
            )
    return report
