"""Persistent on-disk result store (verdicts and mined specifications).

Re-running an unchanged check matrix re-pays compilation, specification
mining, encoding, and solving for every cell even though nothing that
could change the answer has changed.  This module gives
:class:`~repro.core.session.CheckSession` a durable cache: one sqlite
database under ``~/.cache/checkfence`` (or ``CHECKFENCE_CACHE_DIR``)
whose cells are keyed by a **content hash** of everything a verdict
depends on —

* the implementation (name and full C source),
* the symbolic test (the same fingerprint the in-memory session caches
  use),
* the memory model name,
* the resolved check options (specification method, loop bounds, range
  analysis, assertion checking, order construction, CNF preprocessing),
* and a fingerprint of the checker's own code (every ``src/repro``
  Python file), plus :data:`CACHE_VERSION`.

Because the key is a content hash, invalidation is automatic: editing an
implementation, a test, an option, or the checker itself changes the key
and the stale cell is simply never found again (``checkfence cache
--clear`` reclaims the space).  Two cell kinds are stored: ``verdict``
(the JSON-safe essence of a :class:`~repro.core.results.CheckResult`)
and ``spec`` (a mined observation set, which is model-independent and so
saves the serial-model mining even when the verdict cell misses).

The store is **off by default** — checks are exactly as reproducible as
before unless the user opts in with ``--store`` / ``CHECKFENCE_STORE=1``
(and back out per-run with ``--no-store``).  All sqlite failures degrade
to cache misses: a corrupt or unwritable database never breaks a check.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from pathlib import Path

from repro.core import faults

#: Bumping this invalidates every existing cell (schema or semantics
#: changes that the code fingerprint cannot see, e.g. payload layout).
CACHE_VERSION = 1

_DB_NAME = "store.sqlite"

VERDICT_KIND = "verdict"
SPEC_KIND = "spec"


def store_enabled(flag: bool | None = None) -> bool:
    """Resolve the persistent-store knob: an explicit flag wins, otherwise
    the ``CHECKFENCE_STORE`` environment variable.  Unlike the other repo
    env flags this one defaults to **off** — a durable cache that outlives
    the process must be opted into, never stumbled into."""
    if flag is not None:
        return bool(flag)
    return os.environ.get("CHECKFENCE_STORE", "0") not in ("", "0")


def cache_dir() -> Path:
    """Directory holding the store database: ``CHECKFENCE_CACHE_DIR`` when
    set, else ``~/.cache/checkfence``."""
    env = os.environ.get("CHECKFENCE_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "checkfence"


_code_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hash of every Python source file under ``src/repro``, computed once
    per process.  Any checker change — encoder, solver, model semantics —
    moves every cell key, so a stale verdict can never be served."""
    global _code_fingerprint
    if _code_fingerprint is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            try:
                digest.update(path.read_bytes())
            except OSError:
                pass
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def content_key(kind: str, parts) -> str:
    """Content hash of one cell: version + code fingerprint + the
    caller-supplied key parts (any JSON-dumpable structure; non-JSON
    leaves fall back to ``repr``, which is deterministic for the
    dataclasses involved)."""
    payload = json.dumps(
        [CACHE_VERSION, code_fingerprint(), kind, parts],
        sort_keys=True, default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoredCounterexample:
    """A counterexample restored from the store.

    Only the rendered text survives persistence (the structured trace
    holds live encoder state); it quacks like
    :class:`~repro.core.counterexample.CounterexampleTrace` for every
    reporting path, which only ever calls :meth:`format`.
    """

    def __init__(self, text: str) -> None:
        self.text = text

    def format(self) -> str:
        return self.text


class VerdictStore:
    """The sqlite-backed cell store.

    Connections are opened lazily and re-opened after ``fork`` (matrix
    workers inherit the store object but must not share a connection);
    WAL journaling lets several workers read and write concurrently.
    Every sqlite error marks the store broken for this process and turns
    all further operations into cache misses / no-ops.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else cache_dir() / _DB_NAME
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        self._broken = False

    # ----------------------------------------------------------- connection

    def _connection(self) -> sqlite3.Connection | None:
        if self._broken:
            return None
        pid = os.getpid()
        if self._conn is not None and self._pid == pid:
            return self._conn
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            # The connect timeout only covers Python-level lock waits;
            # busy_timeout makes sqlite itself retry a locked database
            # instead of raising "database is locked" when several matrix
            # workers share one --store.
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS cells ("
                "key TEXT PRIMARY KEY, "
                "kind TEXT NOT NULL, "
                "payload TEXT NOT NULL, "
                "created REAL NOT NULL)"
            )
            conn.commit()
        except sqlite3.Error:
            self._broken = True
            return None
        self._conn = conn
        self._pid = pid
        return conn

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None
        self._pid = None

    # ----------------------------------------------------------- cell access

    def get(self, key: str) -> dict | None:
        conn = self._connection()
        if conn is None:
            return None
        try:
            if faults.store_io_active():
                raise sqlite3.OperationalError("injected store I/O fault")
            row = conn.execute(
                "SELECT payload FROM cells WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            self._broken = True
            return None
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None

    def put(self, key: str, kind: str, payload: dict) -> None:
        conn = self._connection()
        if conn is None:
            return
        try:
            if faults.store_io_active():
                raise sqlite3.OperationalError("injected store I/O fault")
            conn.execute(
                "INSERT OR REPLACE INTO cells (key, kind, payload, created) "
                "VALUES (?, ?, ?, ?)",
                (key, kind, json.dumps(payload, sort_keys=True), time.time()),
            )
            conn.commit()
        except sqlite3.Error:
            self._broken = True

    # ------------------------------------------------------- administration

    def stats(self) -> dict:
        """Size and per-kind cell counts, for ``checkfence cache``."""
        out = {
            "path": str(self.path),
            "exists": self.path.exists(),
            "size_bytes": 0,
            "cells": 0,
            "kinds": {},
        }
        if not out["exists"]:
            return out
        try:
            out["size_bytes"] = self.path.stat().st_size
        except OSError:
            pass
        conn = self._connection()
        if conn is None:
            return out
        try:
            for kind, count in conn.execute(
                "SELECT kind, COUNT(*) FROM cells GROUP BY kind"
            ):
                out["kinds"][kind] = count
                out["cells"] += count
        except sqlite3.Error:
            self._broken = True
        return out

    def clear(self) -> int:
        """Delete the database (including WAL side files); returns how many
        cells were removed."""
        removed = self.stats()["cells"]
        self.close()
        for suffix in ("", "-wal", "-shm"):
            try:
                Path(str(self.path) + suffix).unlink()
            except OSError:
                pass
        self._broken = False
        return removed


def open_store(
    flag: bool | None = None, path: str | os.PathLike | None = None
) -> VerdictStore | None:
    """A :class:`VerdictStore` when the knob resolves on, else ``None``."""
    return VerdictStore(path) if store_enabled(flag) else None


# ------------------------------------------------------------ serialization


def result_payload(result) -> dict:
    """The JSON-safe essence of a :class:`~repro.core.results.CheckResult`.

    The mined specification is not embedded (it has its own cell) and the
    counterexample survives only as its rendered text.
    """
    return {
        "passed": result.passed,
        "notes": list(result.notes),
        "loop_bounds": dict(result.loop_bounds),
        "counterexample": (
            result.counterexample.format()
            if result.counterexample is not None
            else ""
        ),
        "stats": dataclasses.asdict(result.stats),
    }


def restore_result(payload: dict):
    """Rebuild a :class:`~repro.core.results.CheckResult` from a stored
    payload.  Unknown stats fields (from an older code version that
    somehow shares a key — impossible in practice, cheap to guard) are
    dropped rather than crashing."""
    from repro.core.results import CheckResult, CheckStatistics

    known = {f.name for f in dataclasses.fields(CheckStatistics)}
    stats = CheckStatistics(**{
        name: value
        for name, value in payload.get("stats", {}).items()
        if name in known
    })
    stats.store_hit = True
    text = payload.get("counterexample", "")
    return CheckResult(
        passed=payload["passed"],
        implementation=stats.implementation,
        test=stats.test,
        memory_model=stats.memory_model,
        specification=None,
        counterexample=StoredCounterexample(text) if text else None,
        stats=stats,
        loop_bounds=dict(payload.get("loop_bounds", {})),
        notes=list(payload.get("notes", [])),
    )


def spec_payload(spec) -> dict:
    """The JSON-safe form of an
    :class:`~repro.core.specification.ObservationSet`."""
    return {
        "labels": list(spec.labels),
        "observations": sorted(list(o) for o in spec.observations),
        "method": spec.method,
        "mining_seconds": spec.mining_seconds,
        "solver_iterations": spec.solver_iterations,
    }


def restore_spec(payload: dict):
    """Rebuild an :class:`~repro.core.specification.ObservationSet`."""
    from repro.core.specification import ObservationSet

    return ObservationSet(
        labels=list(payload["labels"]),
        observations={tuple(o) for o in payload["observations"]},
        mining_seconds=payload.get("mining_seconds", 0.0),
        method=payload.get("method", "reference"),
        solver_iterations=payload.get("solver_iterations", 0),
    )
