"""Resource governance: wall-clock deadlines and memory budgets.

The paper's own experiments ran into this wall — SAT checking of the
large Fig. 8 tests ran for hours and some configurations never finished
— and the underlying consistency problem is NP-hard in general, so some
cells *will* blow up.  This module gives every long-running loop in the
pipeline a single cheap question to ask ("am I out of budget?") and a
single pair of exceptions to raise when the answer is yes, so a blown-up
cell degrades to an explicit ``TIMEOUT``/``OOM`` verdict instead of
hanging a worker.

Design:

* :class:`Deadline` carries an absolute monotonic expiry plus an
  optional resident-set cap.  ``check()`` raises
  :class:`TimeoutExceeded` / :class:`MemoryExceeded`; callers poll it at
  their existing gas-counter sites (every N conflicts, per mining
  iteration, per enumerated node, ...), so the overhead is a masked
  ``time.monotonic()`` compare.
* A process-local *active deadline* scope (:func:`deadline_scope`)
  decouples the polling sites from the plumbing: the session (or the
  matrix cell runner) establishes the scope once, and deep loops call
  the module-level :func:`check_deadline` without threading a parameter
  through a dozen signatures.  :func:`ensure_scope` lets nested layers
  establish a scope from :class:`~repro.core.checker.CheckOptions`
  without clobbering an ambient one, so a matrix worker's per-cell
  deadline wins over the session's own.
* Memory is judged by *current* RSS (``/proc/self/statm``), not
  ``ru_maxrss`` — the peak never decreases, so a budget based on it
  would poison every cell after the first big one.  On platforms
  without procfs the memory cap silently degrades to "unenforced".

Degraded verdicts (``TIMEOUT``, ``OOM``, and the matrix-level
``CRASHED``) are first-class but *never* cached: a deadline is a
property of one run, not of the (program, test, model) triple.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Optional

# Environment fallbacks: CLI flags take precedence, but CI jobs and the
# chaos harness set blanket limits without touching every command line.
TIMEOUT_ENV = "CHECKFENCE_TIMEOUT"
MEMORY_LIMIT_ENV = "CHECKFENCE_MEMORY_LIMIT"

# Degraded verdict labels, shared by results/matrix/reporting so string
# comparisons are typo-proof.
TIMEOUT = "TIMEOUT"
OOM = "OOM"
CRASHED = "CRASHED"
DEGRADED_VERDICTS = frozenset({TIMEOUT, OOM, CRASHED})


class LimitExceeded(Exception):
    """Base class for budget breaches.  ``kind`` is the verdict label."""

    kind = "LIMIT"


class TimeoutExceeded(LimitExceeded):
    kind = TIMEOUT


class MemoryExceeded(LimitExceeded):
    kind = OOM


_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_STATM_PATH = "/proc/self/statm"
_HAVE_STATM = os.path.exists(_STATM_PATH)


def current_rss_bytes() -> Optional[int]:
    """Resident set size right now, or ``None`` where unreadable."""
    if not _HAVE_STATM:
        return None
    try:
        with open(_STATM_PATH, "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class Deadline:
    """A wall-clock expiry plus an optional resident-memory cap.

    ``timeout_seconds=None`` means "no wall-clock limit"; likewise for
    ``memory_limit_mb``.  A Deadline with neither is inert (``check()``
    is a no-op) — callers may still create one for uniformity.
    """

    __slots__ = ("timeout_seconds", "memory_limit_mb", "_expires_at",
                 "_memory_limit_bytes")

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        *,
        started_at: Optional[float] = None,
    ) -> None:
        self.timeout_seconds = timeout_seconds
        self.memory_limit_mb = memory_limit_mb
        if timeout_seconds is None:
            self._expires_at = None
        else:
            base = time.monotonic() if started_at is None else started_at
            self._expires_at = base + max(0.0, timeout_seconds)
        if memory_limit_mb is None:
            self._memory_limit_bytes = None
        else:
            self._memory_limit_bytes = int(memory_limit_mb * 1024 * 1024)

    @property
    def enforced(self) -> bool:
        return self._expires_at is not None or \
            self._memory_limit_bytes is not None

    def remaining(self) -> Optional[float]:
        """Seconds until expiry (>= 0), or ``None`` with no time limit."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return self._expires_at is not None and \
            time.monotonic() >= self._expires_at

    def memory_exceeded(self) -> bool:
        if self._memory_limit_bytes is None:
            return False
        rss = current_rss_bytes()
        return rss is not None and rss > self._memory_limit_bytes

    def check(self) -> None:
        """Raise :class:`TimeoutExceeded` / :class:`MemoryExceeded`."""
        if self.expired():
            raise TimeoutExceeded(
                f"deadline exceeded ({self.timeout_seconds:g}s wall-clock"
                " limit)"
            )
        if self.memory_exceeded():
            raise MemoryExceeded(
                f"memory limit exceeded ({self.memory_limit_mb:g} MB"
                " resident cap)"
            )


# --------------------------------------------------------------------------
# Active-deadline scope.  Matrix workers are processes, the CLI is
# single-threaded, so a plain module-level stack suffices; the stack
# discipline (scopes strictly nest) keeps it correct even under the
# session's internal re-entrancy.

_ACTIVE: list[Deadline] = []


def active_deadline() -> Optional[Deadline]:
    return _ACTIVE[-1] if _ACTIVE else None


def check_deadline() -> None:
    """Cheap poll for deep loops: no-op when no deadline is in scope."""
    if _ACTIVE:
        _ACTIVE[-1].check()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the active one for the dynamic extent.

    ``None`` (or an inert deadline) installs nothing, so call sites can
    pass through whatever they computed without branching.
    """
    if deadline is None or not deadline.enforced:
        yield None
        return
    _ACTIVE.append(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.pop()


def deadline_from_options(options) -> Optional[Deadline]:
    """Build a Deadline from CheckOptions + environment fallbacks."""
    timeout = getattr(options, "timeout", None)
    if timeout is None:
        timeout = _env_float(TIMEOUT_ENV)
    memory = getattr(options, "memory_limit_mb", None)
    if memory is None:
        memory = _env_float(MEMORY_LIMIT_ENV)
    if timeout is None and memory is None:
        return None
    return Deadline(timeout_seconds=timeout, memory_limit_mb=memory)


@contextmanager
def ensure_scope(options) -> Iterator[Optional[Deadline]]:
    """Yield the ambient deadline, or establish one from ``options``.

    The outermost budget wins: when a matrix cell runner already set a
    per-cell deadline, a nested ``CheckSession.check`` must not replace
    it with a fresh (later-expiring) one.
    """
    ambient = active_deadline()
    if ambient is not None:
        yield ambient
        return
    with deadline_scope(deadline_from_options(options)) as deadline:
        yield deadline
