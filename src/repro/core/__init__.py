"""The checker itself: specification mining, inclusion check, counterexamples."""

from repro.core.checker import CheckFence, CheckOptions, check
from repro.core.commitpoint import CommitPointResult, run_commit_point_check
from repro.core.counterexample import CounterexampleTrace, TraceStep, build_trace
from repro.core.inclusion import (
    InclusionOutcome,
    run_assertion_check,
    run_inclusion_check,
)
from repro.core.loop_bounds import LoopBoundResult, refine_loop_bounds
from repro.core.results import CheckResult, CheckStatistics
from repro.core.session import CheckSession
from repro.core.specification import (
    ObservationSet,
    ReferenceSpecificationMiner,
    SatSpecificationMiner,
    SpecificationError,
    interleavings,
    mine_specification,
)

__all__ = [
    "CheckFence",
    "CheckOptions",
    "check",
    "CommitPointResult",
    "run_commit_point_check",
    "CounterexampleTrace",
    "TraceStep",
    "build_trace",
    "InclusionOutcome",
    "run_assertion_check",
    "run_inclusion_check",
    "LoopBoundResult",
    "refine_loop_bounds",
    "CheckResult",
    "CheckStatistics",
    "CheckSession",
    "ObservationSet",
    "ReferenceSpecificationMiner",
    "SatSpecificationMiner",
    "SpecificationError",
    "interleavings",
    "mine_specification",
]
