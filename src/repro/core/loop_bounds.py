"""Lazy loop unrolling (Section 3.3).

Loops are first unrolled once; the checker then solves specifically for
executions that would exceed the bounds (the unroller's overflow flags).  If
such an execution exists, the bound of every affected loop instance is
incremented and the procedure repeats; otherwise the bounds are known to be
sufficient and the regular check can proceed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datatypes.spec import DataTypeImplementation
from repro.encoding.formula import encode_test
from repro.encoding.testprogram import CompiledTest, compile_test
from repro.lsl.program import Program, SymbolicTest
from repro.memorymodel.base import MemoryModel
from repro.sat.backend import BackendFactory


@dataclass
class LoopBoundResult:
    """Outcome of the bound-refinement procedure."""

    compiled: CompiledTest
    bounds: dict[str, int] = field(default_factory=dict)
    refinement_rounds: int = 0
    seconds: float = 0.0
    converged: bool = True


def refine_loop_bounds(
    implementation: DataTypeImplementation,
    test: SymbolicTest,
    model: MemoryModel,
    initial_bound: int = 1,
    max_rounds: int = 6,
    max_bound: int = 8,
    program: Program | None = None,
    use_range_analysis: bool = True,
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> LoopBoundResult:
    """Find loop bounds sufficient for all executions of ``test``."""
    start = time.perf_counter()
    bounds: dict[str, int] = {}
    rounds = 0
    converged = False
    compiled = None
    while rounds < max_rounds:
        rounds += 1
        compiled = compile_test(
            implementation,
            test,
            loop_bounds=bounds,
            default_bound=initial_bound,
            overflow="flag",
            use_range_analysis=use_range_analysis,
            program=program,
        )
        encoded = encode_test(
            compiled, model, backend_factory=backend_factory,
            dense_order=dense_order, simplify=simplify,
        )
        if not encoded.overflow_handles:
            converged = True
            break
        some_overflow = encoded.ctx.circuit.or_many(
            encoded.overflow_handles.values()
        )
        if not encoded.solve(assumptions=[some_overflow]):
            converged = True
            break
        # Increase the bound of every loop whose flag is set in the model.
        model_values = encoded.model_values()
        grew = False
        for key, handle in encoded.overflow_handles.items():
            if encoded.ctx.lowering.evaluate(handle, model_values):
                tag = key.split(":", 1)[1]
                current = bounds.get(tag, initial_bound)
                if current < max_bound:
                    bounds[tag] = current + 1
                    grew = True
        if not grew:
            break
    assert compiled is not None
    return LoopBoundResult(
        compiled=compiled,
        bounds=dict(bounds),
        refinement_rounds=rounds,
        seconds=time.perf_counter() - start,
        converged=converged,
    )
