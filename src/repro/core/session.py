"""Incremental check sessions.

A :class:`CheckSession` owns the state that is expensive to rebuild and
profitable to share across checks of one implementation:

* the lowered LSL program (compiled once per session);
* compiled tests (inline + unroll + analyze), keyed so that a sweep of the
  same test over several memory models compiles once;
* mined specifications (one observation set per test, regardless of how
  many models the test is later checked under);
* encoded tests and their solver backend, keyed by (test, model), so the
  assertion query and the inclusion query of one check share one
  incremental solver and its learned clauses.  The inclusion query adds
  permanent blocking clauses (measurably stronger than guard-literal
  variants), so the session evicts the encoding afterwards rather than let
  a later assertion query run on the contaminated formula.

:class:`repro.core.checker.CheckFence` is now a thin facade over a session;
use a session directly (or :meth:`CheckSession.sweep`) when checking one
test under several memory models, as ``harness.runner`` does.  Sessions
are also the unit of warmth in the parallel check matrix
(:mod:`repro.harness.matrix`): each worker process keeps one session per
implementation and batches cells so the compile/mine caches hit.
"""

from __future__ import annotations

import sys
import time

from repro.core import limits
from repro.core import store as result_store
from repro.core.inclusion import run_assertion_check, run_inclusion_check
from repro.core.loop_bounds import refine_loop_bounds
from repro.core.results import CheckResult, CheckStatistics, profile_enabled
from repro.core.specification import ObservationSet, mine_specification
from repro.datatypes.spec import DataTypeImplementation
from repro.encoding.formula import EncodedTest, encode_test, share_encode_enabled
from repro.encoding.memory import dense_order_enabled
from repro.sat.simplify import simplify_enabled
from repro.encoding.testprogram import CompiledTest, compile_test
from repro.lang.lower import compile_c
from repro.lsl.program import Program, SymbolicTest
from repro.memorymodel.base import MemoryModel, get_model
from repro.sat.backend import make_backend_factory
from repro.sat.solver import SolverStats


class CheckSession:
    """Caches and incremental solver state for checking one implementation."""

    def __init__(
        self,
        implementation: DataTypeImplementation,
        options=None,
    ) -> None:
        # Imported here to avoid a cycle: checker imports this module.
        from repro.core.checker import CheckOptions

        self.implementation = implementation
        self.options = options if options is not None else CheckOptions()
        self.program: Program = compile_c(
            implementation.source, implementation.name
        )
        self.backend_factory = make_backend_factory(self.options.solver_backend)
        #: Memory-order construction, resolved once (option wins, then the
        #: CHECKFENCE_DENSE_ORDER environment variable) so every encoding
        #: and cache key of this session agrees.
        self.dense_order = dense_order_enabled(self.options.dense_order)
        #: CNF preprocessing, resolved once (option wins, then the
        #: CHECKFENCE_SIMPLIFY environment variable) for the same reason.
        self.simplify = simplify_enabled(self.options.simplify)
        #: Encoding-skeleton reuse, resolved once like the knobs above.
        self.share_encode = share_encode_enabled(self.options.share_encode)
        #: Persistent on-disk store (None when disabled — the default).
        self.store = result_store.open_store(self.options.store)
        self._compiled: dict[tuple, CompiledTest] = {}
        self._specifications: dict[tuple, ObservationSet] = {}
        self._encoded: dict[tuple, EncodedTest] = {}
        #: How often each cacheable stage actually ran (observability for
        #: sweeps and tests of the reuse behavior).  ``store_hits`` /
        #: ``store_misses`` count persistent-store lookups (verdict and
        #: specification cells) and stay zero while the store is off.
        self.cache_stats = {
            "compile": 0, "compile_hits": 0,
            "mine": 0, "mine_hits": 0,
            "encode": 0, "encode_hits": 0,
            "store_hits": 0, "store_misses": 0,
        }

    # ------------------------------------------------------------- pipeline

    @staticmethod
    def _test_key(test: SymbolicTest) -> tuple:
        """Content fingerprint of a test, so two distinct tests that happen
        to share a name are never conflated by the caches (Invocation and
        its fields have deterministic dataclass reprs)."""
        return (test.name, repr(test.init), repr(test.threads))

    # ------------------------------------------------------ persistent store

    def _options_fingerprint(self) -> list:
        """The option values a verdict (or mined specification) depends on.

        The solver backend and the encode-sharing knob are deliberately
        excluded: both are verdict-preserving by construction and gated so
        differentially in CI, and keying on them would make a store
        populated under one backend useless under another.  The resource
        budgets (``timeout`` / ``memory_limit_mb``) are excluded too: a
        completed verdict does not depend on the budget it ran under, and
        degraded results are never stored in the first place.
        """
        options = self.options
        return [
            options.specification_method,
            options.default_loop_bound,
            sorted((options.loop_bounds or {}).items()),
            options.lazy_loop_bounds,
            options.use_range_analysis,
            options.check_assertions,
            self.dense_order,
            self.simplify,
        ]

    def _store_key(self, kind: str, test: SymbolicTest, model_name) -> str:
        return result_store.content_key(kind, [
            self.implementation.name,
            self.implementation.source,
            list(self._test_key(test)),
            model_name,
            self._options_fingerprint(),
        ])

    def compile(self, test: SymbolicTest, model: MemoryModel | str) -> CompiledTest:
        """Compile (inline + unroll + analyze) a test, honoring the options.

        Compilation is model-independent unless lazy loop-bound refinement
        is on (the refinement solves under the model), so the cache key only
        includes the model in that case and a cross-model sweep compiles the
        test exactly once.
        """
        model = get_model(model)
        key = (
            self._test_key(test),
            model.name if self.options.lazy_loop_bounds else None,
        )
        cached = self._compiled.get(key)
        if cached is not None:
            self.cache_stats["compile_hits"] += 1
            return cached
        self.cache_stats["compile"] += 1
        compiled = self._compile_uncached(test, model)
        self._compiled[key] = compiled
        return compiled

    def _compile_uncached(
        self, test: SymbolicTest, model: MemoryModel
    ) -> CompiledTest:
        if self.options.lazy_loop_bounds:
            refined = refine_loop_bounds(
                self.implementation,
                test,
                model,
                initial_bound=self.options.default_loop_bound
                or self.implementation.default_loop_bound,
                program=self.program,
                use_range_analysis=self.options.use_range_analysis,
                backend_factory=self.backend_factory,
                dense_order=self.dense_order,
                simplify=self.simplify,
            )
            merged = dict(refined.bounds)
            if self.options.loop_bounds:
                merged.update(self.options.loop_bounds)
            return compile_test(
                self.implementation,
                test,
                loop_bounds=merged,
                default_bound=self.options.default_loop_bound,
                use_range_analysis=self.options.use_range_analysis,
                program=self.program,
            )
        return compile_test(
            self.implementation,
            test,
            loop_bounds=self.options.loop_bounds,
            default_bound=self.options.default_loop_bound,
            use_range_analysis=self.options.use_range_analysis,
            program=self.program,
        )

    def specification(
        self, test: SymbolicTest, compiled: CompiledTest | None = None
    ) -> ObservationSet:
        """Mine (and cache) the observation set of a test.

        The specification only depends on the test and the implementation —
        never on the memory model under check — so a sweep mines it once.
        """
        key = self._test_key(test)
        cached = self._specifications.get(key)
        if cached is not None:
            self.cache_stats["mine_hits"] += 1
            return cached
        store_key = None
        if self.store is not None:
            # The spec cell is model-independent (mined under the serial
            # model whatever the check's model is), so it saves the mining
            # even when the verdict cell of a new model misses.
            store_key = self._store_key(result_store.SPEC_KIND, test, None)
            payload = self.store.get(store_key)
            if payload is not None:
                self.cache_stats["store_hits"] += 1
                spec = result_store.restore_spec(payload)
                self._specifications[key] = spec
                return spec
            self.cache_stats["store_misses"] += 1
        self.cache_stats["mine"] += 1
        if compiled is None:
            compiled = self.compile(test, "serial")
        spec = mine_specification(
            compiled,
            self.options.specification_method,
            backend_factory=self.backend_factory,
            dense_order=self.dense_order,
            simplify=self.simplify,
        )
        self._specifications[key] = spec
        if store_key is not None:
            self.store.put(
                store_key, result_store.SPEC_KIND,
                result_store.spec_payload(spec),
            )
        return spec

    def encoded(self, test: SymbolicTest, model: MemoryModel | str) -> EncodedTest:
        """The encoded formula (and its live solver backend) for a pair."""
        model = get_model(model)
        key = self._encoded_key(test, model)
        cached = self._encoded.get(key)
        if cached is not None:
            self.cache_stats["encode_hits"] += 1
            return cached
        self.cache_stats["encode"] += 1
        compiled = self.compile(test, model)
        encoded = encode_test(
            compiled,
            model,
            backend_factory=self.backend_factory,
            dense_order=self.dense_order,
            simplify=self.simplify,
            share_encode=self.share_encode,
        )
        self._encoded[key] = encoded
        return encoded

    def _encoded_key(self, test: SymbolicTest, model: MemoryModel) -> tuple:
        """Cache key of an encoded formula: the order construction, the
        simplification knob, and the encode-sharing knob are part of the
        key, so encodings built under different settings never alias even
        if the environment flips mid-session."""
        return (
            self._test_key(test), model.name, self.dense_order, self.simplify,
            self.share_encode,
        )

    # ---------------------------------------------------------------- check

    def check(self, test: SymbolicTest, memory_model: MemoryModel | str) -> CheckResult:
        """Run the full check of Fig. 1 for one test and memory model.

        With the persistent store enabled, a verdict cell whose content
        key matches (implementation source, test, model, options, checker
        code version) short-circuits the whole pipeline — no compile, no
        mining, no solving; the restored result carries the original
        run's statistics plus ``stats.store_hit``.

        A wall-clock or memory budget (``options.timeout`` /
        ``options.memory_limit_mb``, or an ambient matrix per-cell
        deadline) turns a blown-up check into a degraded ``TIMEOUT`` /
        ``OOM`` result instead of an unbounded run.  Degraded results are
        never written to the store — a budget breach describes this run,
        not the (implementation, test, model) triple.
        """
        model = get_model(memory_model)
        total_start = time.perf_counter()
        store_key = None
        if self.store is not None:
            store_key = self._store_key(
                result_store.VERDICT_KIND, test, model.name
            )
            payload = self.store.get(store_key)
            if payload is not None:
                self.cache_stats["store_hits"] += 1
                result = result_store.restore_result(payload)
                result.stats.total_seconds = time.perf_counter() - total_start
                if profile_enabled():
                    print(result.stats.profile_line(), file=sys.stderr)
                return result
            self.cache_stats["store_misses"] += 1
        with limits.ensure_scope(self.options):
            try:
                result = self._check_pipeline(test, model, total_start)
            except limits.LimitExceeded as exc:
                # The encoding (and its backend, possibly a killed external
                # process) is contaminated mid-query; evict so a retry
                # rebuilds from scratch.
                self._encoded.pop(self._encoded_key(test, model), None)
                result = self._degraded_result(test, model, exc, total_start)
        if store_key is not None and not result.degraded:
            self.store.put(
                store_key, result_store.VERDICT_KIND,
                result_store.result_payload(result),
            )
        if profile_enabled():
            print(result.stats.profile_line(), file=sys.stderr)
        return result

    def _degraded_result(
        self, test: SymbolicTest, model: MemoryModel, exc, total_start: float
    ) -> CheckResult:
        stats = CheckStatistics(
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
        )
        stats.degraded = exc.kind
        stats.total_seconds = time.perf_counter() - total_start
        return CheckResult(
            passed=False,
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
            stats=stats,
            notes=[str(exc)],
            degraded=exc.kind,
        )

    def _check_pipeline(
        self, test: SymbolicTest, model: MemoryModel, total_start: float
    ) -> CheckResult:
        # Phase-boundary polls: the loops inside each phase poll on their
        # own gas counters, but a budget that expires between phases (or
        # during an unpolled stretch like C compilation) must still stop
        # the check at the next seam.
        compiled = self.compile(test, model)
        compile_seconds = time.perf_counter() - total_start
        limits.check_deadline()
        specification = self.specification(test, compiled=compiled)
        limits.check_deadline()
        encoded = self.encoded(test, model)
        limits.check_deadline()

        stats = CheckStatistics(
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
        )
        stats.compile_seconds = compile_seconds
        stats.merge_encoding(encoded.stats)
        stats.simplify = self.simplify
        stats.observation_set_size = len(specification)
        stats.mining_seconds = specification.mining_seconds
        solver_before = (
            encoded.solver_stats.copy()
            if encoded.solver_stats is not None
            else SolverStats()
        )

        counterexample = None
        notes: list[str] = []
        passed = True

        if self.options.check_assertions:
            assertion_outcome = run_assertion_check(
                compiled, model, specification.labels, encoded=encoded
            )
            stats.solve_seconds += assertion_outcome.solve_seconds
            if not assertion_outcome.passed:
                passed = False
                counterexample = assertion_outcome.counterexample
                notes.append("an assertion in the implementation can fail")

        if passed:
            # The inclusion check adds permanent blocking clauses, so this
            # encoding must not serve another assertion query: evict it even
            # if the solve fails mid-way (e.g. an external backend error).
            try:
                inclusion_outcome = run_inclusion_check(
                    compiled, model, specification, encoded=encoded
                )
            finally:
                self._encoded.pop(self._encoded_key(test, model), None)
            stats.solve_seconds += inclusion_outcome.solve_seconds
            if not inclusion_outcome.passed:
                passed = False
                counterexample = inclusion_outcome.counterexample
                notes.append(
                    "an execution is not observationally equivalent to any "
                    "serial execution"
                )

        final_solver_stats = encoded.solver_stats
        stats.merge_solver(
            final_solver_stats.since(solver_before)
            if final_solver_stats is not None
            else None,
            encoded.backend_name,
        )
        stats.total_seconds = time.perf_counter() - total_start

        return CheckResult(
            passed=passed,
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
            specification=specification,
            counterexample=counterexample,
            stats=stats,
            loop_bounds=dict(compiled.loop_bounds),
            notes=notes,
        )

    def sweep(
        self,
        test: SymbolicTest,
        memory_models,
    ) -> list[CheckResult]:
        """Check one test under several memory models.

        The test is compiled once and its specification mined once; each
        model gets its own encoded formula and incremental backend.
        """
        return [self.check(test, model) for model in memory_models]

    # ----------------------------------------------------------- synthesis

    def synthesize(self, test: SymbolicTest, memory_models, kinds=None):
        """Synthesize a minimal fence set that makes ``test`` PASS under
        every model in ``memory_models`` (see
        :func:`repro.core.synthesize.synthesize_fences`).  Runs warm: the
        mined specification is shared with :meth:`check` via the session
        cache, and the whole search reuses one incremental backend per
        model."""
        # Imported here to avoid a cycle: synthesize drives sessions.
        from repro.core.synthesize import synthesize_fences

        return synthesize_fences(self, test, memory_models, kinds=kinds)
