"""Unified fault injection for robustness testing.

One environment variable, ``CHECKFENCE_FAULT``, carries a
comma-separated list of fault directives that the chaos CI job and the
test suite use to exercise the failure paths deterministically:

``worker-crash:<cell-key>[:<n>]``
    A matrix worker handed a shard containing the cell hard-exits
    (``os._exit``) instead of checking it — but only while the shard's
    attempt number is below *n* (default 1), so with the default retry
    budget the parent re-queues the shard and the retried run succeeds,
    which is exactly the verdict-identity property the chaos job gates.
``worker-hang:<cell-key>[:<n>]``
    The worker ignores SIGTERM and sleeps instead of checking the
    shard, again only below attempt *n*.  Exercises the parent's hung-
    worker watchdog and the terminate→kill teardown escalation.
``interrupt:<cell-key>``
    The *parent* raises :class:`KeyboardInterrupt` the moment the
    cell's result is recorded, exactly as if the user hit Ctrl-C then.
``cell-timeout:<cell-key>``
    The cell runs under an already-expired deadline, forcing a
    ``TIMEOUT`` verdict without waiting for real wall-clock to pass.
``solver-raise:<n>``
    The *n*-th backend ``solve()`` call in this process raises
    ``RuntimeError`` (several ``solver-raise`` directives arm several
    counts).  Exercises the error-containment paths around solving.
``store-io``
    Every :mod:`repro.core.store` sqlite operation fails as if the
    database file were unreadable; the store must degrade to misses,
    never crash a check.

The legacy hooks ``CHECKFENCE_MATRIX_CRASH`` / ``CHECKFENCE_MATRIX_INTERRUPT``
(comma-separated cell keys) are folded into the parsed set as
``worker-crash:<key>:<huge>`` / ``interrupt:<key>`` so existing callers
keep their always-crash semantics.

Parsing is memoised on the raw environment strings: call sites poll
helpers like :func:`crash_attempts` freely without re-splitting on every
shard.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

FAULT_ENV = "CHECKFENCE_FAULT"
LEGACY_CRASH_ENV = "CHECKFENCE_MATRIX_CRASH"
LEGACY_INTERRUPT_ENV = "CHECKFENCE_MATRIX_INTERRUPT"

#: Attempt bound used for the legacy always-crash hooks.
_ALWAYS = 1_000_000


@dataclass(frozen=True)
class Fault:
    kind: str
    arg: str = ""
    count: int = 1


def parse_faults(value: str) -> tuple[Fault, ...]:
    """Parse a ``CHECKFENCE_FAULT`` directive list.

    Unknown directives raise :class:`ValueError` so a typo in a CI job
    fails loudly instead of silently injecting nothing.
    """
    faults: list[Fault] = []
    for chunk in value.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition(":")
        if kind in ("worker-crash", "worker-hang"):
            arg, _, count_text = rest.rpartition(":")
            if arg and count_text.isdigit():
                count = int(count_text)
            else:
                arg, count = rest, 1
            if not arg:
                raise ValueError(f"{kind} fault needs a cell key: {chunk!r}")
            faults.append(Fault(kind, arg, count))
        elif kind in ("interrupt", "cell-timeout"):
            if not rest:
                raise ValueError(f"{kind} fault needs a cell key: {chunk!r}")
            faults.append(Fault(kind, rest))
        elif kind == "solver-raise":
            if not rest.isdigit() or int(rest) < 1:
                raise ValueError(
                    f"solver-raise fault needs a positive call number:"
                    f" {chunk!r}"
                )
            faults.append(Fault(kind, count=int(rest)))
        elif kind == "store-io":
            if rest:
                raise ValueError(f"store-io fault takes no argument: {chunk!r}")
            faults.append(Fault(kind))
        else:
            raise ValueError(f"unknown fault directive: {chunk!r}")
    return tuple(faults)


_cache_key: Optional[tuple[str, str, str]] = None
_cache_value: tuple[Fault, ...] = ()


def active_faults() -> tuple[Fault, ...]:
    """The faults currently requested by the environment."""
    global _cache_key, _cache_value
    raw = os.environ.get(FAULT_ENV, "")
    legacy_crash = os.environ.get(LEGACY_CRASH_ENV, "")
    legacy_interrupt = os.environ.get(LEGACY_INTERRUPT_ENV, "")
    key = (raw, legacy_crash, legacy_interrupt)
    if key == _cache_key:
        return _cache_value
    faults = list(parse_faults(raw))
    for cell_key in legacy_crash.split(","):
        if cell_key:
            faults.append(Fault("worker-crash", cell_key, _ALWAYS))
    for cell_key in legacy_interrupt.split(","):
        if cell_key:
            faults.append(Fault("interrupt", cell_key))
    _cache_key, _cache_value = key, tuple(faults)
    return _cache_value


def _attempt_map(kind: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for fault in active_faults():
        if fault.kind == kind:
            out[fault.arg] = max(out.get(fault.arg, 0), fault.count)
    return out


def crash_attempts() -> dict[str, int]:
    """Cell key -> crash while ``shard.attempt <`` this bound."""
    return _attempt_map("worker-crash")


def hang_attempts() -> dict[str, int]:
    """Cell key -> hang while ``shard.attempt <`` this bound."""
    return _attempt_map("worker-hang")


def interrupt_cells() -> set[str]:
    return {f.arg for f in active_faults() if f.kind == "interrupt"}


def timeout_cells() -> set[str]:
    return {f.arg for f in active_faults() if f.kind == "cell-timeout"}


def store_io_active() -> bool:
    return any(f.kind == "store-io" for f in active_faults())


def solver_raise_counts() -> frozenset[int]:
    return frozenset(
        f.count for f in active_faults() if f.kind == "solver-raise"
    )


# --------------------------------------------------------------------------
# Solver-exception injection.  A process-global solve counter keyed by
# the armed call numbers; the backend factory wraps real backends in the
# proxy only when the fault is active, so the hot path pays nothing.

_solve_calls = 0


def reset_solver_counter() -> None:
    global _solve_calls
    _solve_calls = 0


class FaultySolverProxy:
    """Delegates to a real backend; raises on the armed solve calls."""

    def __init__(self, backend) -> None:
        self._backend = backend

    def __getattr__(self, name):
        return getattr(self._backend, name)

    def solve(self, *args, **kwargs):
        global _solve_calls
        _solve_calls += 1
        if _solve_calls in solver_raise_counts():
            raise RuntimeError(
                f"injected solver fault (solve call #{_solve_calls})"
            )
        return self._backend.solve(*args, **kwargs)
