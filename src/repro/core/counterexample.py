"""Counterexample traces.

When the inclusion check finds an execution whose observation is not in the
specification (or an execution violating an assertion), the model returned by
the SAT solver is decoded into a human-readable trace: the argument/return
values observed, and the executed memory accesses listed in memory order
with their addresses and values.

Under the pruned order encoding the SAT model only fixes the order of the
pairs that matter (statically resolved pairs are constants, order-irrelevant
pairs carry no variable at all), so
:meth:`~repro.encoding.formula.EncodedTest.decode_memory_order` returns a
deterministic linear extension of that partial order; ``TraceStep.position``
numbers the accesses along that extension.  Every ordered fact the solver
committed to is preserved, and the positions of mutually unordered accesses
are an arbitrary-but-deterministic tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding.formula import EncodedTest


@dataclass
class TraceStep:
    """One executed memory access, in memory order."""

    position: int
    thread: int
    invocation_label: str
    kind: str
    location: str
    address: int
    value: int
    label: str

    def format(self) -> str:
        action = "ld" if self.kind == "load" else "st"
        return (
            f"#{self.position:<3} {self.invocation_label:<22} "
            f"{action} {self.location:<24} value={self.value}"
        )


@dataclass
class CounterexampleTrace:
    """A complete counterexample: observation plus the interleaving."""

    kind: str                       # "observation" or "assertion"
    observation: tuple[int, ...]
    observation_text: str
    steps: list[TraceStep] = field(default_factory=list)
    violated_assertions: list[str] = field(default_factory=list)
    memory_model: str = ""
    test_name: str = ""
    implementation: str = ""

    def format(self) -> str:
        lines = [
            f"counterexample ({self.kind}) for {self.implementation} "
            f"on test {self.test_name} under {self.memory_model}",
            f"  observation: {self.observation_text}",
        ]
        if self.violated_assertions:
            lines.append("  violated assertions:")
            lines.extend(f"    {text}" for text in self.violated_assertions)
        lines.append("  memory order of executed accesses:")
        lines.extend("    " + step.format() for step in self.steps)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()


def build_trace(
    encoded: EncodedTest,
    kind: str,
    observation_labels: list[str],
) -> CounterexampleTrace:
    """Decode the most recent SAT model of ``encoded`` into a trace."""
    model = encoded.model_values()
    observation = encoded.decode_observation(model)
    observation_text = ", ".join(
        f"{label}={value}" for label, value in zip(observation_labels, observation)
    )
    invocation_labels = {
        invocation.global_index: invocation.label
        for invocation in encoded.ctx.compiled.invocations
    }
    layout = encoded.ctx.layout
    steps: list[TraceStep] = []
    for position, access in enumerate(encoded.decode_memory_order(model)):
        decoded = encoded.decode_access(access, model)
        steps.append(
            TraceStep(
                position=position,
                thread=access.thread,
                invocation_label=invocation_labels.get(
                    access.invocation, f"inv{access.invocation}"
                ),
                kind=access.kind,
                location=layout.name_of(decoded["address"]),
                address=decoded["address"],
                value=decoded["value"],
                label=access.label,
            )
        )
    return CounterexampleTrace(
        kind=kind,
        observation=observation,
        observation_text=observation_text,
        steps=steps,
        violated_assertions=encoded.violated_assertions(model),
        memory_model=encoded.model.name,
        test_name=encoded.ctx.compiled.test.name,
        implementation=encoded.ctx.compiled.implementation.name,
    )
