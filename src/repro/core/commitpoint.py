"""The commit-point style baseline (used for the Fig. 12 comparison).

The paper compares its *observation set* method against the earlier
commit-point method of the authors' CAV'06 case study [4], which does not
enumerate the specification up front; instead, each execution discovered by
the solver is validated against the serial semantics directly.  Since the
original commit-point artifacts (hand-written commit-point annotations plus
a symbolic encoding of the reference semantics) are not published, this
module implements a baseline with the same *cost structure*:

1. solve the memory-model formula for any execution whose observation has
   not been validated yet;
2. validate that observation against the sequential reference implementation
   by searching for a serial interleaving that reproduces it (early exit on
   success);
3. on success, block the observation and iterate; on failure, report the
   execution as a counterexample.

The method therefore performs one solver call and one (lazy) serial-search
per *distinct observation of the concurrent model*, whereas the observation
set method performs one solver call per *serial observation* plus one final
refutation.  DESIGN.md discusses the substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.counterexample import CounterexampleTrace, build_trace
from repro.core.specification import ObservationSet, ReferenceSpecificationMiner
from repro.encoding.formula import encode_test
from repro.encoding.testprogram import CompiledTest
from repro.memorymodel.base import MemoryModel
from repro.sat.backend import BackendFactory


@dataclass
class CommitPointResult:
    """Outcome of the lazy (commit-point style) check."""

    passed: bool
    counterexample: CounterexampleTrace | None
    validated_observations: ObservationSet
    solver_calls: int = 0
    total_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)


def run_commit_point_check(
    compiled: CompiledTest,
    model: MemoryModel,
    max_iterations: int = 100_000,
    backend_factory: BackendFactory | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> CommitPointResult:
    """Check the test with the lazy validation baseline."""
    start = time.perf_counter()
    miner = ReferenceSpecificationMiner(compiled)
    labels = compiled.observation_labels()
    validated = ObservationSet(labels=labels, method="commit-point")
    encoded = encode_test(
        compiled, model, backend_factory=backend_factory,
        dense_order=dense_order, simplify=simplify,
    )
    encoded.expect_enumeration()
    solver_calls = 0
    counterexample = None
    passed = True
    while solver_calls < max_iterations:
        solver_calls += 1
        if not encoded.solve():
            break
        observation = encoded.decode_current_observation()
        if miner.contains(observation):
            validated.add(observation)
            encoded.block_observation(observation)
            continue
        counterexample = build_trace(encoded, "observation", labels)
        passed = False
        break
    return CommitPointResult(
        passed=passed,
        counterexample=counterexample,
        validated_observations=validated,
        solver_calls=solver_calls,
        total_seconds=time.perf_counter() - start,
    )
