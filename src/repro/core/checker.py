"""The CheckFence driver (Fig. 1 / Fig. 3).

:class:`CheckFence` ties the whole pipeline together: compile the test
against the implementation, mine the specification, and run the assertion
and inclusion checks under the requested memory model, returning a
:class:`repro.core.results.CheckResult` with a counterexample trace when the
check fails.

The heavy lifting (and all caching / incremental-solver state) lives in
:class:`repro.core.session.CheckSession`; ``CheckFence`` is the stable
facade over one session.  For many checks at once — several
implementations, tests, or models — use the parallel check matrix
(:mod:`repro.harness.matrix` / ``checkfence matrix``) instead of looping
over facades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import CheckResult
from repro.core.session import CheckSession
from repro.core.specification import ObservationSet
from repro.datatypes.spec import DataTypeImplementation
from repro.encoding.testprogram import CompiledTest
from repro.lsl.program import Program, SymbolicTest
from repro.memorymodel.base import MemoryModel


@dataclass
class CheckOptions:
    """Knobs controlling one check run.

    Options are read when a :class:`CheckFence` / ``CheckSession`` is
    constructed (the solver backend is resolved and caches are keyed
    accordingly); mutating them afterwards has no effect on that checker —
    build a new one instead.  The dataclass is picklable: one options
    value configures every worker of a matrix run
    (:func:`repro.harness.matrix.run_matrix`).
    """

    #: "auto", "reference", or "sat" (Section 3.2 / Fig. 11a "refset").
    specification_method: str = "auto"
    #: Default loop bound (None: the implementation's declared default).
    default_loop_bound: int | None = None
    #: Explicit per-loop bounds (tags as produced by the unroller).
    loop_bounds: dict[str, int] | None = None
    #: Run the lazy loop-bound refinement of Section 3.3 first.
    lazy_loop_bounds: bool = False
    #: Apply the range analysis of Section 3.4 (Fig. 11c turns it off).
    use_range_analysis: bool = True
    #: Also search for assertion violations (Section 4.1 bugs).
    check_assertions: bool = True
    #: SAT backend spec: "auto"/"internal", "dimacs", or "dimacs:<command>"
    #: (see :mod:`repro.sat.backend`).  None uses CHECKFENCE_SOLVER or auto.
    solver_backend: str | None = None
    #: Use the original dense memory-order construction (every pair gets a
    #: variable, full O(n^3) transitivity) instead of the conflict-aware
    #: pruned one.  None defers to CHECKFENCE_DENSE_ORDER (default: pruned).
    #: The two constructions produce identical outcome sets; the dense one
    #: exists as a differential baseline and escape hatch.
    dense_order: bool | None = None
    #: Run the in-process CNF preprocessor (unit propagation, equivalent
    #: literals, subsumption, bounded variable elimination — see
    #: :mod:`repro.sat.simplify`) between lowering and solving.  None
    #: defers to CHECKFENCE_SIMPLIFY (default: on; ``0`` / ``--no-simplify``
    #: disables).  Both settings produce identical verdicts and outcome
    #: sets; off exists as a differential baseline and escape hatch.
    simplify: bool | None = None
    #: Reuse the memoized model-independent encoding skeleton of a compiled
    #: test and run only the per-model layer on a fork of it (see
    #: :func:`repro.encoding.formula.encode_test`).  None defers to
    #: CHECKFENCE_SHARE_ENCODE (default: on; ``0`` / ``--no-share-encode``
    #: disables).  Shared and scratch encoding run the identical
    #: construction sequence and produce the same formula; scratch exists
    #: as a differential baseline and escape hatch.
    share_encode: bool | None = None
    #: Consult (and populate) the persistent on-disk result store
    #: (:mod:`repro.core.store`): verdicts and mined observation sets keyed
    #: by a content hash of implementation source, test, model, options,
    #: and checker code version.  None defers to CHECKFENCE_STORE
    #: (default: off; enable with ``--store`` / ``CHECKFENCE_STORE=1``,
    #: disable an inherited environment setting with ``--no-store``).
    store: bool | None = None
    #: Wall-clock budget in seconds for one check (compile + mine + encode
    #: + solve).  On expiry the check degrades to a first-class ``TIMEOUT``
    #: verdict instead of running forever (the consistency problem is
    #: NP-hard; some cells will blow up).  None defers to
    #: CHECKFENCE_TIMEOUT (default: unlimited).  Never part of the store
    #: fingerprint — degraded results are never cached.
    timeout: float | None = None
    #: Resident-memory cap in MB for one check, enforced at the same poll
    #: sites as ``timeout`` and degrading to an ``OOM`` verdict.  None
    #: defers to CHECKFENCE_MEMORY_LIMIT (default: unlimited).
    memory_limit_mb: float | None = None
    #: Fence kinds offered at every candidate slot during synthesis
    #: (``checkfence synthesize``).  None: the four partial kinds.
    synthesis_kinds: tuple | None = None
    #: Escalate from destructive deletion to the exact (implicit hitting
    #: set) search, proving cost-optimality of the synthesized set.
    synthesis_exact: bool = True
    #: Solve budget of the exact escalation; when exhausted the 1-minimal
    #: deletion result is returned with ``optimal=False``.
    synthesis_budget: int = 60


class CheckFence:
    """Checks data type implementations against bounded symbolic tests."""

    def __init__(
        self,
        implementation: DataTypeImplementation,
        options: CheckOptions | None = None,
    ) -> None:
        self.session = CheckSession(implementation, options or CheckOptions())

    @property
    def implementation(self) -> DataTypeImplementation:
        return self.session.implementation

    @property
    def options(self) -> CheckOptions:
        return self.session.options

    @property
    def program(self) -> Program:
        return self.session.program

    # --------------------------------------------------------------- public

    def compile(self, test: SymbolicTest, model: MemoryModel | str) -> CompiledTest:
        """Compile (inline + unroll + analyze) a test, honoring the options."""
        return self.session.compile(test, model)

    def specification(
        self, test: SymbolicTest, compiled: CompiledTest | None = None
    ) -> ObservationSet:
        """Mine (and cache) the observation set of a test."""
        return self.session.specification(test, compiled)

    def check(self, test: SymbolicTest, memory_model: MemoryModel | str) -> CheckResult:
        """Run the full check of Fig. 1 for one test and memory model."""
        return self.session.check(test, memory_model)

    def sweep(self, test: SymbolicTest, memory_models) -> list[CheckResult]:
        """Check one test under several memory models, sharing the compiled
        test and the mined specification across them."""
        return self.session.sweep(test, memory_models)

    def synthesize(self, test: SymbolicTest, memory_models, kinds=None):
        """Synthesize a minimal fence set making the test PASS under every
        given model (see :func:`repro.core.synthesize.synthesize_fences`)."""
        return self.session.synthesize(test, memory_models, kinds=kinds)


def check(
    implementation: DataTypeImplementation,
    test: SymbolicTest,
    memory_model: MemoryModel | str = "relaxed",
    options: CheckOptions | None = None,
) -> CheckResult:
    """One-shot convenience wrapper around :class:`CheckFence`."""
    return CheckFence(implementation, options).check(test, memory_model)
