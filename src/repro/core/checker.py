"""The CheckFence driver (Fig. 1 / Fig. 3).

:class:`CheckFence` ties the whole pipeline together: compile the test
against the implementation, mine the specification, and run the assertion
and inclusion checks under the requested memory model, returning a
:class:`repro.core.results.CheckResult` with a counterexample trace when the
check fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.inclusion import run_assertion_check, run_inclusion_check
from repro.core.loop_bounds import refine_loop_bounds
from repro.core.results import CheckResult, CheckStatistics
from repro.core.specification import ObservationSet, mine_specification
from repro.datatypes.spec import DataTypeImplementation
from repro.encoding.formula import encode_test
from repro.encoding.testprogram import CompiledTest, compile_test
from repro.lang.lower import compile_c
from repro.lsl.program import Program, SymbolicTest
from repro.memorymodel.base import MemoryModel, get_model


@dataclass
class CheckOptions:
    """Knobs controlling one check run."""

    #: "auto", "reference", or "sat" (Section 3.2 / Fig. 11a "refset").
    specification_method: str = "auto"
    #: Default loop bound (None: the implementation's declared default).
    default_loop_bound: int | None = None
    #: Explicit per-loop bounds (tags as produced by the unroller).
    loop_bounds: dict[str, int] | None = None
    #: Run the lazy loop-bound refinement of Section 3.3 first.
    lazy_loop_bounds: bool = False
    #: Apply the range analysis of Section 3.4 (Fig. 11c turns it off).
    use_range_analysis: bool = True
    #: Also search for assertion violations (Section 4.1 bugs).
    check_assertions: bool = True


class CheckFence:
    """Checks data type implementations against bounded symbolic tests."""

    def __init__(
        self,
        implementation: DataTypeImplementation,
        options: CheckOptions | None = None,
    ) -> None:
        self.implementation = implementation
        self.options = options or CheckOptions()
        #: The lowered LSL program is deterministic; cache it across tests.
        self.program: Program = compile_c(implementation.source, implementation.name)
        self._specifications: dict[str, ObservationSet] = {}

    # --------------------------------------------------------------- public

    def compile(self, test: SymbolicTest, model: MemoryModel | str) -> CompiledTest:
        """Compile (inline + unroll + analyze) a test, honoring the options."""
        model = get_model(model)
        if self.options.lazy_loop_bounds:
            refined = refine_loop_bounds(
                self.implementation,
                test,
                model,
                initial_bound=self.options.default_loop_bound
                or self.implementation.default_loop_bound,
                program=self.program,
                use_range_analysis=self.options.use_range_analysis,
            )
            merged = dict(refined.bounds)
            if self.options.loop_bounds:
                merged.update(self.options.loop_bounds)
            return compile_test(
                self.implementation,
                test,
                loop_bounds=merged,
                default_bound=self.options.default_loop_bound,
                use_range_analysis=self.options.use_range_analysis,
                program=self.program,
            )
        return compile_test(
            self.implementation,
            test,
            loop_bounds=self.options.loop_bounds,
            default_bound=self.options.default_loop_bound,
            use_range_analysis=self.options.use_range_analysis,
            program=self.program,
        )

    def specification(self, test: SymbolicTest, compiled: CompiledTest | None = None) -> ObservationSet:
        """Mine (and cache) the observation set of a test."""
        cached = self._specifications.get(test.name)
        if cached is not None:
            return cached
        if compiled is None:
            compiled = self.compile(test, "serial")
        spec = mine_specification(compiled, self.options.specification_method)
        self._specifications[test.name] = spec
        return spec

    def check(self, test: SymbolicTest, memory_model: MemoryModel | str) -> CheckResult:
        """Run the full check of Fig. 1 for one test and memory model."""
        model = get_model(memory_model)
        total_start = time.perf_counter()
        compiled = self.compile(test, model)
        specification = self.specification(test, compiled)
        encoded = encode_test(compiled, model)

        stats = CheckStatistics(
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
        )
        stats.merge_encoding(encoded.stats)
        stats.observation_set_size = len(specification)
        stats.mining_seconds = specification.mining_seconds

        counterexample = None
        notes: list[str] = []
        passed = True

        if self.options.check_assertions:
            assertion_outcome = run_assertion_check(
                compiled, model, specification.labels, encoded=encoded
            )
            stats.solve_seconds += assertion_outcome.solve_seconds
            if not assertion_outcome.passed:
                passed = False
                counterexample = assertion_outcome.counterexample
                notes.append("an assertion in the implementation can fail")

        if passed:
            inclusion_outcome = run_inclusion_check(
                compiled, model, specification, encoded=encoded
            )
            stats.solve_seconds += inclusion_outcome.solve_seconds
            if not inclusion_outcome.passed:
                passed = False
                counterexample = inclusion_outcome.counterexample
                notes.append(
                    "an execution is not observationally equivalent to any "
                    "serial execution"
                )

        if encoded.solver_stats is not None:
            stats.solver_conflicts = encoded.solver_stats.conflicts
            stats.solver_decisions = encoded.solver_stats.decisions
        stats.total_seconds = time.perf_counter() - total_start

        return CheckResult(
            passed=passed,
            implementation=self.implementation.name,
            test=test.name,
            memory_model=model.name,
            specification=specification,
            counterexample=counterexample,
            stats=stats,
            loop_bounds=dict(compiled.loop_bounds),
            notes=notes,
        )


def check(
    implementation: DataTypeImplementation,
    test: SymbolicTest,
    memory_model: MemoryModel | str = "relaxed",
    options: CheckOptions | None = None,
) -> CheckResult:
    """One-shot convenience wrapper around :class:`CheckFence`."""
    return CheckFence(implementation, options).check(test, memory_model)
