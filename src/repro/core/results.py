"""Result objects returned by the checker."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.counterexample import CounterexampleTrace
from repro.core.specification import ObservationSet
from repro.encoding.formula import EncodingStatistics, order_counter_dict


@dataclass
class CheckStatistics:
    """Timing and size statistics for one check (one row of Fig. 10)."""

    implementation: str = ""
    test: str = ""
    memory_model: str = ""
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    accesses: int = 0
    cnf_variables: int = 0
    cnf_clauses: int = 0
    order_pairs: int = 0
    order_vars: int = 0
    order_pairs_static: int = 0
    transitivity_clauses: int = 0
    dense_order: bool = False
    observation_set_size: int = 0
    #: Per-phase wall-clock breakdown of one check.  ``compile_seconds``
    #: and ``mining_seconds`` are near-zero on session-cache hits;
    #: ``encode_seconds`` splits into the model-independent skeleton build
    #: (zero when a memoized skeleton was reused — ``skeleton_shared``)
    #: and the per-model layer; CNF preprocessing time is the separate
    #: ``solver_preprocess_seconds`` counter below.
    compile_seconds: float = 0.0
    mining_seconds: float = 0.0
    encode_seconds: float = 0.0
    skeleton_seconds: float = 0.0
    layer_seconds: float = 0.0
    skeleton_shared: bool = False
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    #: True when this result was served from the persistent on-disk store
    #: (:mod:`repro.core.store`) — the other phase timings then describe
    #: the original run that populated the cell, not this one.
    store_hit: bool = False
    solver_conflicts: int = 0
    solver_decisions: int = 0
    solver_propagations: int = 0
    solver_restarts: int = 0
    solver_learned_clauses: int = 0
    solver_deleted_clauses: int = 0
    #: In-process CNF preprocessing (repro.sat.simplify): whether the
    #: knob was resolved on for this check.  The backend may still bypass
    #: itself on formulas below the engagement threshold — zero
    #: ``solver_vars_eliminated``/``solver_preprocess_seconds`` with
    #: ``simplify=True`` means exactly that.
    simplify: bool = False
    solver_vars_eliminated: int = 0
    solver_clauses_subsumed: int = 0
    solver_equiv_merged: int = 0
    solver_preprocess_seconds: float = 0.0
    solver_backend: str = ""
    #: False when the backend cannot report counters (external DIMACS
    #: solvers), so zeros are not mistaken for a trivially easy instance.
    solver_counters_available: bool = True
    #: "" for a completed check; "TIMEOUT" / "OOM" when a resource budget
    #: (:mod:`repro.core.limits`) expired mid-check.  Degraded checks keep
    #: whatever phase counters were accumulated before the breach.
    degraded: str = ""

    def merge_solver(self, stats, backend_name: str | None = None) -> None:
        """Record the solver counters of one check (a SolverStats delta);
        ``stats=None`` marks the counters as unavailable."""
        if stats is not None:
            self.solver_conflicts = stats.conflicts
            self.solver_decisions = stats.decisions
            self.solver_propagations = stats.propagations
            self.solver_restarts = stats.restarts
            self.solver_learned_clauses = stats.learned_clauses
            self.solver_deleted_clauses = stats.deleted_clauses
            self.solver_vars_eliminated = stats.vars_eliminated
            self.solver_clauses_subsumed = stats.clauses_subsumed
            self.solver_equiv_merged = stats.equiv_merged
            self.solver_preprocess_seconds = stats.preprocess_seconds
        else:
            self.solver_counters_available = False
        if backend_name:
            self.solver_backend = backend_name

    def solver_dict(self) -> dict:
        """The per-backend solver counters, for benchmark JSON output."""
        return {
            "backend": self.solver_backend,
            "counters_available": self.solver_counters_available,
            "decisions": self.solver_decisions,
            "propagations": self.solver_propagations,
            "conflicts": self.solver_conflicts,
            "restarts": self.solver_restarts,
            "learned_clauses": self.solver_learned_clauses,
            "deleted_clauses": self.solver_deleted_clauses,
            "vars_eliminated": self.solver_vars_eliminated,
            "clauses_subsumed": self.solver_clauses_subsumed,
            "equiv_merged": self.solver_equiv_merged,
            "preprocess_seconds": self.solver_preprocess_seconds,
        }

    def merge_encoding(self, stats: EncodingStatistics) -> None:
        self.instructions = stats.instructions
        self.loads = stats.loads
        self.stores = stats.stores
        self.accesses = stats.accesses
        self.cnf_variables = stats.cnf_variables
        self.cnf_clauses = stats.cnf_clauses
        self.order_pairs = stats.order_pairs
        self.order_vars = stats.order_vars
        self.order_pairs_static = stats.order_pairs_static
        self.transitivity_clauses = stats.transitivity_clauses
        self.dense_order = stats.dense_order
        self.encode_seconds = stats.encode_seconds
        self.skeleton_seconds = stats.skeleton_seconds
        self.layer_seconds = stats.layer_seconds
        self.skeleton_shared = stats.skeleton_shared

    def order_dict(self) -> dict:
        """The memory-order encoding counters, for benchmark JSON output
        (the shared :data:`~repro.encoding.formula.ORDER_COUNTER_FIELDS`)."""
        return order_counter_dict(self)

    def phase_dict(self) -> dict:
        """The per-phase timing breakdown, for ``matrix --json`` cells."""
        return {
            "compile_seconds": self.compile_seconds,
            "mining_seconds": self.mining_seconds,
            "encode_seconds": self.encode_seconds,
            "skeleton_seconds": self.skeleton_seconds,
            "layer_seconds": self.layer_seconds,
            "skeleton_shared": self.skeleton_shared,
            "simplify_seconds": self.solver_preprocess_seconds,
            "solve_seconds": self.solve_seconds,
            "total_seconds": self.total_seconds,
            "store_hit": self.store_hit,
            "degraded": self.degraded,
        }

    def profile_line(self) -> str:
        """One-line per-cell phase report (the ``CHECKFENCE_PROFILE=1``
        output)."""
        label = f"{self.implementation}/{self.test}@{self.memory_model}"
        if self.store_hit:
            return f"[profile] {label} store-hit total={self.total_seconds:.3f}s"
        skeleton = (
            "shared"
            if self.skeleton_shared
            else f"{self.skeleton_seconds:.3f}s"
        )
        return (
            f"[profile] {label} "
            f"compile={self.compile_seconds:.3f}s "
            f"mine={self.mining_seconds:.3f}s "
            f"encode={self.encode_seconds:.3f}s"
            f"(skeleton {skeleton} + layer {self.layer_seconds:.3f}s) "
            f"simplify={self.solver_preprocess_seconds:.3f}s "
            f"solve={self.solve_seconds:.3f}s "
            f"total={self.total_seconds:.3f}s"
        )


def profile_enabled() -> bool:
    """The ``CHECKFENCE_PROFILE`` knob (default off): when on, every check
    prints its :meth:`CheckStatistics.profile_line` to stderr."""
    return os.environ.get("CHECKFENCE_PROFILE", "0") not in ("", "0")


@dataclass
class CheckResult:
    """Outcome of checking one test against one memory model."""

    passed: bool
    implementation: str
    test: str
    memory_model: str
    specification: ObservationSet | None = None
    counterexample: CounterexampleTrace | None = None
    stats: CheckStatistics = field(default_factory=CheckStatistics)
    loop_bounds: dict[str, int] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: "" for a completed check; "TIMEOUT" / "OOM" when a resource budget
    #: expired.  ``passed`` is False then, but a degraded result is *not*
    #: evidence of a bug — it must never be conflated with FAIL, and it is
    #: never written to the persistent store.
    degraded: str = ""

    @property
    def failed(self) -> bool:
        return not self.passed and not self.degraded

    @property
    def verdict(self) -> str:
        if self.degraded:
            return self.degraded
        return "PASS" if self.passed else "FAIL"

    def summary(self) -> str:
        verdict = self.verdict
        line = (
            f"[{verdict}] {self.implementation} / {self.test} "
            f"on {self.memory_model}: "
            f"{self.stats.accesses} accesses, "
            f"{self.stats.cnf_clauses} clauses, "
            f"spec size {self.stats.observation_set_size}, "
            f"total {self.stats.total_seconds:.2f}s"
        )
        if self.counterexample is not None:
            line += f"\n{self.counterexample.format()}"
        return line
