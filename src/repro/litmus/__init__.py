"""Litmus tests comparing the supported memory models (Fig. 2, Sec. 2.3.3)."""

from repro.litmus.catalog import (
    LitmusOutcome,
    LitmusTest,
    available_litmus_tests,
    compiled_litmus,
    iriw_allowed,
    observation_allowed,
    observation_outcome,
)

__all__ = [
    "LitmusOutcome",
    "LitmusTest",
    "available_litmus_tests",
    "compiled_litmus",
    "iriw_allowed",
    "observation_allowed",
    "observation_outcome",
]
