"""Litmus tests comparing the supported memory models (Fig. 2, Sec. 2.3.3)."""

from repro.litmus.catalog import (
    LitmusTest,
    available_litmus_tests,
    iriw_allowed,
    observation_allowed,
)

__all__ = [
    "LitmusTest",
    "available_litmus_tests",
    "iriw_allowed",
    "observation_allowed",
]
