"""Litmus tests for comparing memory models (Section 2.3.3, Fig. 2).

Each litmus test is phrased as a tiny "data type" whose operations are the
per-thread instruction sequences; a helper asks whether a given observation
(the tuple of return values) is reachable under a memory model.  The catalog
covers the classic shapes:

* ``store-buffering`` (SB) — distinguishes SC from TSO/PSO/Relaxed;
* ``message-passing`` (MP) — distinguishes {SC, TSO} from PSO/Relaxed and
  shows the effect of store-store / load-load fences;
* ``load-buffering`` (LB) — allowed only on models that reorder loads ahead
  of later stores (Relaxed);
* ``iriw-fenced`` — Fig. 2 of the paper: an execution with load-load fences
  that Relaxed forbids (because it orders all stores globally) but weaker
  architectural models such as PowerPC do not rule out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.spec import DataTypeImplementation, OperationSpec
from repro.encoding import compile_test, encode_test
from repro.encoding.testprogram import CompiledTest
from repro.lsl.program import Invocation, SymbolicTest
from repro.memorymodel.base import MemoryModel, get_model
from repro.sat.backend import make_backend_factory
from repro.sat.solver import SolverStats


@dataclass
class LitmusTest:
    """A litmus test: an implementation plus the observation of interest."""

    name: str
    implementation: DataTypeImplementation
    threads: list[str]              # operation names, one per thread
    observation: tuple[int, ...]    # the "interesting" outcome
    description: str = ""

    def symbolic_test(self) -> SymbolicTest:
        return SymbolicTest(
            name=self.name,
            threads=[[Invocation(op)] for op in self.threads],
        )


def _implementation(name, source, ops) -> DataTypeImplementation:
    return DataTypeImplementation(
        name=name,
        description=f"litmus test {name}",
        source=source,
        operations=ops,
        init_operation=None,
        reference=None,
    )


_SB_SOURCE = """
int x;
int y;
int left() { x = 1; return y; }
int right() { y = 1; return x; }
int left_fenced() { x = 1; fence("store-load"); return y; }
int right_fenced() { y = 1; fence("store-load"); return x; }
"""

_MP_SOURCE = """
int data;
int flag;
int observed_flag;
void producer() { data = 1; flag = 1; }
void producer_fenced() { data = 1; fence("store-store"); flag = 1; }
int consumer() {
    int f;
    int d;
    f = flag;
    d = data;
    observed_flag = f;
    return d;
}
int consumer_fenced() {
    int f;
    int d;
    f = flag;
    fence("load-load");
    d = data;
    observed_flag = f;
    return d;
}
int read_flag() { return observed_flag; }
"""

_LB_SOURCE = """
int x;
int y;
int lb_left() { int r; r = x; y = 1; return r; }
int lb_right() { int r; r = y; x = 1; return r; }
int lb_left_fenced() { int r; r = x; fence("load-store"); y = 1; return r; }
int lb_right_fenced() { int r; r = y; fence("load-store"); x = 1; return r; }
"""

_IRIW_SOURCE = """
int x;
int y;
int r1a;
int r1b;
int r2a;
int r2b;
void write_x() { x = 1; }
void write_y() { y = 1; }
void read_xy() {
    int a;
    int b;
    a = x;
    fence("load-load");
    b = y;
    r1a = a;
    r1b = b;
}
void read_yx() {
    int a;
    int b;
    a = y;
    fence("load-load");
    b = x;
    r2a = a;
    r2b = b;
}
int get_r1a() { return r1a; }
"""


def _sb() -> LitmusTest:
    ops = {
        "left": OperationSpec("left", "left", has_return=True),
        "right": OperationSpec("right", "right", has_return=True),
        "left_fenced": OperationSpec("left_fenced", "left_fenced", has_return=True),
        "right_fenced": OperationSpec("right_fenced", "right_fenced", has_return=True),
    }
    return LitmusTest(
        name="store-buffering",
        implementation=_implementation("sb", _SB_SOURCE, ops),
        threads=["left", "right"],
        observation=(0, 0),
        description="both threads read 0 after writing: forbidden by SC, "
        "allowed by TSO/PSO/Relaxed",
    )


def _sb_fenced() -> LitmusTest:
    base = _sb()
    return LitmusTest(
        name="store-buffering+fences",
        implementation=base.implementation,
        threads=["left_fenced", "right_fenced"],
        observation=(0, 0),
        description="store-load fences forbid the relaxed outcome again",
    )


def _mp(fenced: bool) -> LitmusTest:
    ops = {
        "producer": OperationSpec("producer", "producer"),
        "producer_fenced": OperationSpec("producer_fenced", "producer_fenced"),
        "consumer": OperationSpec("consumer", "consumer", has_return=True),
        "consumer_fenced": OperationSpec(
            "consumer_fenced", "consumer_fenced", has_return=True
        ),
        "read_flag": OperationSpec("read_flag", "read_flag", has_return=True),
    }
    implementation = _implementation("mp", _MP_SOURCE, ops)
    threads = (
        ["producer_fenced", "consumer_fenced"] if fenced
        else ["producer", "consumer"]
    )
    name = "message-passing+fences" if fenced else "message-passing"
    return LitmusTest(
        name=name,
        implementation=implementation,
        threads=threads + ["read_flag"],
        # (consumer data result, flag value it observed)
        observation=(0, 1),
        description="the consumer sees the flag but stale data: forbidden by "
        "SC/TSO, allowed by PSO/Relaxed unless fenced",
    )


def _lb(fenced: bool) -> LitmusTest:
    ops = {
        "lb_left": OperationSpec("lb_left", "lb_left", has_return=True),
        "lb_right": OperationSpec("lb_right", "lb_right", has_return=True),
        "lb_left_fenced": OperationSpec(
            "lb_left_fenced", "lb_left_fenced", has_return=True
        ),
        "lb_right_fenced": OperationSpec(
            "lb_right_fenced", "lb_right_fenced", has_return=True
        ),
    }
    implementation = _implementation("lb", _LB_SOURCE, ops)
    threads = (
        ["lb_left_fenced", "lb_right_fenced"] if fenced
        else ["lb_left", "lb_right"]
    )
    return LitmusTest(
        name="load-buffering+fences" if fenced else "load-buffering",
        implementation=implementation,
        threads=threads,
        observation=(1, 1),
        description="both loads see the other thread's later store: requires "
        "load->store reordering (Relaxed only)",
    )


def _iriw() -> LitmusTest:
    ops = {
        "write_x": OperationSpec("write_x", "write_x"),
        "write_y": OperationSpec("write_y", "write_y"),
        "read_xy": OperationSpec("read_xy", "read_xy"),
        "read_yx": OperationSpec("read_yx", "read_yx"),
        "get_r1a": OperationSpec("get_r1a", "get_r1a", has_return=True),
    }
    implementation = _implementation("iriw", _IRIW_SOURCE, ops)
    return LitmusTest(
        name="iriw-fenced",
        implementation=implementation,
        threads=["write_x", "write_y", "read_xy", "read_yx"],
        observation=(),
        description="Fig. 2: two readers disagree on the order of two "
        "independent writes despite load-load fences; impossible on Relaxed "
        "because it orders all stores",
    )


def available_litmus_tests() -> dict[str, LitmusTest]:
    tests = [
        _sb(),
        _sb_fenced(),
        _mp(False),
        _mp(True),
        _lb(False),
        _lb(True),
        _iriw(),
    ]
    return {t.name: t for t in tests}


#: Compilation is model-independent, so litmus tests are compiled once and
#: shared across all memory-model queries (a sweep over sc/tso/pso/relaxed
#: compiles each shape once instead of four times).  The key is the test's
#: *content* — not just its name — so a caller-supplied variant that reuses
#: a catalog name still gets its own compilation.
_COMPILED_CACHE: dict[tuple, CompiledTest] = {}


def _litmus_cache_key(litmus: LitmusTest) -> tuple:
    return (
        litmus.name,
        litmus.implementation.source,
        tuple(litmus.threads),
        # OperationSpec is a dataclass, so repr captures the full contents
        # (proc mapping, arity, ...), not just the operation names.
        repr(sorted(litmus.implementation.operations.items())),
    )


def compiled_litmus(litmus: LitmusTest) -> CompiledTest:
    """The (cached) compiled form of a litmus test."""
    key = _litmus_cache_key(litmus)
    cached = _COMPILED_CACHE.get(key)
    if cached is None:
        cached = compile_test(litmus.implementation, litmus.symbolic_test())
        _COMPILED_CACHE[key] = cached
    return cached


@dataclass
class LitmusOutcome:
    """Verdict of one litmus query plus the solver work it took."""

    allowed: bool
    backend: str
    solver_stats: SolverStats | None
    #: Memory-order encoding counters (``EncodingStatistics.order_dict``).
    order: dict | None = None


def observation_outcome(
    litmus: LitmusTest,
    model: MemoryModel | str,
    observation: tuple[int, ...] | None = None,
    backend_spec: str | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> LitmusOutcome:
    """Like :func:`observation_allowed`, but also reports which backend ran
    and its solver counters (for the benchmark JSON trajectories)."""
    model = get_model(model)
    compiled = compiled_litmus(litmus)
    encoded = encode_test(
        compiled, model, backend_factory=make_backend_factory(backend_spec),
        dense_order=dense_order, simplify=simplify,
    )
    target = observation if observation is not None else litmus.observation
    handles = encoded.observation_equals(target)
    allowed = bool(encoded.solve(assumptions=handles))
    stats = encoded.solver_stats
    return LitmusOutcome(
        allowed=allowed,
        backend=encoded.backend_name or "internal",
        solver_stats=stats.copy() if stats is not None else None,
        order=encoded.stats.order_dict(),
    )


def observation_allowed(
    litmus: LitmusTest,
    model: MemoryModel | str,
    observation: tuple[int, ...] | None = None,
    backend_spec: str | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> bool:
    """Is the litmus observation reachable under the given memory model?"""
    return observation_outcome(
        litmus, model, observation, backend_spec=backend_spec,
        dense_order=dense_order, simplify=simplify,
    ).allowed


def iriw_allowed(
    model: MemoryModel | str,
    backend_spec: str | None = None,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> bool:
    """Fig. 2: can the two readers observe the writes in opposite orders?

    Reader 1 sees x=1 then y=0, reader 2 sees y=1 then x=0 (with load-load
    fences between the reads).  Relaxed forbids it; weaker models (PowerPC,
    IA-64) would not.
    """
    litmus = _iriw()
    model = get_model(model)
    compiled = compiled_litmus(litmus)
    encoded = encode_test(
        compiled, model, backend_factory=make_backend_factory(backend_spec),
        dense_order=dense_order, simplify=simplify,
    )
    # Locate the r1a/r1b/r2a/r2b cells by their global layout position:
    # globals are x, y, r1a, r1b, r2a, r2b -> indices 1..6.
    layout = compiled.layout
    wanted = {"r1a": 1, "r1b": 0, "r2a": 1, "r2b": 0}
    handles = []
    for name, value in wanted.items():
        base = layout.global_base(name)
        # Find the last store to that global (the reader writes it) and
        # constrain the *final* memory value instead; simpler: constrain via
        # a load we add?  Easiest is to constrain the stores' values: the
        # readers store their observations unconditionally, so require the
        # stored value to equal the wanted one.
        for thread in encoded.threads:
            for access in thread.accesses:
                if access.is_store and access.addr_candidates == [base]:
                    handles.append(
                        encoded.ctx.bvb.eq_const(access.value, value)
                    )
    return bool(encoded.solve(assumptions=handles))
