"""Differential harness: up to three independent consistency engines.

For one compiled test and one memory model this module computes the set of
reachable observation vectors with any subset of the repo's three engines —

* ``enumerator`` — the explicit-state operational enumerator
  (:mod:`repro.oracle.enumerator`),
* ``rfcheck`` — the polynomial reads-from closure engine
  (:mod:`repro.rfcheck`),
* ``sat`` — *mining* the SAT encoding (solve, decode the observation,
  block it, repeat, exactly like the Section 3.2 specification miner) —

and reports every pairwise difference, with direction.  The three
implementations share nothing below :class:`repro.memorymodel.base
.MemoryModel`, so an axiom dropped or mangled in any one of them shows up
as a divergence with the offending observation vectors attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.encoding import encode_test
from repro.encoding.testprogram import CompiledTest
from repro.memorymodel.base import MemoryModel, get_model
from repro.oracle.enumerator import (
    INCONCLUSIVE,
    OK,
    OracleResult,
    enumerate_outcomes,
)
from repro.sat.backend import make_backend_factory

#: Canonical engine order: cheap operational engines first, SAT last (so
#: the legacy "skip SAT when nothing conclusive to compare it against"
#: gate keeps working).
ENGINES = ("enumerator", "rfcheck", "sat")

#: What runs when no ``--engines`` is given: the historical two-way check.
DEFAULT_ENGINES = ("enumerator", "sat")


def parse_engines(spec) -> tuple[str, ...]:
    """Normalize an engine selection to a tuple in canonical order.

    Accepts ``None`` (the default pair), the string ``"all"``, a comma
    string like ``"enumerator,rfcheck"``, or any iterable of names.
    """
    if spec is None:
        return DEFAULT_ENGINES
    if isinstance(spec, str):
        spec = [part.strip() for part in spec.split(",") if part.strip()]
    names = list(spec)
    if "all" in names:
        return ENGINES
    unknown = [name for name in names if name not in ENGINES]
    if unknown:
        raise ValueError(
            f"unknown engine(s) {', '.join(sorted(set(unknown)))}; "
            f"choose from {', '.join(ENGINES)} or 'all'"
        )
    if not names:
        raise ValueError("no engines selected")
    return tuple(name for name in ENGINES if name in names)


class SatMiningOverflow(RuntimeError):
    """The SAT side produced more outcomes than the mining budget."""


def mine_sat_outcomes(
    compiled: CompiledTest,
    model: MemoryModel | str,
    backend_spec: str | None = None,
    max_outcomes: int = 4096,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> set[tuple[int, ...]]:
    """Enumerate every reachable observation vector from the SAT encoding.

    Repeatedly solves the formula and blocks the decoded observation until
    UNSAT — the incremental path the specification miner uses, so this also
    exercises clause addition mid-solve.
    """
    model = get_model(model)
    encoded = encode_test(
        compiled, model, backend_factory=make_backend_factory(backend_spec),
        dense_order=dense_order, simplify=simplify,
    )
    outcomes: set[tuple[int, ...]] = set()
    encoded.expect_enumeration()
    while True:
        if len(outcomes) > max_outcomes:
            raise SatMiningOverflow(
                f"more than {max_outcomes} distinct observations"
            )
        if not encoded.solve():
            return outcomes
        observation = encoded.decode_current_observation()
        if observation in outcomes:  # pragma: no cover - solver bug guard
            raise RuntimeError(
                f"solver returned blocked observation {observation!r}"
            )
        outcomes.add(observation)
        encoded.block_observation(observation)


@dataclass
class EngineResult:
    """One engine's answer for one (test, model) pair."""

    engine: str
    status: str                                  # OK or INCONCLUSIVE
    outcomes: set[tuple[int, ...]] = field(default_factory=set)
    reason: str = ""
    seconds: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == OK

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "status": self.status,
            "outcomes": len(self.outcomes) if self.ok else None,
            "reason": self.reason,
            "seconds": round(self.seconds, 6),
            "stats": dict(self.stats),
        }


@dataclass
class DifferentialReport:
    """Result of one multi-engine comparison.

    The legacy two-way surface (``oracle``, ``sat_outcomes``,
    ``sat_overflow``, ``missing_from_sat``, ``missing_from_oracle``) is
    preserved for existing callers; the general surface is
    ``engine_results`` plus :meth:`pair_divergences`.
    """

    name: str
    model: str
    oracle: OracleResult | None = None
    sat_outcomes: set[tuple[int, ...]] = field(default_factory=set)
    #: Non-empty when SAT mining blew its outcome budget — the SAT-side
    #: analogue of the oracle's budgets, equally inconclusive.
    sat_overflow: str = ""
    engine_results: dict[str, EngineResult] = field(default_factory=dict)

    def _ordered(self) -> list[EngineResult]:
        return [
            self.engine_results[name]
            for name in ENGINES
            if name in self.engine_results
        ]

    @property
    def engines(self) -> tuple[str, ...]:
        return tuple(result.engine for result in self._ordered())

    @property
    def inconclusive(self) -> bool:
        """At least one engine reached no verdict."""
        return any(not result.ok for result in self._ordered())

    @property
    def reason(self) -> str:
        """Why engines reached no verdict (empty when all conclusive)."""
        return "; ".join(
            f"{result.engine}: {result.reason}"
            for result in self._ordered()
            if not result.ok
        )

    def pair_divergences(self) -> list[dict]:
        """Each conclusive engine pair that disagrees, with direction.

        Every entry has ``first``/``second`` (engine names in canonical
        order) and the sorted outcome lists ``only_in_first`` /
        ``only_in_second``.
        """
        conclusive = [result for result in self._ordered() if result.ok]
        out: list[dict] = []
        for i, first in enumerate(conclusive):
            for second in conclusive[i + 1:]:
                only_first = first.outcomes - second.outcomes
                only_second = second.outcomes - first.outcomes
                if only_first or only_second:
                    out.append({
                        "first": first.engine,
                        "second": second.engine,
                        "only_in_first": sorted(only_first),
                        "only_in_second": sorted(only_second),
                    })
        return out

    def _pair(self, a: str, b: str) -> tuple[EngineResult, EngineResult] | None:
        first = self.engine_results.get(a)
        second = self.engine_results.get(b)
        if first is None or second is None or not (first.ok and second.ok):
            return None
        return first, second

    @property
    def missing_from_sat(self) -> set[tuple[int, ...]]:
        """Outcomes the enumerator reaches but the encoding forbids
        (an over-constrained / unsound-for-completeness encoder)."""
        pair = self._pair("enumerator", "sat")
        if pair is None:
            return set()
        return pair[0].outcomes - pair[1].outcomes

    @property
    def missing_from_oracle(self) -> set[tuple[int, ...]]:
        """Outcomes the encoding allows but the enumerator never reaches
        (an under-constrained encoder — the dangerous direction: FAIL
        verdicts could be spurious, PASS verdicts silent misses)."""
        pair = self._pair("enumerator", "sat")
        if pair is None:
            return set()
        return pair[1].outcomes - pair[0].outcomes

    @property
    def diverged(self) -> bool:
        return bool(self.pair_divergences())

    @property
    def ok(self) -> bool:
        """No divergence proven (inconclusive engines are skipped, not
        counted as failures)."""
        return not self.diverged

    def describe(self) -> str:
        divergences = self.pair_divergences()
        if divergences:
            parts = [f"{self.name} @ {self.model}: DIVERGENCE"]
            for pair in divergences:
                if pair["only_in_second"]:
                    parts.append(
                        f"{pair['second']} allows but {pair['first']} "
                        "forbids: "
                        + ", ".join(map(str, pair["only_in_second"]))
                    )
                if pair["only_in_first"]:
                    parts.append(
                        f"{pair['first']} allows but {pair['second']} "
                        "forbids: "
                        + ", ".join(map(str, pair["only_in_first"]))
                    )
            return "; ".join(parts)
        conclusive = [result for result in self._ordered() if result.ok]
        if len(conclusive) < 2:
            return (
                f"{self.name} @ {self.model}: INCONCLUSIVE "
                f"({self.reason or 'fewer than two conclusive engines'})"
            )
        agreed = (
            f"{self.name} @ {self.model}: "
            f"{'/'.join(result.engine for result in conclusive)} agree on "
            f"{len(conclusive[0].outcomes)} outcomes"
        )
        if self.inconclusive:
            agreed += f" ({self.reason})"
        return agreed


def _run_rfcheck(compiled, model, *, max_steps, max_checks):
    from repro.rfcheck.miner import rfcheck_outcomes

    return rfcheck_outcomes(
        compiled, model, max_steps=max_steps, max_checks=max_checks
    )


def differential_check(
    compiled: CompiledTest,
    model: MemoryModel | str,
    backend_spec: str | None = None,
    name: str | None = None,
    max_steps: int = 100_000,
    max_nodes: int = 400_000,
    max_outcomes: int = 4096,
    dense_order: bool | None = None,
    simplify: bool | None = None,
    engines=None,
    max_checks: int = 250_000,
) -> DifferentialReport:
    """Compare the outcome sets of the selected engines for one
    (test, model) pair.

    ``engines`` is anything :func:`parse_engines` accepts; the default is
    the historical enumerator-vs-SAT pair.  SAT mining is skipped (and
    marked inconclusive) when every other requested engine was itself
    inconclusive — there would be nothing to compare its outcomes against,
    and the formula may be exactly as pathological.
    """
    model = get_model(model)
    selected = parse_engines(engines)
    report = DifferentialReport(
        name=name or compiled.test.name,
        model=model.name,
    )

    if "enumerator" in selected:
        started = time.perf_counter()
        oracle = enumerate_outcomes(
            compiled, model, max_steps=max_steps, max_nodes=max_nodes
        )
        report.oracle = oracle
        report.engine_results["enumerator"] = EngineResult(
            engine="enumerator",
            status=oracle.status,
            outcomes=set(oracle.outcomes),
            reason=oracle.reason,
            seconds=time.perf_counter() - started,
            stats={"nodes": oracle.nodes, "traces": oracle.traces},
        )

    if "rfcheck" in selected:
        started = time.perf_counter()
        rf = _run_rfcheck(
            compiled, model, max_steps=max_steps, max_checks=max_checks
        )
        report.engine_results["rfcheck"] = EngineResult(
            engine="rfcheck",
            status=rf.status,
            outcomes=set(rf.outcomes),
            reason=rf.reason,
            seconds=time.perf_counter() - started,
            stats={
                "assignments": rf.assignments,
                "checks": rf.checks,
                "traces": rf.traces,
            },
        )

    if "sat" in selected:
        others = [
            result for key, result in report.engine_results.items()
            if key != "sat"
        ]
        if others and not any(result.ok for result in others):
            # Nothing conclusive to compare against; the legacy gate.
            report.engine_results["sat"] = EngineResult(
                engine="sat",
                status=INCONCLUSIVE,
                reason="skipped: every other engine was inconclusive",
            )
        else:
            started = time.perf_counter()
            try:
                mined = mine_sat_outcomes(
                    compiled, model, backend_spec=backend_spec,
                    max_outcomes=max_outcomes, dense_order=dense_order,
                    simplify=simplify,
                )
                report.sat_outcomes = mined
                report.engine_results["sat"] = EngineResult(
                    engine="sat",
                    status=OK,
                    outcomes=set(mined),
                    seconds=time.perf_counter() - started,
                )
            except SatMiningOverflow as exc:
                # A budget breach, like the oracle's own: skip, don't error.
                report.sat_overflow = f"SAT mining overflow: {exc}"
                report.engine_results["sat"] = EngineResult(
                    engine="sat",
                    status=INCONCLUSIVE,
                    reason=report.sat_overflow,
                    seconds=time.perf_counter() - started,
                )
    return report
