"""Differential harness: operational enumerator vs the SAT encoding.

For one compiled test and one memory model this module computes the set of
reachable observation vectors twice — once with the explicit-state
enumerator (:mod:`repro.oracle.enumerator`), once by *mining* the SAT
encoding (solve, decode the observation, block it, repeat, exactly like the
Section 3.2 specification miner) — and reports any difference.  The two
implementations share nothing below :class:`repro.memorymodel.base
.MemoryModel`, so an axiom dropped or mangled on either side shows up as a
divergence with the offending observation vectors attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.encoding import encode_test
from repro.encoding.testprogram import CompiledTest
from repro.memorymodel.base import MemoryModel, get_model
from repro.oracle.enumerator import OracleResult, enumerate_outcomes
from repro.sat.backend import make_backend_factory


class SatMiningOverflow(RuntimeError):
    """The SAT side produced more outcomes than the mining budget."""


def mine_sat_outcomes(
    compiled: CompiledTest,
    model: MemoryModel | str,
    backend_spec: str | None = None,
    max_outcomes: int = 4096,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> set[tuple[int, ...]]:
    """Enumerate every reachable observation vector from the SAT encoding.

    Repeatedly solves the formula and blocks the decoded observation until
    UNSAT — the incremental path the specification miner uses, so this also
    exercises clause addition mid-solve.
    """
    model = get_model(model)
    encoded = encode_test(
        compiled, model, backend_factory=make_backend_factory(backend_spec),
        dense_order=dense_order, simplify=simplify,
    )
    outcomes: set[tuple[int, ...]] = set()
    encoded.expect_enumeration()
    while True:
        if len(outcomes) > max_outcomes:
            raise SatMiningOverflow(
                f"more than {max_outcomes} distinct observations"
            )
        if not encoded.solve():
            return outcomes
        observation = encoded.decode_current_observation()
        if observation in outcomes:  # pragma: no cover - solver bug guard
            raise RuntimeError(
                f"solver returned blocked observation {observation!r}"
            )
        outcomes.add(observation)
        encoded.block_observation(observation)


@dataclass
class DifferentialReport:
    """Result of one oracle-vs-SAT comparison."""

    name: str
    model: str
    oracle: OracleResult
    sat_outcomes: set[tuple[int, ...]] = field(default_factory=set)
    #: Non-empty when SAT mining blew its outcome budget — the SAT-side
    #: analogue of the oracle's budgets, equally inconclusive.
    sat_overflow: str = ""

    @property
    def inconclusive(self) -> bool:
        return not self.oracle.ok or bool(self.sat_overflow)

    @property
    def reason(self) -> str:
        """Why no verdict was reached (empty when conclusive)."""
        if not self.oracle.ok:
            return self.oracle.reason
        return self.sat_overflow

    @property
    def missing_from_sat(self) -> set[tuple[int, ...]]:
        """Outcomes the enumerator reaches but the encoding forbids
        (an over-constrained / unsound-for-completeness encoder)."""
        if self.inconclusive:
            return set()
        return self.oracle.outcomes - self.sat_outcomes

    @property
    def missing_from_oracle(self) -> set[tuple[int, ...]]:
        """Outcomes the encoding allows but the enumerator never reaches
        (an under-constrained encoder — the dangerous direction: FAIL
        verdicts could be spurious, PASS verdicts silent misses)."""
        if self.inconclusive:
            return set()
        return self.sat_outcomes - self.oracle.outcomes

    @property
    def diverged(self) -> bool:
        return bool(self.missing_from_sat or self.missing_from_oracle)

    @property
    def ok(self) -> bool:
        """No divergence proven (inconclusive programs are skipped, not
        counted as failures)."""
        return not self.diverged

    def describe(self) -> str:
        if self.inconclusive:
            return (
                f"{self.name} @ {self.model}: INCONCLUSIVE "
                f"({self.reason})"
            )
        if not self.diverged:
            return (
                f"{self.name} @ {self.model}: agree on "
                f"{len(self.sat_outcomes)} outcomes"
            )
        parts = [f"{self.name} @ {self.model}: DIVERGENCE"]
        if self.missing_from_oracle:
            parts.append(
                "SAT allows but oracle forbids: "
                + ", ".join(map(str, sorted(self.missing_from_oracle)))
            )
        if self.missing_from_sat:
            parts.append(
                "oracle allows but SAT forbids: "
                + ", ".join(map(str, sorted(self.missing_from_sat)))
            )
        return "; ".join(parts)


def differential_check(
    compiled: CompiledTest,
    model: MemoryModel | str,
    backend_spec: str | None = None,
    name: str | None = None,
    max_steps: int = 100_000,
    max_nodes: int = 400_000,
    max_outcomes: int = 4096,
    dense_order: bool | None = None,
    simplify: bool | None = None,
) -> DifferentialReport:
    """Compare oracle and SAT outcome sets for one (test, model) pair."""
    model = get_model(model)
    oracle = enumerate_outcomes(
        compiled, model, max_steps=max_steps, max_nodes=max_nodes
    )
    report = DifferentialReport(
        name=name or compiled.test.name,
        model=model.name,
        oracle=oracle,
    )
    if oracle.ok:
        try:
            report.sat_outcomes = mine_sat_outcomes(
                compiled, model, backend_spec=backend_spec,
                max_outcomes=max_outcomes, dense_order=dense_order,
                simplify=simplify,
            )
        except SatMiningOverflow as exc:
            # A budget breach, like the oracle's own: skip, don't error.
            report.sat_outcomes = set()
            report.sat_overflow = f"SAT mining overflow: {exc}"
    return report
