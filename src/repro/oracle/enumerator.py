"""Stage 2 of the operational oracle: exhaustive outcome enumeration.

This is an independent, *explicit-state* implementation of the memory-model
axioms of Section 2.3 — the same switches the SAT encoder
(:mod:`repro.encoding.memory`) turns into clauses, re-implemented as an
operational machine that never touches the SAT stack:

* the memory order ``<M`` is built incrementally: an execution is a
  sequence of *perform* steps, one per access, and the order in which
  accesses are performed *is* ``<M`` (a total order, exactly like the
  encoder's antisymmetric + transitive order variables);
* an access may perform only when every access that the model orders
  before it (preserved program order, the same-address store-order axiom,
  fences, atomic-block program order, "initialization happens first") has
  already performed;
* atomic blocks exclude other-thread accesses while partially performed,
  and under the Seriality model whole invocations do (the operation
  atomicity used to mine specifications);
* a performing load reads the *last* store to its address that already
  performed — unless store forwarding is on and a program-order-earlier
  store of its own thread is still pending in the store buffer, in which
  case it reads the newest such pending store (the ``<M``-maximal visible
  store of the paper's value axiom: pending stores perform later and are
  therefore ``<M``-greater than everything already performed);
* a store whose value expression mentions loads that have not yet
  performed (possible on Relaxed, where value dependencies are not
  ordered) *guesses* the value from the bounded domain; the guess is
  checked when the load finally performs, and mismatching branches are
  pruned.  This makes the enumerator complete for the encoder's
  out-of-thin-air executions (a load-buffering cycle with copied values)
  instead of silently missing them.

States reached by different interleavings but with the same performed set,
memory view and token bindings have the same futures, so they are memoised;
the search is exhaustive yet far below ``n!``.  The memo key is three
packed integers (performed-set bitmask, memory view, bindings) built by
flat loops over fixed per-run bit slots — canonical without sorting, and
far cheaper than the tuple-of-sorted-tuples key it replaces, since key
construction runs once per explored state.

Everything that exceeds a budget (trace steps, explored states, value
domains) or falls outside the supported fragment yields an
``INCONCLUSIVE`` :class:`OracleResult` rather than an exception or a wrong
verdict — the differential harness skips those programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from repro.core import limits
from repro.encoding.testprogram import INIT_THREAD, CompiledTest
from repro.lsl.values import is_undef
from repro.memorymodel.base import MemoryModel, get_model
from repro.oracle.trace import (
    AccessEvent,
    OracleUnsupported,
    ProgramTrace,
    Token,
    TraceExtractor,
    TraceLimitExceeded,
    Unresolved,
    eval_expr,
    expr_tokens,
)

#: Verdict statuses.
OK = "ok"
INCONCLUSIVE = "inconclusive"


class _BudgetExceeded(Exception):
    pass


@dataclass
class OracleResult:
    """Outcome of one exhaustive enumeration.

    ``outcomes`` is the set of observation vectors (same slot order as
    :meth:`repro.encoding.formula.EncodedTest.decode_observation`) reachable
    under the model.  ``final_memories`` (if requested) collects the final
    memory image of every execution: a tuple of ``(location, value)`` pairs
    where ``value`` is ``None`` for an untouched havoc'd cell.
    """

    status: str
    model: str
    outcomes: set[tuple[int, ...]] = field(default_factory=set)
    final_memories: set[tuple[tuple[int, int | None], ...]] | None = None
    #: Per-location value domain of untouched havoc'd cells (``None`` image
    #: entries): ``None`` means the full ``value_mask`` range.  Only
    #: populated when final memories are recorded.
    final_domains: dict[int, frozenset[int] | None] = field(
        default_factory=dict
    )
    value_mask: int = 0
    reason: str = ""
    traces: int = 0
    nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK

    def allows(self, observation: tuple[int, ...]) -> bool:
        if not self.ok:
            raise RuntimeError(
                f"oracle was inconclusive ({self.reason}); no verdict"
            )
        return tuple(observation) in self.outcomes

    def allows_final_memory(self, wanted: dict[int, int]) -> bool:
        """Is there an execution whose final memory matches ``wanted``
        (a location -> value constraint on the interesting cells)?

        Default-initial-value semantics, pinned: a location a recorded
        execution never touched keeps its initial value — a concrete
        initial or zero policy is stored in the image directly; a havoc'd
        initial is stored as ``None`` and matches exactly the values of the
        location's havoc domain (every such value is realized by some
        execution).  Asking about a location that is not part of the image
        at all is a caller bug and raises ``KeyError`` instead of silently
        deciding either way.
        """
        if self.final_memories is None:
            raise RuntimeError("enumerated without record_final_memory=True")
        if not self.ok:
            raise RuntimeError(
                f"oracle was inconclusive ({self.reason}); no verdict"
            )
        for memory in self.final_memories:
            image = dict(memory)
            if all(
                self._final_value_matches(image, loc, value)
                for loc, value in wanted.items()
            ):
                return True
        return False

    def _final_value_matches(
        self, image: dict[int, int | None], location: int, value: int
    ) -> bool:
        if location not in image:
            raise KeyError(
                f"location {location} is not part of the final memory image"
            )
        current = image[location]
        if current is not None:
            return current == value
        # Untouched havoc'd cell: its final value is its unconstrained
        # initial value, free over the location's domain.
        domain = self.final_domains.get(location)
        if domain is None:
            return 0 <= value <= self.value_mask
        return value in domain


def enumerate_outcomes(
    compiled: CompiledTest,
    model: MemoryModel | str,
    max_steps: int = 100_000,
    max_nodes: int = 400_000,
    max_domain: int = 64,
    record_final_memory: bool = False,
) -> OracleResult:
    """Enumerate every outcome of ``compiled`` allowed by ``model``.

    Budgets: ``max_steps`` bounds trace extraction, ``max_nodes`` bounds
    explored enumeration states, ``max_domain`` bounds the value domain
    used when a token must be guessed (``2^width`` must fit).  Breaching
    any of them returns an ``INCONCLUSIVE`` result.
    """
    model = get_model(model)
    result = OracleResult(
        status=OK,
        model=model.name,
        final_memories=set() if record_final_memory else None,
    )
    try:
        traces = TraceExtractor(compiled, max_steps=max_steps).traces()
    except (OracleUnsupported, TraceLimitExceeded) as exc:
        result.status = INCONCLUSIVE
        result.reason = str(exc)
        return result
    result.traces = len(traces)
    enumerator = _Enumerator(
        compiled, model, max_nodes=max_nodes, max_domain=max_domain,
        record_final_memory=record_final_memory,
    )
    result.value_mask = enumerator.mask
    for trace in traces:
        try:
            enumerator.run(trace, result)
        except (OracleUnsupported, TraceLimitExceeded) as exc:
            result.status = INCONCLUSIVE
            result.reason = str(exc)
            break
        except _BudgetExceeded:
            result.status = INCONCLUSIVE
            result.reason = f"exceeded {max_nodes} enumeration states"
            break
    result.nodes = enumerator.nodes
    return result


class _Enumerator:
    """Depth-first enumeration of the memory orders of one trace."""

    def __init__(
        self,
        compiled: CompiledTest,
        model: MemoryModel,
        max_nodes: int,
        max_domain: int,
        record_final_memory: bool,
    ) -> None:
        self.compiled = compiled
        self.model = model
        self.max_nodes = max_nodes
        self.max_domain = max_domain
        self.record_final_memory = record_final_memory
        self.nodes = 0
        width = max(compiled.ranges.width(), 1)
        self.mask = (1 << width) - 1
        if (1 << width) > max_domain:
            # Guessed tokens range over the full bit-vector domain; refuse
            # rather than explode (or silently under-approximate).
            self.domain_size = None
        else:
            self.domain_size = 1 << width

    # -------------------------------------------------------------- per trace

    def run(self, trace: ProgramTrace, result: OracleResult) -> None:
        self.trace = trace
        self.events = trace.events
        self.n = len(self.events)
        self._prepare_structure(trace)
        self._init_tokens: dict[int, Token] = {}
        self._visited: set = set()
        self._result = result
        # Memo-key packing state: every location/token gets a bit slot of
        # ``stride`` bits on first sight (first-seen order is deterministic
        # within a run, which is all canonicality needs); a slot holds
        # ``value + 1`` so absence (0) differs from a bound/stored 0.
        self._stride = self.mask.bit_length() + 1
        self._loc_shift: dict[int, int] = {}
        self._token_shift: dict[Token, int] = {}
        self._dfs(0, {}, {})

    def _prepare_structure(self, trace: ProgramTrace) -> None:
        model = self.model
        by_thread: dict[int, list[AccessEvent]] = {}
        for event in self.events:
            by_thread.setdefault(event.thread, []).append(event)
        for members in by_thread.values():
            members.sort(key=lambda e: e.seq)
        self.by_thread = by_thread

        preds: list[int] = [0] * self.n  # predecessor bitmasks
        for members in by_thread.values():
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    ordered = (
                        first.thread == INIT_THREAD
                        or model.preserves(first.kind, second.kind)
                        or (
                            model.same_address_store_order
                            and second.is_store
                            and first.addr == second.addr
                        )
                        or (
                            first.atomic_group is not None
                            and first.atomic_group == second.atomic_group
                        )
                    )
                    if ordered:
                        preds[second.eid] |= 1 << first.eid
        for fence in trace.fences:
            members = by_thread.get(fence.thread, [])
            before = [
                e for e in members
                if e.seq < fence.seq and e.kind in fence.kind.orders_before
            ]
            after = [
                e for e in members
                if e.seq > fence.seq and e.kind in fence.kind.orders_after
            ]
            for second in after:
                for first in before:
                    preds[second.eid] |= 1 << first.eid
        self.preds = preds

        self.init_mask = 0
        for event in self.events:
            if event.thread == INIT_THREAD:
                self.init_mask |= 1 << event.eid

        #: invocation / atomic-group member masks for the dynamic rules.
        self.invocation_masks: dict[int, int] = {}
        self.group_masks: dict[int, tuple[int, int]] = {}  # gid -> (mask, thread)
        for event in self.events:
            self.invocation_masks[event.invocation] = (
                self.invocation_masks.get(event.invocation, 0) | 1 << event.eid
            )
            if event.atomic_group is not None:
                mask, _ = self.group_masks.get(
                    event.atomic_group, (0, event.thread)
                )
                self.group_masks[event.atomic_group] = (
                    mask | 1 << event.eid, event.thread
                )

        #: per-load forwarding candidates (program-order-earlier same-thread
        #: same-address stores), newest first.
        self.forward_candidates: dict[int, list[AccessEvent]] = {}
        if model.store_forwarding:
            for members in by_thread.values():
                for event in members:
                    if not event.is_load:
                        continue
                    candidates = [
                        s for s in members
                        if s.is_store and s.seq < event.seq
                        and s.addr == event.addr
                    ]
                    if candidates:
                        if not model.same_address_store_order and len(candidates) > 1:
                            raise OracleUnsupported(
                                "store forwarding without the same-address "
                                "store-order axiom is ambiguous; not supported"
                            )
                        candidates.sort(key=lambda s: s.seq, reverse=True)
                        self.forward_candidates[event.eid] = candidates

    # ------------------------------------------------------------------- DFS

    def _dfs(self, mask: int, memory: dict[int, int], bindings: dict) -> None:
        self.nodes += 1
        if self.nodes > self.max_nodes:
            raise _BudgetExceeded()
        if self.nodes & 1023 == 0:
            limits.check_deadline()
        stride = self._stride
        max_value = self.mask
        packable = True
        mem_key = 0
        loc_shift = self._loc_shift
        for loc, value in memory.items():
            if not 0 <= value <= max_value:
                packable = False
                break
            shift = loc_shift.get(loc)
            if shift is None:
                shift = len(loc_shift) * stride
                loc_shift[loc] = shift
            mem_key |= (value + 1) << shift
        bind_key = 0
        if packable:
            token_shift = self._token_shift
            for token, value in bindings.items():
                if not 0 <= value <= max_value:
                    packable = False
                    break
                shift = token_shift.get(token)
                if shift is None:
                    shift = len(token_shift) * stride
                    token_shift[token] = shift
                bind_key |= (value + 1) << shift
        if packable:
            key = (mask, mem_key, bind_key)
        else:
            # Out-of-range value (defensive; eval_expr masks everything):
            # fall back to the canonical-by-sorting tuple key.
            key = (
                mask,
                tuple(sorted(memory.items())),
                tuple(sorted((t.index, v) for t, v in bindings.items())),
            )
        if key in self._visited:
            return
        self._visited.add(key)
        if mask == (1 << self.n) - 1:
            self._complete(memory, bindings)
            return

        init_pending = self.init_mask & ~mask
        open_groups = [
            thread for gmask, thread in self.group_masks.values()
            if gmask & mask and gmask & ~mask
        ]
        open_invocation = None
        if self.model.operation_atomicity:
            for invocation, imask in self.invocation_masks.items():
                if imask & mask and imask & ~mask:
                    open_invocation = invocation
                    break

        for event in self.events:
            bit = 1 << event.eid
            if mask & bit:
                continue
            if self.preds[event.eid] & ~mask:
                continue
            if init_pending and event.thread != INIT_THREAD:
                continue
            if open_invocation is not None and event.invocation != open_invocation:
                continue
            if open_groups and any(t != event.thread for t in open_groups):
                continue
            self._perform(event, mask | bit, memory, bindings)

    def _perform(self, event: AccessEvent, new_mask: int,
                 memory: dict[int, int], bindings: dict) -> None:
        if event.is_store:
            for new_bindings, value in self._resolve(event.value, bindings):
                if not self._constraints_hold(new_bindings):
                    continue
                self._dfs(new_mask, {**memory, event.addr: value}, new_bindings)
            return

        # A load: find the <M-maximal visible store (paper's value axiom).
        pending = [
            s for s in self.forward_candidates.get(event.eid, ())
            if not new_mask & (1 << s.eid)
        ]
        if pending:
            # Store-queue forwarding: the newest pending program-order-
            # earlier store is visible and performs later than everything
            # already performed, so it is the <M-maximal visible store.
            variants = self._resolve(pending[0].value, bindings)
        elif event.addr in memory:
            variants = [(bindings, memory[event.addr])]
        else:
            variants = self._initial_values(event.addr, bindings)
        token = event.value
        for new_bindings, value in variants:
            bound = new_bindings.get(token)
            if bound is not None:
                if bound != value:
                    continue  # a guessed value turned out wrong: prune
            else:
                new_bindings = {**new_bindings, token: value}
            if not self._constraints_hold(new_bindings):
                continue
            self._dfs(new_mask, memory, new_bindings)

    # -------------------------------------------------------------- plumbing

    def _havoc_domain(self, location: int) -> frozenset[int] | None:
        """The value domain of a havoc'd location's initial value, or
        ``None`` for the full machine-word range."""
        domain = self.compiled.ranges.location_domain(location)
        if domain is not None:
            valid = frozenset(v for v in domain if v <= self.mask)
            domain = valid or None
        return domain

    def _domain(self, token: Token) -> range | list[int]:
        if token.domain is not None:
            return sorted(token.domain)
        if self.domain_size is None:
            raise OracleUnsupported(
                f"guessing {token!r} needs a domain of 2^width > "
                f"{self.max_domain} values"
            )
        return range(self.domain_size)

    def _resolve(self, expr, bindings: dict):
        """All ``(bindings, value)`` completions of an expression, guessing
        unbound tokens over the bounded domain."""
        try:
            return [(bindings, eval_expr(expr, bindings, self.mask))]
        except Unresolved as exc:
            token = exc.token
        out = []
        for guess in self._domain(token):
            out.extend(self._resolve(expr, {**bindings, token: guess}))
        return out

    def _initial_values(self, location: int, bindings: dict):
        """The initial value of a location, mirroring
        :meth:`repro.encoding.formula.EncodingContext.initial_value`."""
        info = self.compiled.layout.info(location)
        if not is_undef(info.initial):
            return [(bindings, int(info.initial) & self.mask)]
        policy = self.trace.policies.get(location, "havoc")
        if policy == "zero":
            return [(bindings, 0)]
        token = self._init_tokens.get(location)
        if token is None:
            token = Token(
                -location, "init", name=f"init_loc{location}",
                domain=self._havoc_domain(location),
            )
            self._init_tokens[location] = token
        if token in bindings:
            return [(bindings, bindings[token])]
        return [
            ({**bindings, token: value}, value)
            for value in self._domain(token)
        ]

    def _constraints_hold(self, bindings: dict) -> bool:
        """Check every path constraint that is now evaluable."""
        for constraint in self.trace.constraints:
            try:
                if not eval_expr(constraint, bindings, self.mask):
                    return False
            except Unresolved:
                continue
        return True

    # ------------------------------------------------------------ completion

    def _complete(self, memory: dict[int, int], bindings: dict) -> None:
        # Any tokens still unbound (free values never forced by a load, or
        # havoc'd initials only visible through observations) range over
        # their full domains — same as the encoder's unconstrained fresh
        # bit-vectors.
        unbound: list[Token] = []
        seen: set[Token] = set()
        for expr in list(self.trace.observations) + list(self.trace.constraints):
            for token in expr_tokens(expr):
                if token not in bindings and token not in seen:
                    seen.add(token)
                    unbound.append(token)
        domains = [list(self._domain(token)) for token in unbound]
        for values in product(*domains) if domains else [()]:
            full = {**bindings, **dict(zip(unbound, values))}
            if not self._constraints_hold(full):
                continue
            outcome = tuple(
                eval_expr(expr, full, self.mask)
                for expr in self.trace.observations
            )
            self._result.outcomes.add(outcome)
            if self._result.final_memories is not None:
                self._result.final_memories.add(
                    self._final_memory(memory, full)
                )

    def _final_memory(self, memory: dict[int, int],
                      bindings: dict) -> tuple[tuple[int, int | None], ...]:
        image = []
        layout = self.compiled.layout
        for location in layout.valid_indices():
            if location in memory:
                image.append((location, memory[location]))
                continue
            info = layout.info(location)
            if not is_undef(info.initial):
                image.append((location, int(info.initial) & self.mask))
                continue
            if self.trace.policies.get(location, "havoc") == "zero":
                image.append((location, 0))
                continue
            token = self._init_tokens.get(location)
            value = bindings.get(token) if token is not None else None
            if value is None:
                # Record what the unconstrained initial may range over, so
                # allows_final_memory can match None entries exactly.
                self._result.final_domains[location] = (
                    self._havoc_domain(location)
                )
            image.append((location, value))
        return tuple(image)
