"""Stage 1 of the operational oracle: per-thread symbolic trace extraction.

The enumerator (:mod:`repro.oracle.enumerator`) needs, for every thread of a
:class:`~repro.encoding.testprogram.CompiledTest`, the *flat sequence of
memory events* the thread issues: loads, stores and fences, in program
order, with concrete addresses.  This module extracts that sequence by
executing each thread's unrolled code with a small symbolic interpreter:

* register computations fold eagerly to concrete integers whenever their
  operands are concrete (the common case — addresses and constants);
* every load introduces a fresh *token*, an opaque placeholder whose value
  the enumerator decides when it places the load in the memory order;
* store values, ``assume`` conditions and observation registers become
  expressions over those tokens;
* ``choose`` statements fork the extraction, one trace per combination of
  choices (the paper draws unspecified test arguments from ``{0, 1}``).

The extractor deliberately supports only the *litmus-shaped* fragment of
LSL: control flow (``break``/``continue`` conditions) and addresses must be
concrete at extraction time.  A program outside the fragment — a data type
with loops branching on loaded values — raises :class:`OracleUnsupported`,
which the enumerator surfaces as an ``INCONCLUSIVE`` verdict instead of a
wrong answer.  This mirrors the scope split of the paper: litmus tests are
decidable by exhaustive enumeration (Section 2.3.3), full data types need
the SAT encoding (Section 3).

Arithmetic matches the *encoder's* bounded semantics (unsigned, modulo
``2^width`` with the width chosen by the range analysis), not the unbounded
serial interpreter — the point of the oracle is to differentially test the
encoding, so both sides must agree on the value domain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.testprogram import CompiledTest
from repro.lsl.instructions import (
    Alloc,
    Assert,
    Assume,
    Atomic,
    Block,
    BreakIf,
    Call,
    Choose,
    ConstAssign,
    ContinueIf,
    Fence,
    FenceKind,
    Free,
    Load,
    Observe,
    PrimOp,
    PrimitiveOp,
    Statement,
    Store,
    iter_statements,
)
from repro.lsl.values import is_undef


class OracleUnsupported(Exception):
    """The program lies outside the fragment the oracle can enumerate."""


class TraceLimitExceeded(Exception):
    """Trace extraction exceeded its step budget (possible unbounded loop)."""


class _Infeasible(Exception):
    """An ``assume`` failed concretely: this choice path has no executions."""


class Token:
    """An opaque placeholder for a value the enumerator decides later.

    ``origin`` is ``"load"`` (bound when the load is placed in the memory
    order), ``"free"`` (an unconstrained value: an uninitialized register or
    an ``undef`` constant, matching the encoder's fresh bit-vectors) or
    ``"init"`` (the havoc'd initial value of a heap cell, shared by every
    load of that cell).  ``domain`` optionally restricts the values a
    non-load token may take (the encoder's location-domain constraint).
    """

    __slots__ = ("index", "origin", "domain", "name")

    def __init__(self, index: int, origin: str, name: str = "",
                 domain: frozenset[int] | None = None) -> None:
        self.index = index
        self.origin = origin
        self.domain = domain
        self.name = name

    def __repr__(self) -> str:
        return f"<{self.origin}:{self.name or self.index}>"


#: An expression: a concrete int, a Token, or ("prim", op, operand tuple).
Expr = object


class Unresolved(Exception):
    """Expression evaluation hit an unbound token."""

    def __init__(self, token: Token) -> None:
        super().__init__(repr(token))
        self.token = token


def eval_expr(expr: Expr, bindings: dict, mask: int) -> int:
    """Evaluate an expression under token bindings, modulo ``mask + 1``.

    Mirrors :class:`repro.encoding.symbolic.ThreadSymbolicExecutor`: unsigned
    fixed-width arithmetic (add/sub wrap), comparisons and boolean operators
    produce 0/1.  Raises :class:`Unresolved` on the first unbound token.
    """
    if isinstance(expr, int):
        return expr & mask
    if isinstance(expr, Token):
        try:
            return bindings[expr] & mask
        except KeyError:
            raise Unresolved(expr) from None
    _, op, args = expr
    values = [eval_expr(a, bindings, mask) for a in args]
    if op is PrimitiveOp.MOVE:
        return values[0]
    if op is PrimitiveOp.ADD:
        return (values[0] + values[1]) & mask
    if op is PrimitiveOp.SUB:
        return (values[0] - values[1]) & mask
    if op is PrimitiveOp.EQ:
        return int(values[0] == values[1])
    if op is PrimitiveOp.NE:
        return int(values[0] != values[1])
    if op is PrimitiveOp.LT:
        return int(values[0] < values[1])
    if op is PrimitiveOp.LE:
        return int(values[0] <= values[1])
    if op is PrimitiveOp.GT:
        return int(values[0] > values[1])
    if op is PrimitiveOp.GE:
        return int(values[0] >= values[1])
    if op is PrimitiveOp.AND:
        return int(bool(values[0]) and bool(values[1]))
    if op is PrimitiveOp.OR:
        return int(bool(values[0]) or bool(values[1]))
    if op is PrimitiveOp.NOT:
        return int(not values[0])
    raise TypeError(f"unknown primitive {op}")  # pragma: no cover


def expr_tokens(expr: Expr, out: set | None = None) -> set:
    """The set of tokens occurring in an expression."""
    if out is None:
        out = set()
    if isinstance(expr, Token):
        out.add(expr)
    elif isinstance(expr, tuple):
        for arg in expr[2]:
            expr_tokens(arg, out)
    return out


@dataclass
class AccessEvent:
    """One dynamic load or store of a trace, in thread program order."""

    eid: int                    # dense index within the trace
    thread: int
    seq: int                    # program-order position (shared with fences)
    kind: str                   # "load" | "store"
    addr: int                   # concrete location index
    value: Expr                 # Token for loads, arbitrary Expr for stores
    invocation: int             # global invocation index (seriality groups)
    atomic_group: int | None
    label: str

    @property
    def is_load(self) -> bool:
        return self.kind == "load"

    @property
    def is_store(self) -> bool:
        return self.kind == "store"


@dataclass
class FenceEvent:
    """A fence of a trace, positioned by ``seq`` between its thread's
    accesses (same counter as the access ``seq``)."""

    thread: int
    seq: int
    kind: FenceKind


@dataclass
class ProgramTrace:
    """One choice-resolved execution skeleton of a compiled test.

    Everything the enumerator needs: the access/fence events per thread,
    the path constraints (``assume`` conditions that must be non-zero), the
    observation expressions (one per observation slot, in the encoder's
    slot order), and the heap-cell initialization policies.
    """

    events: list[AccessEvent]
    fences: list[FenceEvent]
    constraints: list[Expr]
    observations: list[Expr]
    policies: dict[int, str]    # location -> "zero" | "havoc" | "undef"
    choices: tuple[int, ...]    # the Choose values taken on this path


class _ThreadState:
    __slots__ = ("thread", "regs", "seq", "atomic_stack")

    def __init__(self, thread: int) -> None:
        self.thread = thread
        self.regs: dict[str, Expr] = {}
        self.seq = 0
        self.atomic_stack: list[int] = []


_NORMAL = ("normal", None)


class TraceExtractor:
    """Extracts every :class:`ProgramTrace` of a compiled test.

    One trace per combination of ``choose`` outcomes; paths whose
    assumptions fail concretely are dropped (they admit no executions).
    """

    def __init__(self, compiled: CompiledTest, max_steps: int = 100_000) -> None:
        self.compiled = compiled
        self.max_steps = max_steps
        self._mask_value = (1 << max(compiled.ranges.width(), 1)) - 1

    def traces(self) -> list[ProgramTrace]:
        found: list[ProgramTrace] = []
        #: Worklist of choice-index prefixes still to explore.
        stack: list[list[int]] = [[]]
        while stack:
            prefix = stack.pop()
            trace, taken, arities = self._run(prefix)
            # Fork on every choice point discovered beyond the prescribed
            # prefix (the run itself took alternative 0 there).
            for position in range(len(prefix), len(taken)):
                for alternative in range(1, arities[position]):
                    stack.append(taken[:position] + [alternative])
            if trace is not None:
                found.append(trace)
        return found

    # ------------------------------------------------------------- one path

    def _run(self, prescribed: list[int]):
        self._steps = 0
        self._token_counter = 0
        self._atomic_counter = 0
        self._event_counter = 0
        self._prescribed = prescribed
        self._taken: list[int] = []
        self._arities: list[int] = []
        self._choice_values: list[int] = []
        events: list[AccessEvent] = []
        fences: list[FenceEvent] = []
        constraints: list[Expr] = []
        policies: dict[int, str] = {}
        self._events = events
        self._fences = fences
        self._constraints = constraints
        self._policies = policies

        threads_by_index = self.compiled.threads()
        states: dict[int, _ThreadState] = {}
        try:
            for thread_index in sorted(threads_by_index):
                state = _ThreadState(thread_index)
                states[thread_index] = state
                for invocation in threads_by_index[thread_index]:
                    self._current_invocation = invocation.global_index
                    self._exec_body(invocation.statements, state)
        except _Infeasible:
            return None, self._taken, self._arities

        observations: list[Expr] = []
        for invocation in self.compiled.invocations:
            state = states[invocation.thread]
            for reg in invocation.observable_regs:
                observations.append(self._read(state, reg))
        trace = ProgramTrace(
            events=events,
            fences=fences,
            constraints=constraints,
            observations=observations,
            policies=policies,
            choices=tuple(self._choice_values),
        )
        return trace, self._taken, self._arities

    # ------------------------------------------------------------ execution

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise TraceLimitExceeded(
                f"trace extraction exceeded {self.max_steps} steps"
            )

    def _fresh_token(self, origin: str, name: str = "",
                     domain: frozenset[int] | None = None) -> Token:
        self._token_counter += 1
        return Token(self._token_counter, origin, name=name, domain=domain)

    def _read(self, state: _ThreadState, reg: str) -> Expr:
        value = state.regs.get(reg)
        if value is None:
            # Matches the encoder: an unassigned register is a fresh,
            # unconstrained value (created once and cached).
            value = self._fresh_token("free", name=f"uninit_{reg}")
            state.regs[reg] = value
        return value

    def _concrete(self, state: _ThreadState, reg: str, what: str) -> int:
        value = self._read(state, reg)
        try:
            return eval_expr(value, {}, self._mask())
        except Unresolved as exc:
            raise OracleUnsupported(
                f"{what} depends on {exc.token!r}; the oracle only "
                "enumerates programs whose control flow and addresses are "
                "concrete"
            ) from None

    def _mask(self) -> int:
        return self._mask_value

    def _exec_body(self, body, state: _ThreadState):
        for index, stmt in enumerate(body):
            signal = self._exec_stmt(stmt, state)
            if signal[0] != "normal":
                # The SAT encoding still emits the statements we are about
                # to skip, as accesses with (semantically false) guards.
                # That is equivalent only while no *memory event* is
                # skipped: a guard-false access can transitively force
                # orderings (via same-address or fence axioms) that the
                # trace cannot see.  Refuse the program instead.
                self._check_skipped(body[index + 1:])
                return signal
        return _NORMAL

    @staticmethod
    def _check_skipped(rest) -> None:
        for stmt in iter_statements(rest):
            if isinstance(stmt, (Load, Store, Fence)):
                raise OracleUnsupported(
                    "a taken break/continue skips memory operations; the "
                    "oracle only enumerates straight-line memory event "
                    "sequences"
                )

    def _exec_block(self, block: Block, state: _ThreadState):
        while True:
            self._tick()
            signal = self._exec_body(block.body, state)
            kind, tag = signal
            if kind == "continue" and tag == block.tag:
                continue
            if kind == "break" and tag == block.tag:
                return _NORMAL
            return signal

    def _exec_stmt(self, stmt: Statement, state: _ThreadState):
        self._tick()
        if isinstance(stmt, ConstAssign):
            if is_undef(stmt.value):
                state.regs[stmt.dst] = self._fresh_token(
                    "free", name=f"undef_{stmt.dst}"
                )
            else:
                state.regs[stmt.dst] = int(stmt.value) & self._mask()
        elif isinstance(stmt, PrimOp):
            state.regs[stmt.dst] = self._prim(stmt, state)
        elif isinstance(stmt, Load):
            self._load(stmt, state)
        elif isinstance(stmt, Store):
            self._store(stmt, state)
        elif isinstance(stmt, Fence):
            state.seq += 1
            self._fences.append(FenceEvent(state.thread, state.seq, stmt.kind))
        elif isinstance(stmt, Atomic):
            self._atomic_counter += 1
            state.atomic_stack.append(self._atomic_counter)
            try:
                return self._exec_body(stmt.body, state)
            finally:
                state.atomic_stack.pop()
        elif isinstance(stmt, Block):
            return self._exec_block(stmt, state)
        elif isinstance(stmt, BreakIf):
            if self._concrete(state, stmt.cond, "a break condition"):
                return ("break", stmt.tag)
        elif isinstance(stmt, ContinueIf):
            if self._concrete(state, stmt.cond, "a continue condition"):
                return ("continue", stmt.tag)
        elif isinstance(stmt, Assert):
            # Assertions are *checked*, not assumed, by the SAT encoding
            # (EncodedTest.assertions); they do not restrict which
            # observations are reachable, so the oracle ignores them too.
            pass
        elif isinstance(stmt, Assume):
            condition = self._read(state, stmt.cond)
            try:
                if not eval_expr(condition, {}, self._mask()):
                    raise _Infeasible()
            except Unresolved:
                self._constraints.append(condition)
        elif isinstance(stmt, Call):
            raise OracleUnsupported("calls must be inlined before enumeration")
        elif isinstance(stmt, Alloc):
            base = self.compiled.allocation.base_for(stmt)
            for offset in range(max(1, stmt.num_cells)):
                self._policies.setdefault(base + offset, stmt.init)
            state.regs[stmt.dst] = base
        elif isinstance(stmt, Choose):
            state.regs[stmt.dst] = self._choose(stmt)
        elif isinstance(stmt, (Free, Observe)):
            pass
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {stmt!r}")
        return _NORMAL

    # ----------------------------------------------------------- statements

    def _choose(self, stmt: Choose) -> int:
        position = len(self._taken)
        index = (
            self._prescribed[position]
            if position < len(self._prescribed)
            else 0
        )
        self._taken.append(index)
        self._arities.append(len(stmt.choices))
        value = stmt.choices[index]
        self._choice_values.append(value)
        return value & self._mask()

    def _load(self, stmt: Load, state: _ThreadState) -> None:
        addr = self._concrete(state, stmt.addr, "a load address")
        self._check_address(addr, "load")
        token = self._fresh_token("load", name=stmt.dst)
        state.seq += 1
        self._event_counter += 1
        self._events.append(AccessEvent(
            eid=self._event_counter - 1,
            thread=state.thread,
            seq=state.seq,
            kind="load",
            addr=addr,
            value=token,
            invocation=self._current_invocation,
            atomic_group=state.atomic_stack[-1] if state.atomic_stack else None,
            label=f"t{state.thread}: {stmt.dst} = *{stmt.addr}",
        ))
        state.regs[stmt.dst] = token

    def _store(self, stmt: Store, state: _ThreadState) -> None:
        addr = self._concrete(state, stmt.addr, "a store address")
        self._check_address(addr, "store")
        value = self._read(state, stmt.src)
        state.seq += 1
        self._event_counter += 1
        self._events.append(AccessEvent(
            eid=self._event_counter - 1,
            thread=state.thread,
            seq=state.seq,
            kind="store",
            addr=addr,
            value=value,
            invocation=self._current_invocation,
            atomic_group=state.atomic_stack[-1] if state.atomic_stack else None,
            label=f"t{state.thread}: *{stmt.addr} = {stmt.src}",
        ))

    def _check_address(self, addr: int, what: str) -> None:
        if addr <= 0 or addr >= self.compiled.layout.num_locations:
            raise OracleUnsupported(
                f"{what} uses invalid location {addr} (null or out of range)"
            )

    def _prim(self, stmt: PrimOp, state: _ThreadState) -> Expr:
        operands = tuple(self._read(state, reg) for reg in stmt.args)
        expr: Expr = ("prim", stmt.op, operands)
        try:
            return eval_expr(expr, {}, self._mask())
        except Unresolved:
            return expr
