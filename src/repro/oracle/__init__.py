"""Operational memory-model oracle (an independent check of the encoder).

An explicit-state enumerator of the Section 2.3 axioms that shares nothing
with the SAT stack, plus a differential harness comparing its outcome sets
against the mined outcomes of the SAT encoding.  See
``docs/architecture.md`` ("Differential oracle") and the fuzzer built on
top of it in :mod:`repro.fuzz`.
"""

from repro.oracle.trace import (
    OracleUnsupported,
    ProgramTrace,
    TraceExtractor,
    TraceLimitExceeded,
)
from repro.oracle.enumerator import (
    INCONCLUSIVE,
    OK,
    OracleResult,
    enumerate_outcomes,
)
from repro.oracle.differ import (
    DEFAULT_ENGINES,
    ENGINES,
    DifferentialReport,
    EngineResult,
    SatMiningOverflow,
    differential_check,
    mine_sat_outcomes,
    parse_engines,
)

__all__ = [
    "DEFAULT_ENGINES",
    "ENGINES",
    "EngineResult",
    "parse_engines",
    "OracleUnsupported",
    "ProgramTrace",
    "TraceExtractor",
    "TraceLimitExceeded",
    "INCONCLUSIVE",
    "OK",
    "OracleResult",
    "enumerate_outcomes",
    "DifferentialReport",
    "SatMiningOverflow",
    "differential_check",
    "mine_sat_outcomes",
]
