"""Command line interface (the ``checkfence`` entry point).

Examples::

    checkfence list
    checkfence check --impl msn-unfenced --test T0 --model relaxed
    checkfence check --impl msn --test T0 --solver dimacs:kissat
    checkfence sweep --impl msn --test T0 --models serial,sc,tso,pso,relaxed
    checkfence spec --impl msn --test T0
    checkfence litmus --model relaxed
"""

from __future__ import annotations

import argparse
import sys

from repro.core.checker import CheckFence, CheckOptions
from repro.core.session import CheckSession
from repro.datatypes.registry import (
    TABLE1,
    available_implementations,
    category_of,
    get_implementation,
)
from repro.harness.catalog import get_test, test_names
from repro.harness.reporting import format_table
from repro.litmus.catalog import available_litmus_tests, observation_allowed
from repro.memorymodel.base import available_models, get_model


def _cmd_list(_args) -> int:
    print("Implementations (Table 1 plus variants):")
    rows = []
    for name in available_implementations():
        rows.append((name, category_of(name)))
    print(format_table(["implementation", "category"], rows))
    print()
    print("Memory models:", ", ".join(m.name for m in available_models()))
    print()
    for category in ("queue", "set", "deque"):
        print(f"{category} tests: {', '.join(test_names(category))}")
    return 0


def _cmd_table1(_args) -> int:
    print(format_table(["name", "data type", "description"], TABLE1))
    return 0


def _cmd_check(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    options = CheckOptions(
        specification_method=args.spec_method,
        use_range_analysis=not args.no_range_analysis,
        lazy_loop_bounds=args.lazy_bounds,
        default_loop_bound=args.bound,
        solver_backend=args.solver,
    )
    checker = CheckFence(implementation, options)
    result = checker.check(test, get_model(args.model))
    print(result.summary())
    if result.stats.solver_backend:
        if result.stats.solver_counters_available:
            print(
                f"solver: {result.stats.solver_backend} "
                f"({result.stats.solver_decisions} decisions, "
                f"{result.stats.solver_conflicts} conflicts, "
                f"{result.stats.solver_restarts} restarts)"
            )
        else:
            print(
                f"solver: {result.stats.solver_backend} "
                "(external backend; counters unavailable)"
            )
    return 0 if result.passed else 1


def _cmd_sweep(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    options = CheckOptions(
        specification_method=args.spec_method,
        solver_backend=args.solver,
    )
    session = CheckSession(implementation, options)
    models = [get_model(name.strip()) for name in args.models.split(",")]
    results = session.sweep(test, models)
    rows = [
        (
            r.memory_model,
            "PASS" if r.passed else "FAIL",
            r.stats.observation_set_size,
            r.stats.cnf_clauses,
            r.stats.solver_backend,
            f"{r.stats.total_seconds:.2f}s",
        )
        for r in results
    ]
    print(
        f"sweep of {args.impl} / {args.test} over "
        f"{', '.join(m.name for m in models)} "
        f"(compiled {session.cache_stats['compile']}x, "
        f"spec mined {session.cache_stats['mine']}x):"
    )
    print(format_table(
        ["model", "verdict", "spec size", "clauses", "backend", "total"], rows
    ))
    return 0 if all(r.passed for r in results) else 1


def _cmd_spec(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    checker = CheckFence(
        implementation, CheckOptions(specification_method=args.spec_method)
    )
    compiled = checker.compile(test, "serial")
    spec = checker.specification(test, compiled)
    print(
        f"observation set for {args.impl} / {args.test}: "
        f"{len(spec)} observations (mined with the {spec.method} method in "
        f"{spec.mining_seconds:.2f}s)"
    )
    for observation in sorted(spec.observations):
        print("  " + spec.describe(observation))
    return 0


def _cmd_litmus(args) -> int:
    model = get_model(args.model)
    rows = []
    for name, litmus in available_litmus_tests().items():
        if not litmus.observation:
            continue
        allowed = observation_allowed(litmus, model, backend_spec=args.solver)
        rows.append((name, litmus.observation, "allowed" if allowed else "forbidden"))
    print(f"litmus outcomes under {model.name}:")
    print(format_table(["test", "observation", "verdict"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="checkfence",
        description="CheckFence reproduction: check concurrent data types on "
        "relaxed memory models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list implementations, models, and tests")
    sub.add_parser("table1", help="print Table 1 of the paper")

    solver_help = (
        "SAT backend: auto, internal, dimacs, or dimacs:<command> "
        "(default: CHECKFENCE_SOLVER or auto)"
    )

    check_parser = sub.add_parser("check", help="run one check")
    check_parser.add_argument("--impl", required=True)
    check_parser.add_argument("--test", required=True)
    check_parser.add_argument("--model", default="relaxed")
    check_parser.add_argument("--spec-method", default="auto",
                              choices=["auto", "reference", "sat"])
    check_parser.add_argument("--bound", type=int, default=None,
                              help="default loop bound")
    check_parser.add_argument("--lazy-bounds", action="store_true",
                              help="refine loop bounds lazily (Section 3.3)")
    check_parser.add_argument("--no-range-analysis", action="store_true",
                              help="disable the range analysis (Fig. 11c)")
    check_parser.add_argument("--solver", default=None, help=solver_help)

    sweep_parser = sub.add_parser(
        "sweep",
        help="check one test under several memory models in one session "
        "(compiles and mines the specification once)",
    )
    sweep_parser.add_argument("--impl", required=True)
    sweep_parser.add_argument("--test", required=True)
    sweep_parser.add_argument(
        "--models", default="serial,sc,tso,pso,relaxed",
        help="comma-separated memory models",
    )
    sweep_parser.add_argument("--spec-method", default="auto",
                              choices=["auto", "reference", "sat"])
    sweep_parser.add_argument("--solver", default=None, help=solver_help)

    spec_parser = sub.add_parser("spec", help="mine and print an observation set")
    spec_parser.add_argument("--impl", required=True)
    spec_parser.add_argument("--test", required=True)
    spec_parser.add_argument("--spec-method", default="auto",
                             choices=["auto", "reference", "sat"])

    litmus_parser = sub.add_parser("litmus", help="evaluate the litmus catalog")
    litmus_parser.add_argument("--model", default="relaxed")
    litmus_parser.add_argument("--solver", default=None, help=solver_help)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "table1": _cmd_table1,
        "check": _cmd_check,
        "sweep": _cmd_sweep,
        "spec": _cmd_spec,
        "litmus": _cmd_litmus,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
