"""Command line interface (the ``checkfence`` entry point).

Examples::

    checkfence list
    checkfence check --impl msn-unfenced --test T0 --model relaxed
    checkfence check --impl msn --test T0 --solver dimacs:kissat
    checkfence sweep --impl msn --test T0 --models serial,sc,tso,pso,relaxed
    checkfence spec --impl msn --test T0
    checkfence litmus --model relaxed
    checkfence matrix --impls msn,ms2 --models sc,relaxed --jobs 4
    checkfence matrix --litmus --models sc,tso,pso,relaxed --jobs 2 --json -
    checkfence oracle --litmus store-buffering --model tso
    checkfence oracle --spec "x=1 r0=y | y=1 r1=x" --model sc
    checkfence synthesize --impl msn-unfenced --test T0 --model relaxed
    checkfence synthesize --spec "x=1 y=1 | r0=y r1=x" --models tso,pso,relaxed
    checkfence fuzz --budget 500 --seed 1 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.checker import CheckFence, CheckOptions
from repro.core.session import CheckSession
from repro.datatypes.registry import (
    TABLE1,
    available_implementations,
    base_implementations,
    category_of,
    describe_implementation,
    get_implementation,
)
from repro.harness.catalog import get_test, test_names
from repro.harness.matrix import (
    SHARD_AXES,
    JournalError,
    catalog_cells,
    litmus_cells,
    run_matrix,
)
from repro.harness.reporting import format_table
from repro.litmus.catalog import available_litmus_tests
from repro.memorymodel.base import available_models, get_model


def _dense_order(args) -> bool | None:
    """The --dense-order flag as a CheckOptions value: True when given,
    None otherwise so the CHECKFENCE_DENSE_ORDER fallback stays reachable."""
    return True if args.dense_order else None


def _simplify(args) -> bool | None:
    """The --no-simplify flag as a CheckOptions value: False when given,
    None otherwise so the CHECKFENCE_SIMPLIFY fallback stays reachable."""
    return False if args.no_simplify else None


def _share_encode(args) -> bool | None:
    """The --no-share-encode flag as a CheckOptions value: False when
    given, None otherwise so CHECKFENCE_SHARE_ENCODE stays reachable."""
    return False if getattr(args, "no_share_encode", False) else None


def _store(args) -> bool | None:
    """The --store / --no-store flags as a CheckOptions value; None leaves
    the CHECKFENCE_STORE fallback (default: off) reachable."""
    if getattr(args, "no_store", False):
        return False
    if getattr(args, "store", False):
        return True
    return None


def _budget(args) -> dict:
    """The --timeout / --memory-limit flags as CheckOptions kwargs; None
    leaves the CHECKFENCE_TIMEOUT / CHECKFENCE_MEMORY_LIMIT env fallbacks
    reachable."""
    return {
        "timeout": getattr(args, "timeout", None),
        "memory_limit_mb": getattr(args, "memory_limit", None),
    }


def _degraded_exit(results) -> int:
    """Exit code for a cell-result list with no hard failures: 3 when any
    cell degraded (TIMEOUT/OOM/CRASHED — the run is incomplete, which is
    neither a clean pass nor a FAIL), else 0."""
    return 3 if any(r.degraded for r in results) else 0


def _cmd_list(_args) -> int:
    print("Implementations (Table 1 plus variants):")
    rows = []
    for name in available_implementations():
        rows.append((name, category_of(name), describe_implementation(name)))
    print(format_table(["implementation", "category", "description"], rows))
    print()
    print("Memory models:", ", ".join(m.name for m in available_models()))
    print()
    for category in ("queue", "set", "deque"):
        print(f"{category} tests: {', '.join(test_names(category))}")
    return 0


def _cmd_table1(_args) -> int:
    print(format_table(["name", "data type", "description"], TABLE1))
    print()
    print("Checkable variants:")
    rows = [
        (name, describe_implementation(name))
        for name in available_implementations()
    ]
    print(format_table(["variant", "description"], rows))
    return 0


def _cmd_check(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    options = CheckOptions(
        specification_method=args.spec_method,
        use_range_analysis=not args.no_range_analysis,
        lazy_loop_bounds=args.lazy_bounds,
        default_loop_bound=args.bound,
        solver_backend=args.solver,
        dense_order=_dense_order(args),
        simplify=_simplify(args),
        share_encode=_share_encode(args),
        store=_store(args),
        **_budget(args),
    )
    checker = CheckFence(implementation, options)
    result = checker.check(test, get_model(args.model))
    print(result.summary())
    if result.stats.solver_backend:
        if result.stats.solver_counters_available:
            print(
                f"solver: {result.stats.solver_backend} "
                f"({result.stats.solver_decisions} decisions, "
                f"{result.stats.solver_conflicts} conflicts, "
                f"{result.stats.solver_restarts} restarts)"
            )
        else:
            print(
                f"solver: {result.stats.solver_backend} "
                "(external backend; counters unavailable)"
            )
    if result.passed:
        return 0
    return 3 if result.degraded else 1


def _cmd_sweep(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    options = CheckOptions(
        specification_method=args.spec_method,
        solver_backend=args.solver,
        dense_order=_dense_order(args),
        simplify=_simplify(args),
        share_encode=_share_encode(args),
        store=_store(args),
        **_budget(args),
    )
    session = CheckSession(implementation, options)
    models = [get_model(name.strip()) for name in args.models.split(",")]
    results = session.sweep(test, models)
    rows = [
        (
            r.memory_model,
            "PASS" if r.passed else "FAIL",
            r.stats.observation_set_size,
            r.stats.cnf_clauses,
            r.stats.solver_backend,
            f"{r.stats.total_seconds:.2f}s",
        )
        for r in results
    ]
    print(
        f"sweep of {args.impl} / {args.test} over "
        f"{', '.join(m.name for m in models)} "
        f"(compiled {session.cache_stats['compile']}x, "
        f"spec mined {session.cache_stats['mine']}x):"
    )
    print(format_table(
        ["model", "verdict", "spec size", "clauses", "backend", "total"], rows
    ))
    return 0 if all(r.passed for r in results) else 1


def _cmd_spec(args) -> int:
    implementation = get_implementation(args.impl)
    category = category_of(args.impl)
    test = get_test(category, args.test)
    checker = CheckFence(
        implementation, CheckOptions(specification_method=args.spec_method)
    )
    compiled = checker.compile(test, "serial")
    spec = checker.specification(test, compiled)
    print(
        f"observation set for {args.impl} / {args.test}: "
        f"{len(spec)} observations (mined with the {spec.method} method in "
        f"{spec.mining_seconds:.2f}s)"
    )
    for observation in sorted(spec.observations):
        print("  " + spec.describe(observation))
    return 0


def _cmd_litmus(args) -> int:
    model = get_model(args.model)
    matrix = run_matrix(
        litmus_cells([model.name]),
        jobs=args.jobs,
        options=CheckOptions(
            solver_backend=args.solver,
            dense_order=_dense_order(args),
            simplify=_simplify(args),
            **_budget(args),
        ),
    )
    catalog = available_litmus_tests()
    rows = [
        (r.cell.test, catalog[r.cell.test].observation, r.verdict)
        for r in matrix.results
    ]
    print(f"litmus outcomes under {model.name}:")
    print(format_table(["test", "observation", "verdict"], rows))
    for failed in matrix.errors:
        print(f"error in {failed.cell.key}: {failed.error}", file=sys.stderr)
    return 0 if not matrix.errors else 2


def _matrix_progress(done: int, total: int, result) -> None:
    print(f"[{done}/{total}] {result.cell.key}: {result.verdict}",
          file=sys.stderr)


def _emit_json(payload: dict, target: str, label: str):
    """Write a command's JSON payload (``target`` is a path or ``-``) and
    return the stream the human-readable report must use: stderr whenever
    JSON is in play, so ``--json - | jq`` always receives pure JSON."""
    text = json.dumps(payload, indent=2, default=str)
    if target == "-":
        print(text)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"{label} JSON written to {target}", file=sys.stderr)
    return sys.stderr


def _cmd_matrix(args) -> int:
    models = [name.strip() for name in args.models.split(",") if name.strip()]
    options = CheckOptions(
        specification_method=args.spec_method,
        solver_backend=args.solver,
        dense_order=_dense_order(args),
        simplify=_simplify(args),
        share_encode=_share_encode(args),
        store=_store(args),
        **_budget(args),
    )
    if args.litmus:
        cells = litmus_cells(models)
    else:
        if args.impls == "base":
            implementations = base_implementations()
        elif args.impls == "all":
            implementations = available_implementations()
        else:
            implementations = [
                name.strip() for name in args.impls.split(",") if name.strip()
            ]
        tests = None
        if args.tests:
            tests = [name.strip() for name in args.tests.split(",") if name.strip()]
        cells = catalog_cells(
            implementations, models=models, tests=tests, size=args.size
        )
    if not cells:
        print("matrix: no cells selected", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("matrix: --resume requires --journal", file=sys.stderr)
        return 2
    try:
        matrix = run_matrix(
            cells,
            jobs=args.jobs,
            shard_by=args.shard_by,
            options=options,
            progress=None if args.quiet else _matrix_progress,
            journal=args.journal,
            resume=args.resume,
        )
    except JournalError as exc:
        print(f"matrix: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        report = _emit_json(matrix.as_dict(), args.json, "matrix")
        print(matrix.summary(), file=report)
    else:
        print(matrix.format_table())
        print(matrix.summary())
    for failed in matrix.errors:
        print(f"error in {failed.cell.key}: {failed.error}", file=sys.stderr)
    for cell in matrix.degraded:
        print(f"{cell.degraded} in {cell.cell.key}: "
              f"{'; '.join(cell.notes) or cell.error}", file=sys.stderr)
    if matrix.ok:
        return 0
    # FAIL / DIVERGE / ERROR keep the historical exit code 1; a run whose
    # only blemish is degraded cells (TIMEOUT/OOM/CRASHED) exits 3 so
    # callers can tell "bug found" from "budget ran out".
    if matrix.errors or any(
        not r.ok and not r.degraded for r in matrix.results
    ):
        return 1
    return _degraded_exit(matrix.results)


def _cmd_oracle(args) -> int:
    from repro.fuzz.generator import FuzzProgram
    from repro.oracle import differential_check, parse_engines

    if bool(args.litmus) == bool(args.spec):
        print("oracle: pass exactly one of --litmus or --spec",
              file=sys.stderr)
        return 2
    try:
        engines = parse_engines(args.engines)
    except ValueError as exc:
        print(f"oracle: {exc}", file=sys.stderr)
        return 2
    model = get_model(args.model)
    if args.litmus:
        from repro.litmus.catalog import compiled_litmus

        catalog = available_litmus_tests()
        if args.litmus not in catalog:
            print(f"oracle: unknown litmus test {args.litmus!r} "
                  f"(known: {', '.join(sorted(catalog))})", file=sys.stderr)
            return 2
        compiled = compiled_litmus(catalog[args.litmus])
        name = args.litmus
    else:
        from repro.fuzz.generator import FuzzSpecError

        try:
            compiled = FuzzProgram.parse(args.spec).compile()
        except FuzzSpecError as exc:
            print(f"oracle: {exc}", file=sys.stderr)
            return 2
        name = args.spec
    report = differential_check(
        compiled, model, backend_spec=args.solver, name=name,
        dense_order=_dense_order(args), simplify=_simplify(args),
        engines=engines,
    )
    labels = compiled.observation_labels()
    print(f"{name} @ {model.name}: observation slots "
          f"[{', '.join(labels)}]")
    ordered = [report.engine_results[e] for e in report.engines]
    for engine in ordered:
        if engine.ok:
            detail = ", ".join(
                f"{key} {value}" for key, value in engine.stats.items()
            )
            line = (f"{engine.engine}: {len(engine.outcomes)} outcomes "
                    f"in {engine.seconds:.3f}s")
            if detail:
                line += f" ({detail})"
        else:
            line = f"{engine.engine}: INCONCLUSIVE ({engine.reason})"
        print(line)
    conclusive = [engine for engine in ordered if engine.ok]
    union: set = set()
    for engine in conclusive:
        union |= engine.outcomes
    if len(conclusive) > 1:
        for outcome in sorted(union):
            allowing = [e.engine for e in conclusive if outcome in e.outcomes]
            if len(allowing) == len(conclusive):
                marker = "both" if len(conclusive) == 2 else "all"
            else:
                marker = f"ONLY {'/'.join(allowing)}"
            print(f"  {outcome}  [{marker}]")
    else:
        for outcome in sorted(union):
            print(f"  {outcome}")
    if len(ordered) > 1:
        print(report.describe())
    # Exit 1 only on a proven divergence; INCONCLUSIVE engines are a
    # skipped comparison, not a failure.
    return 1 if report.diverged else 0


def _cmd_synthesize(args) -> int:
    models = [
        name.strip()
        for name in (args.models.split(",") if args.models else [args.model])
        if name.strip()
    ]
    if args.fuzz_budget is not None:
        if args.impl or args.spec:
            print("synthesize: --fuzz-budget excludes --impl/--spec",
                  file=sys.stderr)
            return 2
        from repro.core.synthesize import fuzz_synthesis_smoke

        report = fuzz_synthesis_smoke(args.fuzz_budget, args.seed, models)
        for failure in report.failures:
            print(f"FAIL {failure}")
        print(report.describe())
        return 0 if report.ok else 1
    if bool(args.impl) == bool(args.spec):
        print("synthesize: pass exactly one of --impl or --spec",
              file=sys.stderr)
        return 2
    if args.impl and not args.test:
        print("synthesize: --impl requires --test", file=sys.stderr)
        return 2
    if args.spec:
        from repro.core.synthesize import synthesize_litmus
        from repro.fuzz.generator import FuzzProgram, FuzzSpecError
        from repro.sat.backend import make_backend_factory

        try:
            program = FuzzProgram.parse(args.spec)
        except FuzzSpecError as exc:
            print(f"synthesize: {exc}", file=sys.stderr)
            return 2
        result = synthesize_litmus(
            program,
            models,
            backend_factory=make_backend_factory(args.solver),
            dense_order=_dense_order(args),
            simplify=_simplify(args),
            exact=not args.no_exact,
            exact_budget=args.budget,
        )
        target = f"{args.spec!r}"
    else:
        implementation = get_implementation(args.impl)
        category = category_of(args.impl)
        test = get_test(category, args.test)
        options = CheckOptions(
            solver_backend=args.solver,
            dense_order=_dense_order(args),
            simplify=_simplify(args),
            share_encode=_share_encode(args),
            store=_store(args),
            **_budget(args),
            synthesis_exact=not args.no_exact,
            synthesis_budget=args.budget,
        )
        session = CheckSession(implementation, options)
        result = session.synthesize(test, models)
        target = f"{args.impl} / {args.test}"

    report = sys.stdout
    if args.json is not None:
        report = _emit_json(result.as_dict(), args.json, "synthesize")
    stats = result.stats
    print(
        f"fence synthesis for {target} under {', '.join(result.models)} "
        f"({stats.candidates} candidate fences, {stats.solves} solves, "
        f"{stats.solve_seconds:.2f}s solving)",
        file=report,
    )
    if result.already_passes:
        print("already passes; no fences needed", file=report)
        return 0
    if not result.feasible:
        for note in result.notes:
            print(f"infeasible: {note}", file=report)
        return 1
    print(
        f"failing queries repaired: {', '.join(result.failing_queries)}",
        file=report,
    )
    for fence in result.fences:
        print(f"  insert {fence.describe()}", file=report)
    optimality = "cost-optimal" if result.optimal else "1-minimal"
    print(
        f"{len(result.fences)} fence(s), total cost {result.cost} "
        f"({optimality}); independently re-checked: "
        f"sufficient={'yes' if result.verified_sufficient else 'NO'}, "
        f"minimal={'yes' if result.verified_minimal else 'NO'}",
        file=report,
    )
    for note in result.notes:
        print(f"note: {note}", file=report)
    return 0 if result.verified_sufficient and result.verified_minimal else 1


def _cmd_fuzz(args) -> int:
    from repro.fuzz import FuzzConfig, run_fuzz
    from repro.oracle import parse_engines

    models = [name.strip() for name in args.models.split(",") if name.strip()]
    if not models or args.budget <= 0:
        # Mirror the matrix command's guard: a campaign with no cells
        # would "pass" having compared nothing.
        print("fuzz: no cells selected (check --models / --budget)",
              file=sys.stderr)
        return 2
    try:
        engines = parse_engines(args.engines)
    except ValueError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2
    config = FuzzConfig(
        max_threads=args.max_threads,
        max_ops=args.max_ops,
        num_addresses=args.addrs,
    )
    if args.resume and not args.journal:
        print("fuzz: --resume requires --journal", file=sys.stderr)
        return 2
    try:
        result = run_fuzz(
            budget=args.budget,
            seed=args.seed,
            models=models,
            config=config,
            jobs=args.jobs,
            shard_by=args.shard_by,
            options=CheckOptions(
                solver_backend=args.solver,
                dense_order=_dense_order(args),
                simplify=_simplify(args),
                share_encode=_share_encode(args),
                store=_store(args),
                **_budget(args),
            ),
            progress=None if args.quiet else _matrix_progress,
            shrink=not args.no_shrink,
            engines=engines,
            journal=args.journal,
            resume=args.resume,
        )
    except JournalError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2
    report = sys.stdout
    if args.json is not None:
        report = _emit_json(result.as_dict(), args.json, "fuzz")
    print(result.summary(), file=report)
    for divergence in result.divergences:
        print(f"DIVERGENCE under {divergence.model}: "
              f"{divergence.description}", file=report)
        print(f"  replay: checkfence oracle --model {divergence.model} "
              f"--spec {divergence.shrunk_spec!r}", file=report)
    for entry in result.inconclusive:
        print(f"inconclusive: {entry['spec']!r} @ {entry['model']}: "
              f"{'; '.join(entry['notes'])}", file=sys.stderr)
    for entry in result.degraded:
        print(f"{entry['verdict']}: {entry['spec']!r} @ {entry['model']}: "
              f"{'; '.join(entry['notes'])}", file=sys.stderr)
    for failed in result.matrix.errors:
        print(f"error in {failed.cell.key}: {failed.error}", file=sys.stderr)
    if result.matrix.errors:
        return 2
    if not result.ok:
        return 1
    # Divergence-free but incomplete: degraded cells exit 3, never 0.
    return _degraded_exit(result.matrix.results)


def _cmd_cache(args) -> int:
    from repro.core.store import VerdictStore

    store = VerdictStore()
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} cell(s) from {store.path}")
        return 0
    stats = store.stats()
    print(f"store:  {stats['path']}")
    if not stats["exists"]:
        print("cells:  0 (store not created yet)")
        return 0
    print(f"size:   {stats['size_bytes']} bytes")
    print(f"cells:  {stats['cells']}")
    for kind, count in sorted(stats["kinds"].items()):
        print(f"  {kind}: {count}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="checkfence",
        description="CheckFence reproduction: check concurrent data types on "
        "relaxed memory models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list implementations (with descriptions), memory models, "
        "and Fig. 8 tests",
    )
    sub.add_parser(
        "table1",
        help="print Table 1 of the paper plus every checkable variant",
    )

    solver_help = (
        "SAT backend: auto, internal, dimacs, dimacs:<command>, ipasir, "
        "ipasir:cli, or ipasir:<path-to-shared-library> "
        "(default: CHECKFENCE_SOLVER or auto)"
    )
    dense_help = (
        "use the dense memory-order construction (every access pair gets an "
        "order variable, full O(n^3) transitivity) instead of the pruned "
        "conflict-aware one; same verdicts, bigger formulas — the "
        "differential baseline (default: CHECKFENCE_DENSE_ORDER or pruned)"
    )
    simplify_help = (
        "disable the in-process CNF preprocessor (unit propagation, "
        "equivalent literals, subsumption, bounded variable elimination) "
        "that runs between lowering and solving; same verdicts, bigger "
        "formulas — the differential baseline "
        "(default: CHECKFENCE_SIMPLIFY or on)"
    )

    share_help = (
        "rebuild the full encoding from scratch for every memory model "
        "instead of reusing the memoized model-independent skeleton; same "
        "formulas, slower sweeps — the differential baseline "
        "(default: CHECKFENCE_SHARE_ENCODE or shared)"
    )
    store_help = (
        "consult and populate the persistent on-disk result store "
        "(verdicts + mined observation sets under ~/.cache/checkfence or "
        "CHECKFENCE_CACHE_DIR, keyed by content hash of source, test, "
        "model, options, and checker code version; see 'checkfence cache')"
    )
    no_store_help = (
        "never touch the persistent store, overriding CHECKFENCE_STORE=1"
    )

    def add_dense_flag(sub_parser):
        sub_parser.add_argument("--dense-order", action="store_true",
                                help=dense_help)
        sub_parser.add_argument("--no-simplify", action="store_true",
                                help=simplify_help)
        sub_parser.add_argument("--no-share-encode", action="store_true",
                                help=share_help)
        sub_parser.add_argument("--store", action="store_true",
                                help=store_help)
        sub_parser.add_argument("--no-store", action="store_true",
                                help=no_store_help)
        sub_parser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-check wall-clock budget; an expired check reports "
            "the first-class TIMEOUT verdict (exit code 3) instead of "
            "hanging (env fallback: CHECKFENCE_TIMEOUT)",
        )
        sub_parser.add_argument(
            "--memory-limit", type=float, default=None, metavar="MB",
            help="per-check resident-memory budget in megabytes; a "
            "breach reports the OOM verdict "
            "(env fallback: CHECKFENCE_MEMORY_LIMIT)",
        )

    check_parser = sub.add_parser(
        "check",
        help="run one check: one implementation, one Fig. 8 test, one "
        "memory model (exit code 1 on FAIL)",
    )
    check_parser.add_argument("--impl", required=True,
                              help="implementation variant (see 'list')")
    check_parser.add_argument("--test", required=True,
                              help="Fig. 8 test name, e.g. T0")
    check_parser.add_argument("--model", default="relaxed",
                              help="memory model (default: relaxed)")
    check_parser.add_argument("--spec-method", default="auto",
                              choices=["auto", "reference", "sat"],
                              help="specification mining method (default: auto)")
    check_parser.add_argument("--bound", type=int, default=None,
                              help="default loop bound")
    check_parser.add_argument("--lazy-bounds", action="store_true",
                              help="refine loop bounds lazily (Section 3.3)")
    check_parser.add_argument("--no-range-analysis", action="store_true",
                              help="disable the range analysis (Fig. 11c)")
    check_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(check_parser)

    sweep_parser = sub.add_parser(
        "sweep",
        help="check ONE implementation/test pair under several memory models "
        "in one warm session (compiles and mines the specification once); "
        "for many implementations or tests, or to use several cores, see "
        "'matrix'",
    )
    sweep_parser.add_argument("--impl", required=True,
                              help="implementation variant (see 'list')")
    sweep_parser.add_argument("--test", required=True,
                              help="Fig. 8 test name, e.g. T0")
    sweep_parser.add_argument(
        "--models", default="serial,sc,tso,pso,relaxed",
        help="comma-separated memory models "
        "(default: serial,sc,tso,pso,relaxed)",
    )
    sweep_parser.add_argument("--spec-method", default="auto",
                              choices=["auto", "reference", "sat"],
                              help="specification mining method (default: auto)")
    sweep_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(sweep_parser)

    spec_parser = sub.add_parser(
        "spec",
        help="mine and print a test's observation set (the specification "
        "of Section 3.2)",
    )
    spec_parser.add_argument("--impl", required=True,
                             help="implementation variant (see 'list')")
    spec_parser.add_argument("--test", required=True,
                             help="Fig. 8 test name, e.g. T0")
    spec_parser.add_argument("--spec-method", default="auto",
                             choices=["auto", "reference", "sat"],
                             help="specification mining method (default: auto)")

    jobs_help = (
        "worker processes (default: CHECKFENCE_JOBS or 1; "
        "1 = deterministic serial path)"
    )
    journal_help = (
        "append one JSON line per completed cell to FILE as the run "
        "progresses, so a killed run can be picked up with --resume"
    )
    resume_help = (
        "read the --journal file first and re-run only cells it does not "
        "already record a verdict for (ERROR/CRASHED cells are retried)"
    )

    litmus_parser = sub.add_parser(
        "litmus",
        help="evaluate the Fig. 2 litmus catalog under one memory model",
    )
    litmus_parser.add_argument(
        "--model", default="relaxed",
        help="memory model to evaluate under (default: relaxed)",
    )
    litmus_parser.add_argument("--solver", default=None, help=solver_help)
    litmus_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)
    add_dense_flag(litmus_parser)

    matrix_parser = sub.add_parser(
        "matrix",
        help="run a (implementation x test x model) check matrix, sharded "
        "across a multiprocessing worker pool",
    )
    matrix_parser.add_argument(
        "--impls", default="base",
        help="comma-separated implementation variants, or 'base' (the five "
        "Table 1 implementations) or 'all' (every variant); ignored with "
        "--litmus (default: base)",
    )
    matrix_parser.add_argument(
        "--tests", default=None,
        help="comma-separated Fig. 8 test names (all implementations must "
        "then share one category); default: the catalog tests of each "
        "implementation's category, filtered by --size",
    )
    matrix_parser.add_argument(
        "--size", default="small",
        choices=["small", "medium", "large", "all"],
        help="catalog size class when --tests is not given (default: small)",
    )
    matrix_parser.add_argument(
        "--models", default="relaxed",
        help="comma-separated memory models (default: relaxed)",
    )
    matrix_parser.add_argument(
        "--litmus", action="store_true",
        help="check the litmus catalog instead of data type implementations",
    )
    matrix_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)
    matrix_parser.add_argument(
        "--shard-by", default="test", choices=list(SHARD_AXES),
        help="how to batch cells into shards: 'test' batches by compiled-test "
        "key (one session compiles and mines once per (impl, test)), "
        "'impl' batches whole implementations, 'model' batches by memory "
        "model (default: test)",
    )
    matrix_parser.add_argument("--spec-method", default="auto",
                               choices=["auto", "reference", "sat"],
                               help="specification mining method (default: auto)")
    matrix_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(matrix_parser)
    matrix_parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the matrix (cells, verdicts, per-shard cache stats) as "
        "JSON to FILE, or '-' for stdout",
    )
    matrix_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress stream on stderr",
    )
    matrix_parser.add_argument("--journal", default=None, metavar="FILE",
                               help=journal_help)
    matrix_parser.add_argument("--resume", action="store_true",
                               help=resume_help)

    engines_help = (
        "comma-separated consistency engines to compare — any of "
        "enumerator, rfcheck, sat — or 'all' (default: enumerator,sat)"
    )

    oracle_parser = sub.add_parser(
        "oracle",
        help="enumerate a litmus-shaped program's outcome set with the "
        "selected consistency engines (operational enumerator, reads-from "
        "closure engine, SAT mining) and cross-check them pairwise "
        "(exit codes: 0 agreement or no verdict — INCONCLUSIVE engines "
        "skip the comparison, they never fail it — 1 proven divergence, "
        "2 usage error)",
    )
    oracle_parser.add_argument(
        "--litmus", default=None, metavar="NAME",
        help="a litmus catalog test (see 'litmus')",
    )
    oracle_parser.add_argument(
        "--spec", default=None, metavar="SPEC",
        help="a fuzz program spec, e.g. 'x=1 r0=y | y=1 r1=x'",
    )
    oracle_parser.add_argument("--model", default="relaxed",
                               help="memory model (default: relaxed)")
    oracle_parser.add_argument("--engines", default=None, help=engines_help)
    oracle_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(oracle_parser)

    synth_parser = sub.add_parser(
        "synthesize",
        help="synthesize a minimal fence set that turns a FAILing "
        "(implementation, test, model) cell into PASS, printing placements "
        "as LSL source locations (exit code 1 when infeasible or the "
        "independent re-check fails)",
    )
    synth_parser.add_argument("--impl", default=None,
                              help="implementation variant (see 'list')")
    synth_parser.add_argument("--test", default=None,
                              help="Fig. 8 test name, e.g. T0")
    synth_parser.add_argument(
        "--spec", default=None, metavar="SPEC",
        help="synthesize for a fuzz litmus program instead, e.g. "
        "'x=1 y=1 | r0=y r1=x' (the specification is its SC outcome set)",
    )
    synth_parser.add_argument("--model", default="relaxed",
                              help="memory model (default: relaxed)")
    synth_parser.add_argument(
        "--models", default=None,
        help="comma-separated memory models; one fence set is synthesized "
        "that repairs ALL of them (overrides --model)",
    )
    synth_parser.add_argument(
        "--no-exact", action="store_true",
        help="stop after destructive deletion (1-minimal) instead of "
        "escalating to the exact minimal-correction search",
    )
    synth_parser.add_argument(
        "--budget", type=int, default=60,
        help="solve budget of the exact escalation (default: 60)",
    )
    synth_parser.add_argument(
        "--fuzz-budget", type=int, default=None, metavar="N",
        help="smoke mode: synthesize + verify fences for N seeded random "
        "litmus programs instead of a single target (exit 1 on any "
        "unrepaired or oracle-refuted program)",
    )
    synth_parser.add_argument(
        "--seed", type=int, default=1,
        help="generator seed for --fuzz-budget (default: 1)",
    )
    synth_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(synth_parser)
    synth_parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the result (fences, cost, verification, search stats) "
        "as JSON to FILE, or '-' for stdout",
    )

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generate random litmus programs and "
        "compare the operational oracle against the SAT encoding on every "
        "memory model (exit code 1 on divergence)",
    )
    fuzz_parser.add_argument("--budget", type=int, default=100,
                             help="number of distinct programs (default: 100)")
    fuzz_parser.add_argument("--seed", type=int, default=1,
                             help="generator seed; the whole campaign is "
                             "replayable from it (default: 1)")
    fuzz_parser.add_argument(
        "--models", default="serial,sc,tso,pso,relaxed",
        help="comma-separated memory models "
        "(default: serial,sc,tso,pso,relaxed)",
    )
    fuzz_parser.add_argument("--max-threads", type=int, default=3,
                             help="threads per program (default: up to 3)")
    fuzz_parser.add_argument("--max-ops", type=int, default=4,
                             help="operations per thread (default: up to 4)")
    fuzz_parser.add_argument("--addrs", type=int, default=2,
                             help="shared addresses (default: 2)")
    fuzz_parser.add_argument("--engines", default=None, help=engines_help)
    fuzz_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)
    fuzz_parser.add_argument(
        "--shard-by", default="test", choices=list(SHARD_AXES),
        help="matrix sharding axis; 'test' compiles each program once for "
        "all models (default: test)",
    )
    fuzz_parser.add_argument("--solver", default=None, help=solver_help)
    add_dense_flag(fuzz_parser)
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="report divergences without minimizing them")
    fuzz_parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the campaign (programs, divergences, throughput) as "
        "JSON to FILE, or '-' for stdout",
    )
    fuzz_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress stream on stderr",
    )
    fuzz_parser.add_argument("--journal", default=None, metavar="FILE",
                             help=journal_help)
    fuzz_parser.add_argument("--resume", action="store_true",
                             help=resume_help)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect (default) or clear the persistent on-disk result "
        "store populated by --store / CHECKFENCE_STORE=1",
    )
    cache_parser.add_argument("--clear", action="store_true",
                              help="delete every stored cell")

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "table1": _cmd_table1,
        "check": _cmd_check,
        "sweep": _cmd_sweep,
        "spec": _cmd_spec,
        "litmus": _cmd_litmus,
        "matrix": _cmd_matrix,
        "oracle": _cmd_oracle,
        "synthesize": _cmd_synthesize,
        "fuzz": _cmd_fuzz,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # The matrix pool has already torn its workers down by the time
        # the interrupt reaches here; report the conventional 128+SIGINT.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
