"""Explore how the supported memory models differ on classic litmus tests.

Prints, for every litmus test in the catalog and every memory model, whether
the "relaxed" outcome is reachable — the same comparison Section 2.3.3 of
the paper makes between Seriality, SC, and Relaxed (plus TSO and PSO).

Run with:  python examples/litmus_explorer.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.reporting import format_table
from repro.litmus import available_litmus_tests, iriw_allowed, observation_allowed

MODELS = ["sc", "tso", "pso", "relaxed"]


def main() -> None:
    rows = []
    for name, litmus in sorted(available_litmus_tests().items()):
        if not litmus.observation:
            continue
        verdicts = []
        for model in MODELS:
            allowed = observation_allowed(litmus, model)
            verdicts.append("allowed" if allowed else "forbidden")
        rows.append([name, str(litmus.observation)] + verdicts)
    print("Reachability of the relaxed outcome, per memory model:\n")
    print(format_table(["litmus test", "observation"] + MODELS, rows))
    print()
    print("Fig. 2 (independent reads of independent writes, with load-load "
          "fences):")
    print("  reachable on Relaxed?", "yes" if iriw_allowed("relaxed") else
          "no — Relaxed orders all stores globally, exactly as the paper "
          "explains")


if __name__ == "__main__":
    main()
