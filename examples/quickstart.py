"""Quickstart: check a lock-free queue on a relaxed memory model.

Runs the paper's headline experiment on the smallest test: Michael & Scott's
non-blocking queue works under sequential consistency, breaks on the Relaxed
model without fences, and works again once the Fig. 9 fences are added.

Run with:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CheckFence, get_implementation, get_test


def run_check(implementation_name: str, model: str) -> None:
    implementation = get_implementation(implementation_name)
    checker = CheckFence(implementation)
    test = get_test("queue", "T0")          # ( enqueue | dequeue )
    result = checker.check(test, model)
    verdict = "PASS" if result.passed else "FAIL"
    print(f"{implementation_name:15s} under {model:8s}: {verdict} "
          f"({result.stats.accesses} accesses, "
          f"{result.stats.cnf_clauses} CNF clauses, "
          f"{result.stats.total_seconds:.2f}s)")
    if result.counterexample is not None:
        print()
        print(result.counterexample.format())
        print()


def main() -> None:
    print("CheckFence quickstart: Michael & Scott non-blocking queue, test T0")
    print("=" * 70)
    # The published algorithm (no fences) is correct on a sequentially
    # consistent machine ...
    run_check("msn-unfenced", "sc")
    # ... but has incorrect executions on the Relaxed model ...
    run_check("msn-unfenced", "relaxed")
    # ... which the fences of Fig. 9 rule out.
    run_check("msn", "relaxed")


if __name__ == "__main__":
    main()
