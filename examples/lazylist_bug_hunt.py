"""Reproducing the lazy-list bug the paper found (Section 4.1).

The published pseudocode of the lazy list-based set forgets to initialize
the ``marked`` field of a newly inserted node.  A concurrent (or even a
later, single-threaded!) membership test can then treat the new node as
logically deleted.  This example checks the buggy and the fixed variant and
prints the counterexample trace for the buggy one.

Run with:  python examples/lazylist_bug_hunt.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CheckFence
from repro.datatypes import get_implementation
from repro.harness.bugtests import lazylist_missing_init_test
from repro.harness.catalog import get_test


def main() -> None:
    test = lazylist_missing_init_test()
    print("Test:", test.description, "— add an element, then look it up.")
    print()

    buggy = CheckFence(get_implementation("lazylist-buggy"))
    result = buggy.check(test, "sc")
    print("lazylist-buggy under sequential consistency:",
          "PASS" if result.passed else "FAIL")
    if result.counterexample:
        print()
        print(result.counterexample.format())
        print()
        print("The membership test returned 'absent' although the element was"
              " added and never removed: the uninitialized 'marked' field made"
              " the node look deleted.  Note the failure needs no memory-model"
              " relaxation at all — it is an algorithmic bug.")
    print()

    fixed = CheckFence(get_implementation("lazylist"))
    result = fixed.check(test, "sc")
    print("lazylist (marked field initialized):",
          "PASS" if result.passed else "FAIL")

    # The fenced version is also correct on the Relaxed model for the small
    # concurrent test of Fig. 8.
    result = fixed.check(get_test("set", "Sac"), "relaxed")
    print("lazylist on Relaxed, test Sac ( add | contains ):",
          "PASS" if result.passed else "FAIL")


if __name__ == "__main__":
    main()
