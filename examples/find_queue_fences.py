"""Which fences does the non-blocking queue actually need?

Section 4.2/4.3 of the paper explains where each fence in Fig. 9 comes from.
This example removes one fence at a time from the fenced queue and re-checks
the small queue tests, showing which fences are *necessary* (removing them
reintroduces failures on Relaxed) — the same workflow an algorithm designer
would use with the tool.

Run with:  python examples/find_queue_fences.py
"""

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CheckFence, get_test
from repro.datatypes import get_implementation


def fence_positions(source: str) -> list[int]:
    """Character offsets of every fence() call in the source."""
    return [match.start() for match in re.finditer(r'fence\("[a-z-]+"\);', source)]


def remove_fence(source: str, index: int) -> tuple[str, str]:
    """Remove the index-th fence call; returns (new source, fence text)."""
    matches = list(re.finditer(r'fence\("[a-z-]+"\);', source))
    match = matches[index]
    removed = match.group(0)
    return source[:match.start()] + source[match.end():], removed


def line_of(source: str, offset: int) -> int:
    return source.count("\n", 0, offset) + 1


def main() -> None:
    base = get_implementation("msn")
    tests = [get_test("queue", name) for name in ("T0", "Ti2")]
    positions = fence_positions(base.source)
    print(f"The fenced queue (Fig. 9) contains {len(positions)} fences.")
    print("Removing each in turn and re-checking on the Relaxed model:\n")

    necessary = 0
    for index in range(len(positions)):
        source, removed = remove_fence(base.source, index)
        variant = base.with_source(source, f"minus-fence-{index}")
        checker = CheckFence(variant)
        failing_test = None
        for test in tests:
            if checker.check(test, "relaxed").failed:
                failing_test = test.name
                break
        line = line_of(base.source, fence_positions(base.source)[index])
        if failing_test is None:
            print(f"  fence #{index:<2} (line {line:3}, {removed:24s}): not needed "
                  f"for these small tests")
        else:
            necessary += 1
            print(f"  fence #{index:<2} (line {line:3}, {removed:24s}): NECESSARY "
                  f"(removing it breaks test {failing_test})")

    print(f"\n{necessary} of {len(positions)} fences are required already by "
          f"these two small tests; the remaining ones are exercised by the "
          f"larger tests of Fig. 8.")


if __name__ == "__main__":
    main()
