"""Docs stay honest: links resolve and the tutorial's commands parse.

The full tutorial smoke run (executing every code block) lives in the CI
docs job (``python tools/docs_check.py --tutorial``); tier-1 keeps the
cheap invariants so a broken link or a renamed CLI flag fails fast.
"""

import importlib.util
import os
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))


@pytest.fixture(scope="module")
def docs_check():
    spec = importlib.util.spec_from_file_location(
        "docs_check", os.path.join(_REPO_ROOT, "tools", "docs_check.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_tree_exists():
    for name in ("architecture.md", "tutorial.md", "paper-map.md"):
        assert os.path.exists(os.path.join(_REPO_ROOT, "docs", name))


def test_intra_repo_markdown_links_resolve(docs_check):
    problems = docs_check.check_links()
    assert problems == []


def test_link_checker_detects_breakage(tmp_path, docs_check, monkeypatch):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](no/such/file.md) and [ok](ok.md)")
    (tmp_path / "ok.md").write_text("fine")
    monkeypatch.setattr(docs_check, "REPO_ROOT", str(tmp_path))
    problems = docs_check.check_links()
    assert len(problems) == 1 and "no/such/file.md" in problems[0]


def test_tutorial_commands_extracted(docs_check):
    commands = docs_check.tutorial_commands()
    kinds = [kind for kind, _, _ in commands]
    assert kinds.count("sh") >= 6      # list/spec/check x2/sweep/matrix x2
    assert "python" in kinds           # the C -> LSL snippet
    # The failing check declares its expected nonzero exit code.
    failing = [
        expected for _, argv, expected in commands
        if "msn-unfenced" in argv and "check" in argv
    ]
    assert failing == [1]
    # The synthesize quickstart repairs that same cell and exits cleanly.
    synthesized = [
        expected for _, argv, expected in commands
        if "msn-unfenced" in argv and "synthesize" in argv
    ]
    assert synthesized == [0]
    # checkfence shorthand is rewritten to drive the in-tree CLI.
    for kind, argv, _ in commands:
        if kind == "sh":
            assert argv[0] == sys.executable and "repro.cli" in argv
